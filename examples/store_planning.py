"""Store planning: counting shoppers per aisle (Section 2).

A retail store owner points a CCTV at two aisles and wants to know which one
is busier.  The example builds a *custom* synthetic video (this scenario is
not one of the paper's six webcams), registers it with the engine, and then
runs one aggregate query per aisle by constraining the mask's horizontal
extent — exercising the spatial-predicate path of the analyzer.

Run with::

    python examples/store_planning.py
"""

from __future__ import annotations

from repro import FCOUNT, BlazeIt, BlazeItConfig, Q, class_is, xmax, xmin
from repro.video.synthetic import ObjectClassSpec, SyntheticVideo, VideoSpec

NUM_FRAMES = 2500
WIDTH, HEIGHT = 1280, 720


def make_store_spec(seed: int, name: str) -> VideoSpec:
    """Shoppers in two aisles: the left aisle is busier than the right."""
    return VideoSpec(
        name=name,
        width=WIDTH,
        height=HEIGHT,
        fps=30.0,
        num_frames=NUM_FRAMES,
        seed=seed,
        object_classes=(
            ObjectClassSpec(
                name="person",
                arrival_rate=0.02,
                mean_duration=90.0,
                size_range=(50.0, 120.0),
                color_weights={"blue": 1.0, "black": 1.0, "white": 1.0, "red": 0.5},
                burstiness=0.3,
                region=(0.05, 0.2, 0.45, 0.95),  # left aisle
                speed=2.0,
            ),
            ObjectClassSpec(
                name="person",
                arrival_rate=0.008,
                mean_duration=90.0,
                size_range=(50.0, 120.0),
                color_weights={"blue": 1.0, "black": 1.0, "white": 1.0},
                burstiness=0.3,
                region=(0.55, 0.2, 0.95, 0.95),  # right aisle
                speed=2.0,
            ),
        ),
    )


def main() -> None:
    engine = BlazeIt(config=BlazeItConfig(min_training_positives=20))
    print(f"Generating the store CCTV video ({NUM_FRAMES} frames per split)...")
    engine.register_video(
        "store",
        test_video=SyntheticVideo.generate(make_store_spec(seed=100, name="store-test")),
        train_video=SyntheticVideo.generate(make_store_spec(seed=101, name="store-train")),
        heldout_video=SyntheticVideo.generate(make_store_spec(seed=102, name="store-heldout")),
    )
    engine.record_test_day("store")
    session = engine.session(video="store")

    print("\n-- Shoppers per aisle ---------------------------------------------")
    # The spatial predicates are built fluently: no string formatting, and the
    # builder compiles straight to the FrameQL AST the parser would produce.
    aisles = {
        "left aisle": xmax() < int(WIDTH * 0.5),
        "right aisle": xmin() >= int(WIDTH * 0.5),
    }
    counts = {}
    for aisle, predicate in aisles.items():
        result = session.execute(
            Q.select("timestamp").where(class_is("person"), predicate)
        )
        visits = sorted({record.trackid for record in result.records})
        counts[aisle] = len(visits)
        print(f"{aisle:12s}: {len(visits):3d} distinct shoppers "
              f"({len(result.matched_frames)} matching frames, "
              f"plan: {result.plan_description})")

    busier = max(counts, key=counts.get)
    print(f"\nThe {busier} sees more traffic — consider promoting products there.")

    print("\n-- Overall store occupancy ------------------------------------------")
    occupancy = session.execute(
        Q.select(FCOUNT()).where(cls="person").error_within(0.1)
    )
    print(f"average shoppers visible per frame: {occupancy.value:.2f} "
          f"(strategy: {occupancy.method})")


if __name__ == "__main__":
    main()
