"""Urban planning: the motivating scenario of Section 2.

An urban planner wants to (1) compare traffic volumes between two cameras,
(2) find moments where public transit and congestion interact (at least one
bus and several cars in the same frame), and (3) look for red buses as a
proxy for tour buses.

Run with::

    python examples/urban_planning.py
"""

from __future__ import annotations

from repro import BlazeIt, BlazeItConfig
from repro.workloads.queries import (
    aggregate_query,
    multiclass_scrubbing_query,
    red_bus_selection_query,
)

NUM_FRAMES = 3000


def main() -> None:
    engine = BlazeIt(config=BlazeItConfig(min_training_positives=20))
    for scenario in ("taipei", "amsterdam"):
        print(f"Registering {scenario} ({NUM_FRAMES} frames per split)...")
        engine.register_scenario(scenario, num_frames=NUM_FRAMES)
        engine.record_test_day(scenario)
    # One session serves every question: queries are planned once and cached,
    # and each execution draws its own RNG stream.
    session = engine.session()

    # 1. Which intersection is busier?  Frame-averaged car counts.
    print("\n-- Traffic metering ---------------------------------------------")
    volumes = {}
    for scenario in ("taipei", "amsterdam"):
        result = session.execute(aggregate_query(scenario, "car", error=0.1))
        volumes[scenario] = result.value
        print(f"{scenario:12s}: {result.value:.2f} cars/frame "
              f"({result.method}, {result.runtime_seconds:,.1f} simulated s)")
    busier = max(volumes, key=volumes.get)
    print(f"busier intersection: {busier}")

    # 2. Transit meets congestion: at least one bus and at least three cars.
    print("\n-- Transit / congestion interaction ------------------------------")
    scrub = session.execute(
        multiclass_scrubbing_query("taipei", {"bus": 1, "car": 3}, limit=5, gap=60)
    )
    print(f"found {len(scrub.frames)} moments "
          f"(detector calls: {scrub.detection_calls})")
    for frame, timestamp in zip(scrub.frames, scrub.timestamps, strict=True):
        print(f"  frame {frame:6d} at t={timestamp:7.1f}s")

    # 3. Tourism proxy: red buses on screen for at least half a second.
    print("\n-- Tour buses (red buses) ----------------------------------------")
    selection = session.execute(
        red_bus_selection_query("taipei", min_area=60000, min_frames=15)
    )
    tracks = sorted({record.trackid for record in selection.records})
    print(f"plan: {selection.plan_description}")
    print(f"distinct red-bus sightings: {len(tracks)} "
          f"({len(selection.records)} records, "
          f"{selection.detection_calls} detector calls)")


if __name__ == "__main__":
    main()
