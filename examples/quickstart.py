"""Quickstart: register a scenario and run one query of each class.

Run with::

    python examples/quickstart.py

The example generates a scaled-down version of the paper's ``taipei`` webcam
stream (a training day, a held-out day and a test day), builds the labeled
set by running the simulated object detector offline, and then executes three
FrameQL queries through one :class:`QuerySession`: an aggregate with an error
bound (prepared via the fluent builder), a cardinality-limited scrubbing query
and a content-based selection.  All runtimes are simulated
seconds from the runtime ledger (the detector is modelled at 3 fps, the
specialized NNs at 10,000 fps), so the speedups — not the absolute values —
are the interesting part.

Every query here runs on the **parallel sharded engine**: the session's
default hints carry ``parallelism=4``, so the video is partitioned into four
shards, each prefetched by its own worker thread, while results stay
bit-for-bit identical to single-threaded execution.  The engine also enables
the shared cross-query detection cache, which the final section uses to show
a repeated query paying zero detector calls.
"""

from __future__ import annotations

from repro import (
    FCOUNT,
    BlazeIt,
    BlazeItConfig,
    Completed,
    Q,
    QueryHints,
    ScrubbingHit,
    StopConditions,
)
from repro.baselines.aggregates import naive_aggregate

NUM_FRAMES = 3000  # per split: train, held-out, test
PARALLELISM = 4


def main() -> None:
    print("Setting up BlazeIt over the 'taipei' scenario "
          f"({NUM_FRAMES} frames per split)...")
    engine = BlazeIt(
        config=BlazeItConfig(
            min_training_positives=20,
            shared_cache_bytes=256 << 20,  # cross-query detection reuse
        )
    )
    engine.register_scenario("taipei", num_frames=NUM_FRAMES)
    recorded = engine.record_test_day("taipei")
    # Session-wide hints: every query below executes on the parallel sharded
    # engine (4 shard workers), with identical results to parallelism=1.
    session = engine.session(video="taipei", hints=QueryHints(parallelism=PARALLELISM))

    # 1. Aggregation: the frame-averaged number of cars, within 0.1 at 95%.
    #    Built fluently — the builder compiles straight to the FrameQL AST.
    prepared = session.prepare(
        Q.select(FCOUNT()).where(cls="car").error_within(0.1).confidence(0.95)
    )
    print(f"\nplan: {prepared.explain()}")
    aggregate = prepared.execute()
    naive = naive_aggregate(recorded, "car")
    print("\n-- Aggregation ------------------------------------------------")
    print(f"estimate            : {aggregate.value:.3f} cars/frame")
    print(f"ground truth        : {recorded.mean_count('car'):.3f} cars/frame")
    print(f"strategy chosen     : {aggregate.method}")
    print(f"simulated runtime   : {aggregate.runtime_seconds:,.1f} s "
          f"(naive: {naive.runtime_seconds:,.1f} s, "
          f"speedup {naive.runtime_seconds / aggregate.runtime_seconds:,.0f}x)")

    # 2. Scrubbing: find 5 frames with at least 3 cars, at least 1 s apart.
    scrub = session.execute(
        "SELECT timestamp FROM taipei GROUP BY timestamp "
        "HAVING SUM(class='car') >= 3 LIMIT 5 GAP 30"
    )
    print("\n-- Scrubbing --------------------------------------------------")
    print(f"frames returned     : {scrub.frames}")
    print(f"timestamps (s)      : {[round(t, 1) for t in scrub.timestamps]}")
    print(f"detector calls      : {scrub.detection_calls} "
          f"(out of {NUM_FRAMES} frames)")
    print(f"simulated runtime   : {scrub.runtime_seconds:,.1f} s")

    # 3. Selection: every red bus covering at least 60,000 pixels.
    selection = session.execute(
        "SELECT * FROM taipei WHERE class = 'bus' "
        "AND redness(content) >= 17.5 AND area(mask) > 60000"
    )
    print("\n-- Content-based selection -------------------------------------")
    print(f"plan                : {selection.plan_description}")
    print(f"frames after filters: {selection.frames_after_filters} "
          f"of {selection.frames_scanned}")
    print(f"matching records    : {len(selection.records)}")
    if selection.records:
        first = selection.records[0]
        print(f"example record      : t={first.timestamp:.1f}s "
              f"track={first.trackid} area={first.mask.area:,.0f}px")
    print(f"simulated runtime   : {selection.runtime_seconds:,.1f} s")

    # 4. Streaming: the same scrubbing query, but the first hit arrives the
    #    moment it is verified, and the stop condition ends execution there.
    print("\n-- Streaming (time to first hit) --------------------------------")
    stream = session.stream(
        "SELECT timestamp FROM taipei GROUP BY timestamp "
        "HAVING SUM(class='car') >= 3 LIMIT 5 GAP 30",
        stop=StopConditions(limit=1),
    )
    for event in stream:
        if isinstance(event, ScrubbingHit):
            print(f"first verified hit  : frame {event.frame_index} "
                  f"@ {event.timestamp:.1f}s")
        elif isinstance(event, Completed):
            ledger = event.result.execution_ledger
            print(f"detector calls      : {ledger.detector_calls} "
                  f"(full run above used {scrub.detection_calls})")
            print(f"stop reason         : {event.stop_reason}")
            print(f"simulated runtime   : {event.result.runtime_seconds:,.1f} s "
                  f"(vs {scrub.runtime_seconds:,.1f} s blocking)")

    # 5. The shared cross-query detection cache: repeating the exact scan in
    #    a fresh session pays zero detector calls — every frame the earlier
    #    queries decoded is served from the process-wide cache.
    print("\n-- Shared cross-query cache (warm re-run) -----------------------")
    query = "SELECT FCOUNT(*) FROM taipei WHERE class = 'car'"
    with engine.session(hints=QueryHints(parallelism=PARALLELISM)) as warm_session:
        cold = warm_session.execute(query)
        warm = warm_session.execute(query)
    cold_ledger, warm_ledger = cold.execution_ledger, warm.execution_ledger
    print(f"cold run            : {cold_ledger.detector_calls} detector calls")
    print(f"warm run            : {warm_ledger.detector_calls} detector calls "
          f"({warm_ledger.shared_cache_hits} served from the shared cache)")
    print(f"values identical    : {cold.value == warm.value}")

    # 6. The query service: the same engine served over HTTP + SSE.  A
    #    tenant opens a session, streams a query's execution events over the
    #    wire, and the result is byte-identical to in-process execution
    #    (same codecs, same RNG discipline).  In production the server runs
    #    standalone (`python -m repro.service`); here it rides a background
    #    thread on an ephemeral port.
    print("\n-- Query service (streaming over the wire) ----------------------")
    from repro.service import ServiceClient, ServiceConfig, ServiceManager
    from repro.service.app import ServiceThread

    manager = ServiceManager(engine, ServiceConfig(slots=PARALLELISM))
    with ServiceThread(manager) as server:
        client = ServiceClient(server.host, server.port)
        client.create_tenant("quickstart", max_detector_calls=1_000_000)
        session_id = client.create_session("quickstart", video="taipei")
        submitted = client.submit(
            session_id,
            query="SELECT timestamp FROM taipei GROUP BY timestamp "
                  "HAVING SUM(class='car') >= 3 LIMIT 3 GAP 30",
            wait=False,
        )
        print(f"serving on          : {server.base_url}  "
              f"(query {submitted['query_id']})")
        hits = 0
        for index, event in client.events(str(submitted["query_id"])):
            if isinstance(event, ScrubbingHit):
                hits += 1
                print(f"SSE event {index:>4}      : hit at frame "
                      f"{event.frame_index} @ {event.timestamp:.1f}s")
            elif isinstance(event, Completed):
                print(f"SSE event {index:>4}      : completed "
                      f"({event.result.detection_calls} detector calls, "
                      f"{hits} hits streamed)")


if __name__ == "__main__":
    main()
