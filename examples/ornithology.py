"""Ornithology: bird-feeder analysis with a custom UDF (Section 2).

An ornithologist places a webcam in front of a bird feeder, puts different
feed on the left and right sides, and wants to know (1) how many birds visit
each side and (2) how often the visitors are red birds (a proxy for species).
The example shows how to register a custom scenario, a custom detector class
set, and a user-defined function, then answer both questions declaratively.

Run with::

    python examples/ornithology.py
"""

from __future__ import annotations

from repro import FCOUNT, BlazeIt, BlazeItConfig, Q, SimulatedDetector, class_is, udf, xmax, xmin
from repro.udf.registry import UDF
from repro.video.synthetic import ObjectClassSpec, SyntheticVideo, VideoSpec

NUM_FRAMES = 2500
WIDTH, HEIGHT = 1280, 720


def make_feeder_spec(seed: int, name: str) -> VideoSpec:
    """Birds visiting a feeder; red birds prefer the left side."""
    return VideoSpec(
        name=name,
        width=WIDTH,
        height=HEIGHT,
        fps=30.0,
        num_frames=NUM_FRAMES,
        seed=seed,
        object_classes=(
            ObjectClassSpec(
                name="bird",
                arrival_rate=0.015,
                mean_duration=60.0,
                size_range=(40.0, 90.0),
                color_weights={"red": 2.0, "brown": 1.0},
                burstiness=0.4,
                region=(0.05, 0.3, 0.45, 0.9),  # left side of the feeder
                speed=3.0,
            ),
            ObjectClassSpec(
                name="bird",
                arrival_rate=0.015,
                mean_duration=60.0,
                size_range=(40.0, 90.0),
                color_weights={"blue": 1.5, "brown": 1.5},
                burstiness=0.4,
                region=(0.55, 0.3, 0.95, 0.9),  # right side of the feeder
                speed=3.0,
            ),
        ),
    )


def main() -> None:
    # A detector configured for birds (the paper's Mask R-CNN supports the
    # "bird" class of MS-COCO).
    detector = SimulatedDetector.mask_rcnn(confidence_threshold=0.6)
    engine = BlazeIt(detector=detector, config=BlazeItConfig(min_training_positives=20))

    # Register a custom UDF: a crude species proxy based on plumage colour.
    engine.udf_registry.register(
        UDF(
            name="red_plumage",
            object_fn=lambda record: (record.color[0] - record.color[2]) / 2.55
            if record.color
            else 0.0,
            continuous=True,
        )
    )

    print(f"Generating the bird-feeder video ({NUM_FRAMES} frames per split)...")
    engine.register_video(
        "feeder",
        test_video=SyntheticVideo.generate(make_feeder_spec(seed=200, name="feeder-test")),
        train_video=SyntheticVideo.generate(make_feeder_spec(seed=201, name="feeder-train")),
        heldout_video=SyntheticVideo.generate(make_feeder_spec(seed=202, name="feeder-heldout")),
    )
    engine.record_test_day("feeder")
    session = engine.session(video="feeder")

    print("\n-- Visits per feeder side --------------------------------------------")
    for side, predicate in (
        ("left", xmax() < int(WIDTH * 0.5)),
        ("right", xmin() >= int(WIDTH * 0.5)),
    ):
        result = session.execute(
            Q.select("timestamp").where(class_is("bird"), predicate)
        )
        visits = {record.trackid for record in result.records}
        print(f"{side:5s} side: {len(visits):3d} distinct visits")

    print("\n-- Red birds (species proxy) -------------------------------------------")
    red = session.execute(
        Q.select("*").where(class_is("bird"), udf("red_plumage") >= 40)
    )
    red_tracks = {record.trackid for record in red.records}
    print(f"distinct red-bird visits: {len(red_tracks)} "
          f"({len(red.records)} records, plan: {red.plan_description})")

    print("\n-- Average birds visible per frame -----------------------------------")
    fcount = session.execute(
        Q.select(FCOUNT()).where(cls="bird").error_within(0.1)
    )
    print(f"{fcount.value:.2f} birds/frame (strategy: {fcount.method})")


if __name__ == "__main__":
    main()
