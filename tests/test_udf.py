"""Tests for the UDF registry and built-in UDFs."""

import pytest

from repro.errors import UnknownUDFError
from repro.frameql.schema import FrameRecord
from repro.udf.builtin import (
    area,
    blueness,
    brightness,
    frame_redness,
    redness,
)
from repro.udf.registry import UDF, default_udf_registry
from repro.video.frame import COLOR_PALETTE, Frame, GroundTruthObject
from repro.video.geometry import BoundingBox


def _record(color_name="red", box=None):
    return FrameRecord(
        timestamp=0.0,
        frame_index=0,
        object_class="bus",
        mask=box or BoundingBox(0, 0, 400, 300),
        color=COLOR_PALETTE[color_name],
        color_name=color_name,
    )


class TestBuiltinUDFs:
    def test_redness_high_for_red_objects(self):
        assert redness(_record("red")) > redness(_record("white"))
        assert redness(_record("red")) > redness(_record("blue"))

    def test_redness_paper_threshold_separates_red_buses(self):
        """The Figure 3c threshold (17.5) should pass red and reject white."""
        assert redness(_record("red")) >= 17.5
        assert redness(_record("white")) < 17.5

    def test_blueness_high_for_blue_objects(self):
        assert blueness(_record("blue")) > blueness(_record("red"))

    def test_brightness_orders_white_above_black(self):
        assert brightness(_record("white")) > brightness(_record("black"))

    def test_area_uses_mask(self):
        record = _record(box=BoundingBox(0, 0, 100, 50))
        assert area(record) == pytest.approx(5000.0)

    def test_area_zero_without_mask(self):
        class Empty:
            pass

        assert area(Empty()) == 0.0

    def test_redness_handles_missing_color(self):
        class NoColor:
            color = None

        assert redness(NoColor()) == 0.0


class TestFrameLevelUDFs:
    def _frame(self, color_names):
        objects = [
            GroundTruthObject(
                track_id=i,
                object_class="bus",
                box=BoundingBox(0, 0, 200, 200),
                color=COLOR_PALETTE[name],
                color_name=name,
            )
            for i, name in enumerate(color_names)
        ]
        return Frame(index=0, timestamp=0.0, width=1280, height=720, objects=objects)

    def test_frame_redness_with_red_object(self):
        assert frame_redness(self._frame(["red"])) > frame_redness(self._frame(["white"]))

    def test_frame_redness_empty_frame(self):
        assert frame_redness(self._frame([])) == 0.0

    def test_frame_redness_mixture_between_extremes(self):
        red = frame_redness(self._frame(["red"]))
        white = frame_redness(self._frame(["white"]))
        mixed = frame_redness(self._frame(["red", "white"]))
        assert white < mixed < red


class TestRegistry:
    def test_default_registry_contents(self):
        registry = default_udf_registry()
        for name in ("redness", "blueness", "brightness", "area"):
            assert name in registry

    def test_lookup_case_insensitive(self):
        registry = default_udf_registry()
        assert registry.get("REDNESS").name == "redness"

    def test_unknown_udf_raises(self):
        with pytest.raises(UnknownUDFError):
            default_udf_registry().get("classify")

    def test_register_custom_udf(self):
        registry = default_udf_registry()
        registry.register(UDF(name="always_one", object_fn=lambda record: 1.0))
        assert registry.get("always_one")(_record()) == 1.0

    def test_udf_is_callable(self):
        registry = default_udf_registry()
        assert registry.get("redness")(_record("red")) > 0

    def test_names_sorted(self):
        names = default_udf_registry().names()
        assert names == sorted(names)
