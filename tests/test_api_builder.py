"""Builder <-> parser equivalence: the fluent builder must produce exactly the
AST the parser produces for the equivalent FrameQL text, for every query class
the optimizer distinguishes."""

import pytest

from repro.api import (
    AVG,
    COUNT,
    FCOUNT,
    Q,
    SUM,
    QueryBuilder,
    area,
    class_is,
    col,
    fn,
    lit,
    udf,
    xmax,
    ymin,
)
from repro.errors import FrameQLAnalysisError
from repro.frameql.analyzer import QueryKind, analyze
from repro.frameql.ast import BinaryOp, ColumnRef, Literal, UnaryOp
from repro.frameql.parser import parse


class TestParserEquivalence:
    """One representative query per class: builder AST == parse(text) AST."""

    def test_aggregate_query(self):
        built = (
            Q.select(FCOUNT())
            .from_("taipei")
            .where(cls="car")
            .error_within(0.1)
            .confidence(0.95)
            .build()
        )
        parsed = parse(
            "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
            "ERROR WITHIN 0.1 AT CONFIDENCE 95%"
        )
        assert built == parsed
        assert analyze(built).kind is QueryKind.AGGREGATE

    def test_scrubbing_query(self):
        built = (
            Q.select("timestamp")
            .from_("taipei")
            .group_by("timestamp")
            .having(SUM(class_is("bus")) >= 1, SUM(class_is("car")) >= 5)
            .limit(10)
            .gap(300)
            .build()
        )
        parsed = parse(
            "SELECT timestamp FROM taipei GROUP BY timestamp "
            "HAVING SUM(class='bus') >= 1 AND SUM(class='car') >= 5 "
            "LIMIT 10 GAP 300"
        )
        assert built == parsed
        assert analyze(built).kind is QueryKind.SCRUBBING

    def test_selection_query(self):
        built = (
            Q.select("*")
            .from_("taipei")
            .where(class_is("bus"), udf("redness") >= 17.5, area() > 100000)
            .group_by("trackid")
            .having(COUNT() > 15)
            .build()
        )
        parsed = parse(
            "SELECT * FROM taipei WHERE class = 'bus' "
            "AND redness(content) >= 17.5 AND area(mask) > 100000 "
            "GROUP BY trackid HAVING COUNT(*) > 15"
        )
        assert built == parsed
        assert analyze(built).kind is QueryKind.SELECTION

    def test_exact_query(self):
        built = Q.select("*").from_("taipei").build()
        parsed = parse("SELECT * FROM taipei")
        assert built == parsed
        assert analyze(built).kind is QueryKind.EXACT

    def test_spatial_and_count_distinct(self):
        built = (
            Q.select(COUNT("trackid", distinct=True))
            .from_("amsterdam")
            .where(class_is("car"), xmax() < 960, ymin() >= 100)
            .build()
        )
        parsed = parse(
            "SELECT COUNT(DISTINCT trackid) FROM amsterdam "
            "WHERE class = 'car' AND xmax(mask) < 960 AND ymin(mask) >= 100"
        )
        assert built == parsed

    def test_noscope_replication_query(self):
        built = (
            Q.select("timestamp")
            .from_("taipei")
            .where(cls="person")
            .fnr_within(0.01)
            .fpr_within(0.01)
            .build()
        )
        parsed = parse(
            "SELECT timestamp FROM taipei WHERE class = 'person' "
            "FNR WITHIN 0.01 FPR WITHIN 0.01"
        )
        assert built == parsed

    def test_builder_text_round_trips_through_parser(self):
        builder = (
            Q.select(FCOUNT())
            .from_("rialto")
            .where(cls="boat")
            .error_within(0.05)
            .confidence(0.99)
        )
        assert parse(str(builder)) == builder.build()


class TestBuilderSemantics:
    def test_builders_are_immutable(self):
        base = Q.select("timestamp").from_("taipei")
        narrowed = base.where(cls="car")
        assert base.build().where is None
        assert narrowed.build().where is not None

    def test_where_calls_accumulate_conjuncts(self):
        split = (
            Q.select("*").from_("v").where(class_is("bus")).where(area() > 10).build()
        )
        joined = Q.select("*").from_("v").where(class_is("bus"), area() > 10).build()
        assert split == joined

    def test_confidence_accepts_percent_or_fraction(self):
        as_fraction = Q.select(FCOUNT()).from_("v").confidence(0.95).build()
        as_percent = Q.select(FCOUNT()).from_("v").confidence(95).build()
        assert as_fraction.confidence == pytest.approx(0.95)
        assert as_percent.confidence == pytest.approx(0.95)

    def test_confidence_out_of_range_rejected(self):
        with pytest.raises(FrameQLAnalysisError, match="confidence"):
            Q.select(FCOUNT()).from_("v").confidence(150)
        with pytest.raises(FrameQLAnalysisError, match="confidence"):
            Q.select(FCOUNT()).from_("v").confidence(0)

    def test_expression_helpers(self):
        assert col("timestamp") == ColumnRef("timestamp")
        assert lit(3) == Literal(3)
        assert fn("redness", col("content")) == udf("redness")
        assert AVG("timestamp") == fn("AVG", col("timestamp"))
        predicate = col("timestamp").eq(5)
        assert predicate == BinaryOp("=", ColumnRef("timestamp"), Literal(5))
        assert col("timestamp").ne(5).op == "!="
        negated = ~class_is("car")
        assert isinstance(negated, UnaryOp) and negated.op == "NOT"
        conjunction = class_is("car") & (area() > 10)
        assert conjunction.op == "AND"

    def test_build_without_select_or_from_raises(self):
        with pytest.raises(FrameQLAnalysisError, match="selects nothing"):
            QueryBuilder().from_("v").build()
        with pytest.raises(FrameQLAnalysisError, match="no FROM video"):
            Q.select("*").build()
        with pytest.raises(FrameQLAnalysisError):
            Q.select("*").from_("v").where()

    def test_int_and_float_literals_match_parser(self):
        built = Q.select("*").from_("v").where(class_is("bus"), area() > 100000).build()
        parsed = parse("SELECT * FROM v WHERE class='bus' AND area(mask) > 100000")
        assert built == parsed  # 100000 stays an int on both sides
        built_f = Q.select("*").from_("v").where(class_is("bus"), udf("redness") >= 17.5).build()
        parsed_f = parse("SELECT * FROM v WHERE class='bus' AND redness(content) >= 17.5")
        assert built_f == parsed_f
