"""Tests for the evaluation workloads and the exception hierarchy."""

import pytest

from repro import errors
from repro.frameql.analyzer import (
    AggregateQuerySpec,
    ScrubbingQuerySpec,
    SelectionQuerySpec,
    analyze,
)
from repro.frameql.parser import parse
from repro.workloads.queries import (
    AGGREGATE_VIDEOS,
    SCRUBBING_QUERIES,
    aggregate_query,
    multiclass_scrubbing_query,
    noscope_replication_query,
    red_bus_selection_query,
    scrubbing_query,
)


class TestWorkloadQueries:
    def test_aggregate_queries_parse_for_every_video(self):
        for video, object_class in AGGREGATE_VIDEOS.items():
            spec = analyze(parse(aggregate_query(video, object_class)))
            assert isinstance(spec, AggregateQuerySpec)
            assert spec.video == video
            assert spec.object_class == object_class

    def test_scrubbing_queries_parse_for_every_video(self):
        for video, workload in SCRUBBING_QUERIES.items():
            text = scrubbing_query(
                workload.video, workload.object_class, workload.min_count
            )
            spec = analyze(parse(text))
            assert isinstance(spec, ScrubbingQuerySpec)
            assert spec.min_counts == {workload.object_class: workload.min_count}
            assert video == workload.video

    def test_multiclass_scrubbing_query(self):
        spec = analyze(parse(multiclass_scrubbing_query("taipei", {"bus": 1, "car": 5})))
        assert isinstance(spec, ScrubbingQuerySpec)
        assert spec.min_counts == {"bus": 1, "car": 5}

    def test_red_bus_selection_query(self):
        spec = analyze(parse(red_bus_selection_query()))
        assert isinstance(spec, SelectionQuerySpec)
        assert spec.object_class == "bus"
        assert spec.min_area == pytest.approx(100000)

    def test_noscope_replication_query(self):
        spec = analyze(parse(noscope_replication_query("taipei", "car")))
        assert isinstance(spec, SelectionQuerySpec)
        assert spec.fnr_within == pytest.approx(0.01)
        assert spec.fpr_within == pytest.approx(0.01)

    def test_custom_error_and_confidence(self):
        spec = analyze(parse(aggregate_query("taipei", "car", error=0.03, confidence=0.99)))
        assert spec.error_tolerance == pytest.approx(0.03)
        assert spec.confidence == pytest.approx(0.99)

    def test_scrubbing_query_limit_and_gap(self):
        spec = analyze(parse(scrubbing_query("taipei", "car", 6, limit=25, gap=60)))
        assert spec.limit == 25
        assert spec.gap == 60


class TestErrorHierarchy:
    def test_all_errors_derive_from_blazeit_error(self):
        error_classes = [
            errors.FrameQLSyntaxError,
            errors.FrameQLAnalysisError,
            errors.UnknownVideoError,
            errors.UnknownUDFError,
            errors.InsufficientTrainingDataError,
            errors.PlanningError,
            errors.ExecutionError,
            errors.BudgetExceededError,
            errors.ConfigurationError,
        ]
        for error_class in error_classes:
            assert issubclass(error_class, errors.BlazeItError)

    def test_syntax_error_carries_position(self):
        error = errors.FrameQLSyntaxError("bad token", position=12)
        assert error.position == 12
        assert "12" in str(error)

    def test_syntax_error_without_position(self):
        error = errors.FrameQLSyntaxError("bad token")
        assert error.position is None

    def test_catching_base_class_catches_all(self):
        with pytest.raises(errors.BlazeItError):
            raise errors.PlanningError("nope")
