"""Tests for the logical plan layer built from analyzed query specs."""

import pytest

from repro.errors import PlanningError
from repro.frameql.analyzer import QueryKind, analyze
from repro.frameql.parser import parse
from repro.optimizer.logical import LogicalPlan, build_logical_plan


def _logical(text: str) -> LogicalPlan:
    return build_logical_plan(analyze(parse(text)))


class TestLogicalShapes:
    def test_aggregate(self):
        plan = _logical(
            "SELECT FCOUNT(*) FROM v WHERE class='car' ERROR WITHIN 0.1"
        )
        assert plan.kind is QueryKind.AGGREGATE
        assert plan.video == "v"
        assert plan.approximate is True
        assert plan.required_classes == frozenset({"car"})
        assert plan.root.flatten() == [
            "LogicalAggregate",
            "LogicalClassCount",
            "LogicalScan",
        ]

    def test_aggregate_without_tolerance_is_not_approximate(self):
        plan = _logical("SELECT FCOUNT(*) FROM v WHERE class='car'")
        assert plan.approximate is False

    def test_count_distinct_is_not_approximate(self):
        plan = _logical(
            "SELECT COUNT(DISTINCT trackid) FROM v WHERE class='car'"
        )
        assert plan.approximate is False

    def test_scrubbing(self):
        plan = _logical(
            "SELECT timestamp FROM v GROUP BY timestamp "
            "HAVING SUM(class='car') >= 2 AND SUM(class='bus') >= 1 LIMIT 5 GAP 30"
        )
        assert plan.kind is QueryKind.SCRUBBING
        assert plan.required_classes == frozenset({"car", "bus"})
        assert plan.root.flatten() == [
            "LogicalLimit",
            "LogicalEventFilter",
            "LogicalScan",
        ]
        assert "limit=5" in plan.root.detail
        assert "count(bus)>=1" in plan.root.children[0].detail

    def test_selection(self):
        plan = _logical(
            "SELECT * FROM v WHERE class='bus' AND redness(content) >= 17.5"
        )
        assert plan.kind is QueryKind.SELECTION
        assert plan.required_classes == frozenset({"bus"})
        assert plan.root.flatten() == ["LogicalSelect", "LogicalScan"]
        assert "class=bus" in plan.root.detail
        assert "redness(content)>=17.5" in plan.root.detail

    def test_selection_with_track_constraint(self):
        plan = _logical(
            "SELECT timestamp FROM v WHERE class='car' "
            "GROUP BY trackid HAVING COUNT(*) > 15"
        )
        assert plan.root.flatten() == [
            "LogicalTrackConstraint",
            "LogicalSelect",
            "LogicalScan",
        ]

    def test_exact(self):
        plan = _logical("SELECT * FROM v")
        assert plan.kind is QueryKind.EXACT
        assert plan.required_classes == frozenset()
        assert plan.root.flatten() == ["LogicalMaterialize", "LogicalScan"]

    def test_unknown_spec_rejected(self):
        with pytest.raises(PlanningError):
            build_logical_plan(object())  # type: ignore[arg-type]


class TestLogicalRendering:
    def test_render_and_describe(self):
        plan = _logical(
            "SELECT FCOUNT(*) FROM taipei WHERE class='car' ERROR WITHIN 0.1"
        )
        rendered = plan.render()
        assert "LogicalAggregate(fcount(car), error<=0.1 @ 0.95)" in rendered
        assert "LogicalScan(video=taipei)" in rendered
        assert "kind=aggregate" in plan.describe()
        assert "classes=car" in plan.describe()

    def test_optimizer_exposes_logical_plan(self, tiny_engine):
        spec = tiny_engine.analyze("SELECT * FROM tiny")
        logical = tiny_engine.optimizer.logical_plan(spec)
        assert logical.kind is QueryKind.EXACT
        assert logical.video == "tiny"
