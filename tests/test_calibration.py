"""Tests for threshold calibration and bootstrap error estimation."""

import numpy as np
import pytest

from repro.specialization.calibration import (
    bootstrap_error_estimate,
    calibrate_no_false_negative_threshold,
    error_within_tolerance,
)


class TestNoFalseNegativeCalibration:
    def test_zero_false_negatives_by_construction(self):
        rng = np.random.default_rng(0)
        scores = rng.uniform(0, 1, size=500)
        positives = scores > 0.7  # positives have high scores
        calibration = calibrate_no_false_negative_threshold(scores, positives)
        assert calibration.false_negatives == 0
        passed = scores >= calibration.threshold
        assert np.all(passed[positives])

    def test_threshold_discards_some_negatives(self):
        scores = np.concatenate([np.full(90, 0.1), np.full(10, 0.9)])
        positives = np.concatenate([np.zeros(90, dtype=bool), np.ones(10, dtype=bool)])
        calibration = calibrate_no_false_negative_threshold(scores, positives)
        assert calibration.selectivity < 0.2
        assert calibration.positives == 10

    def test_no_positives_passes_everything(self):
        scores = np.array([0.1, 0.5, 0.9])
        positives = np.zeros(3, dtype=bool)
        calibration = calibrate_no_false_negative_threshold(scores, positives)
        assert calibration.selectivity == 1.0
        assert calibration.threshold == float("-inf")

    def test_empty_input(self):
        calibration = calibrate_no_false_negative_threshold(
            np.array([]), np.array([], dtype=bool)
        )
        assert calibration.selectivity == 1.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            calibrate_no_false_negative_threshold(
                np.array([1.0, 2.0]), np.array([True])
            )

    def test_overlapping_distributions_keep_all_positives(self):
        rng = np.random.default_rng(1)
        scores = np.concatenate(
            [rng.normal(0.0, 1.0, 300), rng.normal(1.0, 1.0, 50)]
        )
        positives = np.concatenate([np.zeros(300, dtype=bool), np.ones(50, dtype=bool)])
        calibration = calibrate_no_false_negative_threshold(scores, positives)
        assert calibration.false_negatives == 0
        # With heavy overlap the filter should be conservative, not aggressive.
        assert calibration.selectivity > 0.3


class TestBootstrap:
    def test_unbiased_predictions_give_small_errors(self):
        rng = np.random.default_rng(0)
        truths = rng.poisson(2.0, size=2000).astype(float)
        predictions = truths + rng.normal(0, 0.2, size=2000)
        errors = bootstrap_error_estimate(predictions, truths, n_bootstrap=100, seed=1)
        assert np.quantile(errors, 0.95) < 0.05

    def test_biased_predictions_give_large_errors(self):
        rng = np.random.default_rng(0)
        truths = rng.poisson(2.0, size=2000).astype(float)
        predictions = truths + 0.5
        errors = bootstrap_error_estimate(predictions, truths, n_bootstrap=100, seed=1)
        assert np.quantile(errors, 0.5) > 0.4

    def test_reproducible_with_seed(self):
        rng = np.random.default_rng(0)
        truths = rng.poisson(1.0, size=100).astype(float)
        predictions = truths.copy()
        a = bootstrap_error_estimate(predictions, truths, seed=7)
        b = bootstrap_error_estimate(predictions, truths, seed=7)
        np.testing.assert_allclose(a, b)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bootstrap_error_estimate(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            bootstrap_error_estimate(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            bootstrap_error_estimate(np.array([1.0]), np.array([1.0]), n_bootstrap=0)


class TestErrorWithinTolerance:
    def test_accepts_small_errors(self):
        errors = np.full(100, 0.01)
        assert error_within_tolerance(errors, tolerance=0.1, confidence=0.95)

    def test_rejects_large_errors(self):
        errors = np.full(100, 0.5)
        assert not error_within_tolerance(errors, tolerance=0.1, confidence=0.95)

    def test_confidence_quantile_matters(self):
        # 90% of errors are tiny, 10% are huge.
        errors = np.concatenate([np.full(90, 0.01), np.full(10, 1.0)])
        assert error_within_tolerance(errors, tolerance=0.1, confidence=0.85)
        assert not error_within_tolerance(errors, tolerance=0.1, confidence=0.99)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            error_within_tolerance(np.array([0.1]), tolerance=0.1, confidence=1.5)
        with pytest.raises(ValueError):
            error_within_tolerance(np.array([0.1]), tolerance=-0.1, confidence=0.95)

    def test_empty_errors_rejects(self):
        assert not error_within_tolerance(np.array([]), tolerance=0.1, confidence=0.95)
