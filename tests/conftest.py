"""Shared fixtures for the test suite.

The expensive fixtures (scenario generation, labeled-set construction, test-day
recording) are session-scoped: they simulate "days" of video and run the
simulated detector over them once, then every test reads from the same
objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BlazeItConfig
from repro.core.engine import BlazeIt
from repro.core.labeled_set import LabeledSet
from repro.core.recorded import RecordedDetections
from repro.detection.simulated import SimulatedDetector
from repro.specialization.trainer import TrainingConfig
from repro.video.frame import COLOR_PALETTE
from repro.video.synthetic import ObjectClassSpec, SyntheticVideo, VideoSpec


def make_video_spec(
    name: str = "tiny",
    num_frames: int = 400,
    seed: int = 7,
    car_rate: float = 0.03,
    bus_rate: float = 0.01,
) -> VideoSpec:
    """A small two-class video spec used across unit tests."""
    return VideoSpec(
        name=name,
        width=1280,
        height=720,
        fps=30.0,
        num_frames=num_frames,
        seed=seed,
        object_classes=(
            ObjectClassSpec(
                name="car",
                arrival_rate=car_rate,
                mean_duration=40.0,
                size_range=(80.0, 200.0),
                color_weights={"white": 2.0, "red": 1.0, "black": 2.0},
                burstiness=0.4,
                speed=6.0,
            ),
            ObjectClassSpec(
                name="bus",
                arrival_rate=bus_rate,
                mean_duration=80.0,
                size_range=(250.0, 500.0),
                color_weights={"white": 1.5, "red": 1.0},
                burstiness=0.2,
                speed=4.0,
            ),
        ),
    )


@pytest.fixture(scope="session")
def tiny_video() -> SyntheticVideo:
    """A small synthetic video (400 frames, cars and buses)."""
    return SyntheticVideo.generate(make_video_spec())


@pytest.fixture(scope="session")
def tiny_train_video() -> SyntheticVideo:
    """A training-day realisation of the same scene statistics."""
    return SyntheticVideo.generate(make_video_spec(name="tiny-train", seed=8))


@pytest.fixture(scope="session")
def tiny_heldout_video() -> SyntheticVideo:
    """A held-out-day realisation of the same scene statistics."""
    return SyntheticVideo.generate(make_video_spec(name="tiny-heldout", seed=9))


@pytest.fixture(scope="session")
def detector() -> SimulatedDetector:
    """The default Mask R-CNN configuration."""
    return SimulatedDetector.mask_rcnn()


@pytest.fixture(scope="session")
def tiny_recorded(tiny_video, detector) -> RecordedDetections:
    """Recorded detector output over the tiny test video."""
    return RecordedDetections.build(tiny_video, detector)


@pytest.fixture(scope="session")
def tiny_labeled_set(tiny_train_video, tiny_heldout_video, detector) -> LabeledSet:
    """Labeled set built from the tiny training and held-out days."""
    return LabeledSet.build(tiny_train_video, tiny_heldout_video, detector)


@pytest.fixture(scope="session")
def fast_training_config() -> TrainingConfig:
    """Training configuration small enough for unit tests."""
    return TrainingConfig(epochs=3, batch_size=32, min_examples=16)


@pytest.fixture(scope="session")
def engine_config(fast_training_config) -> BlazeItConfig:
    """Engine configuration tuned for the tiny test videos."""
    return BlazeItConfig(
        training=fast_training_config,
        min_training_positives=20,
        seed=3,
    )


@pytest.fixture(scope="session")
def tiny_engine(
    tiny_video, tiny_train_video, tiny_heldout_video, detector, engine_config
) -> BlazeIt:
    """A fully registered engine over the tiny video (with labeled set)."""
    engine = BlazeIt(detector=detector, config=engine_config)
    engine.register_video(
        "tiny",
        test_video=tiny_video,
        train_video=tiny_train_video,
        heldout_video=tiny_heldout_video,
    )
    engine.record_test_day("tiny")
    return engine


@pytest.fixture()
def rng() -> np.random.Generator:
    """A deterministic random generator for per-test use."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def palette_red() -> tuple[float, float, float]:
    """The canonical red colour of the palette."""
    return COLOR_PALETTE["red"]
