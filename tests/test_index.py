"""Tests for the persistent ingest-time index (build, serve, skip, crash).

The load-bearing property is invariant I7: index evidence is an *upper
bound*, so serving queries from the index — decoding persisted detections
for occupied ranges, synthesizing empty results for provably-empty ones,
skipping frames a sketch proof rules out — never changes results.  Every
query class is checked bit-for-bit against the index-less path at several
parallelism levels.  The rest of the suite covers the atomic commit
protocol under simulated crashes (previous generation stays readable, no
litter), sketch-driven shard pruning (exact test-day proofs beat the
catalog's held-out proportional approximation), warm-start (a fresh
process answers hot queries with zero detector calls) and the
``use_index`` hint.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

import repro.index.builder as builder_mod
import repro.persist as persist
from repro.api.hints import QueryHints
from repro.core.engine import BlazeIt
from repro.detection.base import BoundingBox, Detection, DetectionResult
from repro.errors import ConfigurationError
from repro.index.sketches import RangeSketch
from repro.index.store import MANIFEST_NAME, PersistentIndex, VideoIndex
from repro.parallel.cache import SharedDetectionCache
from repro.parallel.shards import VideoSharder
from repro.service.manager import ServiceConfig, ServiceManager
from repro.video.synthetic import SyntheticVideo

from conftest import make_video_spec

QUERIES = {
    "aggregate_aqp": (
        "SELECT FCOUNT(*) FROM tiny WHERE class = 'car' "
        "ERROR WITHIN 0.1 AT CONFIDENCE 95%"
    ),
    "aggregate_exact": "SELECT FCOUNT(*) FROM tiny WHERE class = 'car'",
    "scrubbing": (
        "SELECT timestamp FROM tiny GROUP BY timestamp "
        "HAVING COUNT(class = 'car') >= 1 LIMIT 5 GAP 30"
    ),
    "selection": "SELECT * FROM tiny WHERE class = 'car'",
    "exact": "SELECT * FROM tiny",
}


def make_engine(detector, engine_config, *, index_dir=None):
    """A fresh engine with a private shared cache (no cross-test bleed)."""
    return BlazeIt(
        detector=detector,
        config=engine_config,
        shared_cache=SharedDetectionCache(capacity_bytes=64 << 20),
        index_dir=index_dir,
    )


def make_tiny_engine(
    tiny_video, tiny_labeled_set, detector, engine_config, *, index_dir=None
):
    engine = make_engine(detector, engine_config, index_dir=index_dir)
    engine.register_video("tiny", test_video=tiny_video)
    engine.attach_labeled_set("tiny", tiny_labeled_set)
    return engine


@pytest.fixture(scope="module")
def index_root(
    tmp_path_factory, tiny_video, tiny_labeled_set, detector, engine_config
):
    """A committed index generation for the tiny video (built once)."""
    root = tmp_path_factory.mktemp("index-store")
    engine = make_tiny_engine(
        tiny_video, tiny_labeled_set, detector, engine_config, index_dir=root
    )
    report = engine.build_index("tiny", range_size=16, segment_frames=128)
    return root, report


def run(engine, query, parallelism=1, seed=42, hints=None):
    with engine.session() as session:
        return session.prepare(query, hints=hints).execute(
            rng=np.random.default_rng(seed), parallelism=parallelism
        )


def value_fingerprint(result):
    """Everything observable about a result *except* runtime accounting.

    The indexed and index-less paths legitimately differ in detector calls
    and cache/index counters — that is the whole point — so identity is
    asserted over the answer itself: values, frames, hit sets, records
    (including feature vectors), methods and stop reasons.
    """
    base = (result.kind, result.method, result.stop_reason)
    if hasattr(result, "value"):
        base += (result.value, getattr(result, "samples_used", None))
    if hasattr(result, "frames"):
        base += (tuple(result.frames), result.satisfied)
    if hasattr(result, "matched_frames"):
        base += (tuple(result.matched_frames), result.frames_after_filters)
    if hasattr(result, "records"):
        base += (
            tuple(
                (
                    r.frame_index,
                    r.object_class,
                    r.trackid,
                    r.confidence,
                    None if r.features is None else tuple(np.asarray(r.features)),
                )
                for r in result.records
            ),
        )
    return base


def results_identical(first, second):
    assert value_fingerprint(first) == value_fingerprint(second)


# -- build and read ----------------------------------------------------------------


class TestBuildAndRead:
    def test_build_report(self, index_root, tiny_video):
        _, report = index_root
        assert report["generation"] == 1
        assert report["num_frames"] == tiny_video.num_frames
        assert report["segments"] == 4
        assert report["detector_calls"] == tiny_video.num_frames
        assert report["has_statistics"] is True
        assert set(report["classes"]) == {"car", "bus"}

    def test_persisted_frames_are_bit_identical_to_detector(
        self, index_root, tiny_video, detector
    ):
        root, _ = index_root
        store = PersistentIndex(root)
        index = store.entries()[0]
        try:
            for frame in (0, 1, 57, 255, tiny_video.num_frames - 1):
                live = detector.detect(tiny_video, frame)
                stored = index.result_for(frame)
                assert stored.frame_index == live.frame_index
                assert stored.timestamp == live.timestamp
                assert len(stored.detections) == len(live.detections)
                for got, want in zip(stored.detections, live.detections):
                    assert got.object_class == want.object_class
                    assert got.confidence == want.confidence
                    assert got.box == want.box
                    assert got.color == want.color
                    assert got.color_name == want.color_name
                    assert np.array_equal(
                        np.asarray(got.features), np.asarray(want.features)
                    )
        finally:
            index.close()

    def test_sketch_round_trips_through_commit(self, index_root, tiny_video, detector):
        root, _ = index_root
        index = PersistentIndex(root).entries()[0]
        try:
            results = [
                detector.detect(tiny_video, frame)
                for frame in range(tiny_video.num_frames)
            ]
            rebuilt = RangeSketch.from_results(
                results, tiny_video.num_frames, range_size=16
            )
            assert index.sketch.class_table == rebuilt.class_table
            assert np.array_equal(index.sketch.presence_frames, rebuilt.presence_frames)
            assert np.array_equal(index.sketch.total_count, rebuilt.total_count)
            assert np.array_equal(index.sketch.max_count, rebuilt.max_count)
            assert np.array_equal(index.sketch.occupied_frames, rebuilt.occupied_frames)
        finally:
            index.close()

    def test_statistics_entry_is_persisted(self, index_root, tiny_video):
        root, _ = index_root
        index = PersistentIndex(root).entries()[0]
        try:
            stats = index.statistics()
            assert stats is not None
            assert stats.num_frames == tiny_video.num_frames
        finally:
            index.close()

    def test_open_requires_matching_cache_key(self, index_root):
        root, _ = index_root
        store = PersistentIndex(root)
        assert store.open("tiny", "some-other-detector-identity") is None

    def test_build_without_store_is_a_configuration_error(
        self, tiny_video, tiny_labeled_set, detector, engine_config
    ):
        engine = make_tiny_engine(
            tiny_video, tiny_labeled_set, detector, engine_config
        )
        with pytest.raises(ConfigurationError):
            engine.build_index("tiny")

    def test_invalid_build_parameters_rejected(
        self, tmp_path, tiny_video, tiny_labeled_set, detector, engine_config
    ):
        engine = make_tiny_engine(
            tiny_video, tiny_labeled_set, detector, engine_config,
            index_dir=tmp_path / "store",
        )
        with pytest.raises(ConfigurationError):
            engine.build_index("tiny", segment_frames=0)
        with pytest.raises(ConfigurationError):
            engine.build_index("tiny", range_size=0)


# -- crash safety of the commit protocol -------------------------------------------


class _DiesMidWrite(Exception):
    """Stands in for SIGKILL arriving during an index build."""


def _crash_after_writes(monkeypatch, survive: int):
    """Let ``survive`` atomic writes finish, then die mid-payload."""
    real_fdopen = os.fdopen
    state = {"left": survive}

    def exploding_fdopen(fd, *args, **kwargs):
        handle = real_fdopen(fd, *args, **kwargs)
        if state["left"] <= 0:
            real_write = handle.write

            def write(data):
                real_write(data[: max(1, len(data) // 2)])
                raise _DiesMidWrite()

            handle.write = write
        state["left"] -= 1
        return handle

    monkeypatch.setattr(persist.os, "fdopen", exploding_fdopen)


def _crash_at_manifest_commit(monkeypatch):
    """Die exactly at the commit point (segments already renamed into place)."""
    real_write = builder_mod.atomic_write_text

    def exploding(path, text):
        if path.name == MANIFEST_NAME:
            raise _DiesMidWrite()
        real_write(path, text)

    monkeypatch.setattr(builder_mod, "atomic_write_text", exploding)


@pytest.fixture()
def small_indexed_engine(tmp_path, detector, engine_config):
    """A 64-frame video with one committed generation (fast rebuilds)."""
    root = tmp_path / "store"
    engine = make_engine(detector, engine_config, index_dir=root)
    video = SyntheticVideo.generate(
        make_video_spec(name="small", num_frames=64, seed=13)
    )
    engine.register_video("small", test_video=video)
    report = engine.build_index(
        "small", range_size=8, segment_frames=32, include_statistics=False
    )
    assert report["generation"] == 1
    return engine, root, video


def _video_dir(root):
    children = [child for child in root.iterdir() if child.is_dir()]
    assert len(children) == 1
    return children[0]


class TestCrashSafety:
    def test_crash_mid_segment_write_keeps_previous_generation(
        self, small_indexed_engine, detector, monkeypatch
    ):
        engine, root, video = small_indexed_engine
        # 14 columns per segment: die midway through the second segment.
        _crash_after_writes(monkeypatch, survive=20)
        with pytest.raises(_DiesMidWrite):
            engine.build_index(
                "small", range_size=8, segment_frames=32, include_statistics=False
            )
        monkeypatch.undo()

        directory = _video_dir(root)
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        assert manifest["generation"] == 1
        # No litter: the partial build is gone, only the committed
        # generation and the manifest remain.
        assert sorted(child.name for child in directory.iterdir()) == [
            "gen-000001",
            MANIFEST_NAME,
        ]
        index = VideoIndex.open(directory)
        try:
            live = detector.detect(video, 5)
            assert index.result_for(5).count() == live.count()
        finally:
            index.close()

    def test_crash_at_manifest_commit_keeps_previous_generation(
        self, small_indexed_engine, monkeypatch
    ):
        engine, root, _video = small_indexed_engine
        _crash_at_manifest_commit(monkeypatch)
        with pytest.raises(_DiesMidWrite):
            engine.build_index(
                "small", range_size=8, segment_frames=32, include_statistics=False
            )
        monkeypatch.undo()

        directory = _video_dir(root)
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        assert manifest["generation"] == 1
        assert sorted(child.name for child in directory.iterdir()) == [
            "gen-000001",
            MANIFEST_NAME,
        ]
        assert VideoIndex.open(directory).num_frames == 64

    def test_next_build_sweeps_hard_kill_litter(self, small_indexed_engine):
        engine, root, _video = small_indexed_engine
        directory = _video_dir(root)
        # Simulate a SIGKILL that left a half-built tmp dir and an orphaned
        # generation the manifest never pointed at.
        (directory / "gen-000002.tmp").mkdir()
        (directory / "gen-000002.tmp" / "seg-000000.box.npy").write_bytes(b"junk")
        (directory / "gen-000007").mkdir()

        report = engine.build_index(
            "small", range_size=8, segment_frames=32, include_statistics=False
        )
        assert report["generation"] == 2
        assert sorted(child.name for child in directory.iterdir()) == [
            "gen-000002",
            MANIFEST_NAME,
        ]

    def test_rebuild_bumps_generation_and_reuses_cache(self, small_indexed_engine):
        engine, root, video = small_indexed_engine
        report = engine.build_index(
            "small", range_size=8, segment_frames=32, include_statistics=False
        )
        # The first build populated the shared cache, so the rebuild pays
        # zero detector calls — and queries see the new generation.
        assert report["generation"] == 2
        assert report["detector_calls"] == 0
        assert report["cache_hits"] == video.num_frames
        assert engine.index_status()["videos"][0]["generation"] == 2


# -- sketch-driven shard pruning (satellite: sharder rates from the index) ---------


def _synthetic_results(num_frames, class_frames):
    """One result per frame; ``class_frames`` maps class -> {frame: count}."""
    results = []
    for frame in range(num_frames):
        detections = []
        for name, frames in class_frames.items():
            for _ in range(frames.get(frame, 0)):
                detections.append(
                    Detection(
                        frame_index=frame,
                        timestamp=frame / 30.0,
                        object_class=name,
                        box=BoundingBox(0.0, 0.0, 10.0, 10.0),
                        confidence=0.9,
                    )
                )
        results.append(
            DetectionResult(
                frame_index=frame, timestamp=frame / 30.0, detections=detections
            )
        )
    return results


class TestSharderSketchRates:
    def test_sketch_prunes_what_heldout_stats_cannot(self, tiny_engine):
        # On the *test day* cars only appear in the last quarter; the
        # held-out day saw cars throughout, so the catalog's proportional
        # approximation keeps every shard alive.
        stats = tiny_engine.catalog.get("tiny")
        assert stats is not None
        assert stats.range_presence_rate("car", 0, 100) > 0.0
        results = _synthetic_results(
            400, {"car": {frame: 1 for frame in range(304, 400, 5)}}
        )
        sketch = RangeSketch.from_results(results, 400, range_size=16)

        sharder = VideoSharder()
        without = sharder.shard(400, 4, stats=stats, object_class="car")
        assert [shard.pruned for shard in without.shards] == [False] * 4
        with_sketch = sharder.shard(
            400, 4, stats=stats, object_class="car", sketch=sketch
        )
        assert [shard.pruned for shard in with_sketch.shards] == [
            True, True, True, False,
        ]

    def test_sketch_rescues_shards_stats_would_wrongly_prune(self, tiny_engine):
        # The held-out day never saw a 'boat', so stats-based pruning kills
        # every shard — silently dropping the test day's actual boats.  The
        # sketch is built from the test day itself and keeps the occupied
        # shard alive (regression for the proportional approximation).
        stats = tiny_engine.catalog.get("tiny")
        assert stats.range_presence_rate("boat", 0, 400) == 0.0
        sharder = VideoSharder()
        stats_only = sharder.shard(400, 4, stats=stats, object_class="boat")
        assert all(shard.pruned for shard in stats_only.shards)

        results = _synthetic_results(
            400, {"boat": {frame: 1 for frame in range(320, 340)}}
        )
        sketch = RangeSketch.from_results(results, 400, range_size=16)
        rescued = sharder.shard(
            400, 4, stats=stats, object_class="boat", sketch=sketch
        )
        assert [shard.pruned for shard in rescued.shards] == [
            True, True, True, False,
        ]

    def test_min_count_pruning_uses_max_count_proof(self):
        # Two cars at once only ever happen in the final shard.
        results = _synthetic_results(
            400,
            {"car": {**{frame: 1 for frame in range(0, 400, 7)}, 399: 2}},
        )
        sketch = RangeSketch.from_results(results, 400, range_size=16)
        plan = VideoSharder().shard(400, 4, min_counts={"car": 2}, sketch=sketch)
        assert [shard.pruned for shard in plan.shards] == [
            True, True, True, False,
        ]

    def test_window_rates_are_upper_bounds(self):
        rng = np.random.default_rng(5)
        frames = {int(f): 1 for f in rng.choice(400, size=60, replace=False)}
        results = _synthetic_results(400, {"car": frames})
        sketch = RangeSketch.from_results(results, 400, range_size=16)
        for start, end in [(0, 400), (3, 57), (100, 101), (250, 399)]:
            true_rate = sum(
                1 for f in range(start, end) if frames.get(f)
            ) / (end - start)
            assert sketch.range_presence_rate("car", start, end) >= true_rate
        # Aligned windows are exact, so whole-video mass is conserved.
        assert sketch.range_presence_rate("car", 0, 400) == len(frames) / 400


# -- query identity: serving from the index never changes results ------------------


class TestQueryIdentity:
    @pytest.mark.parametrize("parallelism", [1, 4])
    @pytest.mark.parametrize(
        "kind, force_plan",
        [
            ("aggregate_aqp", "control_variates"),
            ("aggregate_aqp", "naive_aqp"),
            ("aggregate_exact", None),
            ("scrubbing", "importance"),
            ("scrubbing", "exhaustive"),
            ("selection", None),
            ("exact", None),
        ],
    )
    def test_bit_identical_to_index_less_path(
        self,
        index_root,
        tiny_video,
        tiny_labeled_set,
        detector,
        engine_config,
        kind,
        force_plan,
        parallelism,
    ):
        root, _ = index_root
        hints = QueryHints(force_plan=force_plan) if force_plan else None
        reference = run(
            make_tiny_engine(
                tiny_video, tiny_labeled_set, detector, engine_config
            ),
            QUERIES[kind],
            parallelism=parallelism,
            hints=hints,
        )
        indexed = run(
            make_tiny_engine(
                tiny_video, tiny_labeled_set, detector, engine_config,
                index_dir=root,
            ),
            QUERIES[kind],
            parallelism=parallelism,
            hints=hints,
        )
        results_identical(indexed, reference)
        ledger = indexed.execution_ledger
        assert ledger.detector_calls == 0
        assert ledger.index_hits + ledger.index_skips > 0
        assert reference.execution_ledger.detector_calls > 0
        assert reference.execution_ledger.index_hits == 0

    def test_index_makes_exact_plans_free_so_aqp_answers_exactly(
        self, index_root, tiny_video, tiny_labeled_set, detector, engine_config
    ):
        # With detector cost repriced to zero the optimizer picks the exact
        # scan even for an ERROR WITHIN query: the approximate answer is
        # replaced by the ground truth, at zero detector calls.
        root, _ = index_root
        engine = make_tiny_engine(
            tiny_video, tiny_labeled_set, detector, engine_config, index_dir=root
        )
        exact = run(engine, QUERIES["aggregate_exact"])
        approx = run(engine, QUERIES["aggregate_aqp"])
        assert approx.method == "exact"
        assert approx.value == exact.value


# -- sketch-proof skipping ---------------------------------------------------------


@pytest.fixture(scope="module")
def sparse_setup(tmp_path_factory, detector, engine_config):
    """A sparse video (most sketch ranges provably car-free) with an index."""
    spec = make_video_spec(
        name="sparse", num_frames=256, seed=21, car_rate=0.002, bus_rate=0.001
    )
    video = SyntheticVideo.generate(spec)
    root = tmp_path_factory.mktemp("sparse-index")
    engine = make_engine(detector, engine_config, index_dir=root)
    engine.register_video("sparse", test_video=video)
    engine.build_index(
        "sparse", range_size=8, segment_frames=64, include_statistics=False
    )
    return video, root


class TestSketchSkipping:
    def test_absent_class_is_all_skips(
        self, index_root, tiny_video, tiny_labeled_set, detector, engine_config
    ):
        # 'person' never appears in the indexed video, so the sketch proves
        # count 0 everywhere: no decode, no detector, exact zero.
        root, _ = index_root
        engine = make_tiny_engine(
            tiny_video, tiny_labeled_set, detector, engine_config, index_dir=root
        )
        result = engine.query("SELECT FCOUNT(*) FROM tiny WHERE class = 'person'")
        assert result.value == 0.0
        ledger = result.execution_ledger
        assert ledger.detector_calls == 0
        assert ledger.index_hits == 0
        assert ledger.index_skips == tiny_video.num_frames

    def test_sparse_video_count_skips_most_frames(
        self, sparse_setup, detector, engine_config
    ):
        video, root = sparse_setup
        engine = make_engine(detector, engine_config, index_dir=root)
        engine.register_video("sparse", test_video=video)
        result = engine.query("SELECT FCOUNT(*) FROM sparse WHERE class = 'car'")
        expected = sum(
            detector.detect(video, frame).count("car")
            for frame in range(video.num_frames)
        ) / video.num_frames
        assert result.value == expected
        ledger = result.execution_ledger
        assert ledger.detector_calls == 0
        assert ledger.index_skips > 0
        assert ledger.index_hits + ledger.index_skips == video.num_frames

    def test_min_count_probe_skips_unreachable_frames(
        self, sparse_setup, detector, engine_config
    ):
        video, root = sparse_setup
        engine = make_engine(detector, engine_config, index_dir=root)
        engine.register_video("sparse", test_video=video)
        result = engine.query(
            "SELECT timestamp FROM sparse GROUP BY timestamp "
            "HAVING COUNT(class = 'car') >= 3 LIMIT 2 GAP 10"
        )
        ledger = result.execution_ledger
        assert ledger.detector_calls == 0
        assert ledger.index_skips > 0


# -- warm start and the use_index hint ---------------------------------------------


class TestWarmStart:
    def test_fresh_process_answers_hot_queries_without_detector(
        self, index_root, tiny_video, detector, engine_config
    ):
        root, _ = index_root
        cache = SharedDetectionCache(capacity_bytes=64 << 20)
        engine = BlazeIt(
            detector=detector, config=engine_config,
            shared_cache=cache, index_dir=root,
        )
        engine.register_video("tiny", test_video=tiny_video)
        # The persisted statistics entry is registered at construction,
        # without re-running the detector over the labeled days.
        assert engine.catalog.get("tiny") is not None

        report = engine.warm_start()
        assert report["enabled"] is True
        assert report["videos"] == ["tiny"]
        assert report["frames_loaded"] == tiny_video.num_frames
        assert len(cache) == tiny_video.num_frames

        # Even with the index view bypassed, the warmed shared cache serves
        # the whole scan: zero detector calls in a fresh process.
        result = engine.query(
            QUERIES["aggregate_exact"], hints=QueryHints(use_index=False)
        )
        ledger = result.execution_ledger
        assert ledger.detector_calls == 0
        assert ledger.index_hits == 0 and ledger.index_skips == 0
        assert ledger.shared_cache_hits > 0

    def test_warm_start_without_store_reports_disabled(
        self, detector, engine_config
    ):
        engine = make_engine(detector, engine_config)
        assert engine.warm_start() == {
            "enabled": False,
            "videos": [],
            "frames_loaded": 0,
            "catalog_entries": 0,
        }


class TestUseIndexHint:
    def test_use_index_false_detaches_the_index(
        self, index_root, tiny_video, tiny_labeled_set, detector, engine_config
    ):
        root, _ = index_root
        engine = make_tiny_engine(
            tiny_video, tiny_labeled_set, detector, engine_config, index_dir=root
        )
        detached = run(
            engine, QUERIES["aggregate_exact"], hints=QueryHints(use_index=False)
        )
        assert detached.execution_ledger.index_hits == 0
        assert detached.execution_ledger.index_skips == 0
        assert detached.execution_ledger.detector_calls > 0

        served = run(engine, QUERIES["aggregate_exact"])
        assert served.value == detached.value
        assert served.execution_ledger.detector_calls == 0

    def test_use_index_must_be_bool(self):
        with pytest.raises(ConfigurationError):
            QueryHints(use_index=1)

    def test_describe_mentions_use_index(self):
        assert "use_index=False" in QueryHints(use_index=False).describe()
        assert "use_index" not in QueryHints().describe()

    def test_explain_tightens_detector_estimate_to_zero(
        self, index_root, tiny_video, tiny_labeled_set, detector, engine_config
    ):
        root, _ = index_root
        engine = make_tiny_engine(
            tiny_video, tiny_labeled_set, detector, engine_config, index_dir=root
        )
        served = engine.session().explain(QUERIES["aggregate_exact"])
        assert served.estimated_detector_calls == 0
        detached = engine.session().explain(
            QUERIES["aggregate_exact"], hints=QueryHints(use_index=False)
        )
        assert detached.estimated_detector_calls > 0


# -- status surfaces ---------------------------------------------------------------


class TestStatusSurfaces:
    def test_index_status_reports_store_and_view_counters(
        self, index_root, tiny_video, tiny_labeled_set, detector, engine_config
    ):
        root, _ = index_root
        engine = make_tiny_engine(
            tiny_video, tiny_labeled_set, detector, engine_config, index_dir=root
        )
        run(engine, QUERIES["aggregate_exact"])
        status = engine.index_status()
        assert status["enabled"] is True
        row = status["videos"][0]
        assert row["video"] == "tiny"
        assert row["generation"] == 1
        counters = status["attached"]["tiny"]
        assert counters["frames_served"] + counters["frames_skipped"] > 0

    def test_index_status_disabled_without_store(self, detector, engine_config):
        engine = make_engine(detector, engine_config)
        assert engine.index_status() == {"enabled": False}

    def test_service_warm_starts_at_boot_and_exposes_index_status(
        self, index_root, tiny_video, detector, engine_config
    ):
        root, _ = index_root
        engine = make_engine(detector, engine_config, index_dir=root)
        engine.register_video("tiny", test_video=tiny_video)
        manager = ServiceManager(engine, ServiceConfig(slots=2))
        try:
            status = manager.status()
            assert status["index"]["enabled"] is True
            assert status["index"]["warm_start"]["frames_loaded"] == (
                tiny_video.num_frames
            )
            assert status["index"]["videos"][0]["video"] == "tiny"
        finally:
            manager.shutdown()

    def test_service_warm_start_can_be_disabled(
        self, index_root, tiny_video, detector, engine_config
    ):
        root, _ = index_root
        engine = make_engine(detector, engine_config, index_dir=root)
        engine.register_video("tiny", test_video=tiny_video)
        manager = ServiceManager(
            engine, ServiceConfig(slots=2, warm_start_index=False)
        )
        try:
            status = manager.status()
            assert status["index"]["enabled"] is True
            assert "warm_start" not in status["index"]
        finally:
            manager.shutdown()
