"""Tests for the small classification models and the training loop."""

import numpy as np
import pytest

from repro.errors import InsufficientTrainingDataError
from repro.metrics.runtime import RuntimeLedger
from repro.specialization.features import FeatureScaler
from repro.specialization.models import SoftmaxRegression, TinyMLP
from repro.specialization.trainer import TrainingConfig, train_classifier


def _separable_dataset(n=400, seed=0):
    """Two well-separated Gaussian blobs in 5 dimensions."""
    rng = np.random.default_rng(seed)
    features0 = rng.normal(-1.0, 0.3, size=(n // 2, 5))
    features1 = rng.normal(1.0, 0.3, size=(n // 2, 5))
    features = np.vstack([features0, features1])
    labels = np.concatenate([np.zeros(n // 2, dtype=int), np.ones(n // 2, dtype=int)])
    return features, labels


class TestFeatureScaler:
    def test_fit_transform_standardises(self):
        rng = np.random.default_rng(0)
        features = rng.normal(5.0, 3.0, size=(200, 4))
        scaled = FeatureScaler().fit_transform(features)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_dimension_does_not_divide_by_zero(self):
        features = np.ones((50, 3))
        scaled = FeatureScaler().fit_transform(features)
        assert np.all(np.isfinite(scaled))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            FeatureScaler().transform(np.zeros((2, 2)))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            FeatureScaler().fit(np.zeros(5))

    def test_is_fitted(self):
        scaler = FeatureScaler()
        assert not scaler.is_fitted
        scaler.fit(np.zeros((4, 2)))
        assert scaler.is_fitted


class TestSoftmaxRegression:
    def test_learns_separable_data(self):
        features, labels = _separable_dataset()
        model = SoftmaxRegression(n_features=5, n_classes=2, seed=0)
        train_classifier(model, features, labels, TrainingConfig(epochs=5))
        accuracy = float(np.mean(model.predict(features) == labels))
        assert accuracy > 0.95

    def test_predict_proba_sums_to_one(self):
        features, labels = _separable_dataset(n=100)
        model = SoftmaxRegression(n_features=5, n_classes=2)
        train_classifier(model, features, labels, TrainingConfig(epochs=1))
        proba = model.predict_proba(features)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(proba >= 0.0)

    def test_loss_decreases_over_epochs(self):
        features, labels = _separable_dataset()
        model = SoftmaxRegression(n_features=5, n_classes=2, seed=1)
        losses = train_classifier(model, features, labels, TrainingConfig(epochs=4))
        assert losses[-1] < losses[0]

    def test_rejects_single_class(self):
        with pytest.raises(ValueError):
            SoftmaxRegression(n_features=3, n_classes=1)


class TestTinyMLP:
    def test_learns_separable_data(self):
        features, labels = _separable_dataset()
        model = TinyMLP(n_features=5, n_classes=2, hidden_size=16, seed=0)
        train_classifier(model, features, labels, TrainingConfig(epochs=5))
        accuracy = float(np.mean(model.predict(features) == labels))
        assert accuracy > 0.95

    def test_learns_nonlinear_boundary_better_than_linear(self):
        """XOR-style data: the MLP should beat the linear model."""
        rng = np.random.default_rng(3)
        features = rng.uniform(-1.0, 1.0, size=(600, 2))
        labels = ((features[:, 0] * features[:, 1]) > 0).astype(int)
        linear = SoftmaxRegression(n_features=2, n_classes=2, seed=0)
        mlp = TinyMLP(n_features=2, n_classes=2, hidden_size=32, seed=0)
        config = TrainingConfig(epochs=20, learning_rate=0.2)
        train_classifier(linear, features, labels, config)
        train_classifier(mlp, features, labels, config)
        linear_acc = float(np.mean(linear.predict(features) == labels))
        mlp_acc = float(np.mean(mlp.predict(features) == labels))
        assert mlp_acc > linear_acc + 0.1

    def test_invalid_hidden_size(self):
        with pytest.raises(ValueError):
            TinyMLP(n_features=3, n_classes=2, hidden_size=0)

    def test_predict_proba_valid(self):
        features, labels = _separable_dataset(n=100)
        model = TinyMLP(n_features=5, n_classes=2)
        train_classifier(model, features, labels, TrainingConfig(epochs=1))
        proba = model.predict_proba(features)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)


class TestTrainer:
    def test_training_charges_ledger(self):
        features, labels = _separable_dataset(n=100)
        model = SoftmaxRegression(n_features=5, n_classes=2)
        ledger = RuntimeLedger()
        train_classifier(model, features, labels, TrainingConfig(epochs=2), ledger)
        assert ledger.call_count("specialized_nn_train") == 200

    def test_insufficient_data_raises(self):
        features, labels = _separable_dataset(n=10)
        model = SoftmaxRegression(n_features=5, n_classes=2)
        with pytest.raises(InsufficientTrainingDataError):
            train_classifier(model, features, labels, TrainingConfig(min_examples=32))

    def test_length_mismatch_raises(self):
        model = SoftmaxRegression(n_features=5, n_classes=2)
        with pytest.raises(ValueError):
            train_classifier(model, np.zeros((10, 5)), np.zeros(9, dtype=int))

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            TrainingConfig(momentum=1.0)
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)

    def test_default_config_matches_paper_recipe(self):
        config = TrainingConfig()
        assert config.momentum == pytest.approx(0.9)
        assert config.batch_size == 16
