"""Tests for detection quality metrics (average precision / mAP)."""

import pytest

from repro.detection.base import Detection
from repro.detection.metrics import average_precision, mean_average_precision
from repro.video.frame import GroundTruthObject
from repro.video.geometry import BoundingBox


def _truth(x, object_class="car", track_id=0):
    return GroundTruthObject(
        track_id=track_id,
        object_class=object_class,
        box=BoundingBox(x, 0.0, x + 10.0, 10.0),
        color=(255.0, 255.0, 255.0),
        color_name="white",
    )


def _det(x, confidence, object_class="car"):
    return Detection(
        frame_index=0,
        timestamp=0.0,
        object_class=object_class,
        box=BoundingBox(x, 0.0, x + 10.0, 10.0),
        confidence=confidence,
    )


class TestAveragePrecision:
    def test_perfect_detections(self):
        truths = {0: [_truth(0.0), _truth(100.0)]}
        dets = {0: [_det(0.0, 0.9), _det(100.0, 0.8)]}
        assert average_precision(dets, truths, "car") == pytest.approx(1.0)

    def test_missed_everything(self):
        truths = {0: [_truth(0.0)]}
        dets = {0: []}
        assert average_precision(dets, truths, "car") == 0.0

    def test_no_ground_truth_no_detections(self):
        assert average_precision({0: []}, {0: []}, "car") == 1.0

    def test_no_ground_truth_with_detections(self):
        dets = {0: [_det(0.0, 0.9)]}
        assert average_precision(dets, {0: []}, "car") == 0.0

    def test_false_positive_lowers_score(self):
        truths = {0: [_truth(0.0)]}
        perfect = {0: [_det(0.0, 0.9)]}
        with_fp = {0: [_det(0.0, 0.9), _det(500.0, 0.95)]}
        assert average_precision(with_fp, truths, "car") < average_precision(
            perfect, truths, "car"
        )

    def test_wrong_class_not_matched(self):
        truths = {0: [_truth(0.0, "bus")]}
        dets = {0: [_det(0.0, 0.9, "car")]}
        assert average_precision(dets, truths, "bus") == 0.0

    def test_iou_threshold_respected(self):
        truths = {0: [_truth(0.0)]}
        shifted = {0: [_det(6.0, 0.9)]}  # IoU ~ 0.25
        assert average_precision(shifted, truths, "car", iou_threshold=0.5) == 0.0
        assert average_precision(shifted, truths, "car", iou_threshold=0.2) == pytest.approx(1.0)

    def test_score_bounded(self):
        truths = {0: [_truth(0.0), _truth(30.0)], 1: [_truth(0.0)]}
        dets = {0: [_det(0.0, 0.7), _det(200.0, 0.9)], 1: [_det(1.0, 0.6)]}
        score = average_precision(dets, truths, "car")
        assert 0.0 <= score <= 1.0


class TestMeanAveragePrecision:
    def test_mean_over_classes(self):
        truths = {0: [_truth(0.0, "car"), _truth(100.0, "bus")]}
        dets = {0: [_det(0.0, 0.9, "car")]}  # bus missed entirely
        score = mean_average_precision(dets, truths, ["car", "bus"])
        assert score == pytest.approx(0.5)

    def test_empty_class_list_raises(self):
        with pytest.raises(ValueError):
            mean_average_precision({}, {}, [])

    def test_accurate_detector_beats_sloppy_one(self, tiny_video):
        from repro.detection.simulated import SimulatedDetector

        frames = list(range(0, tiny_video.num_frames, 11))
        truths = {f: tiny_video.objects_at(f) for f in frames}
        mask = SimulatedDetector.mask_rcnn(confidence_threshold=0.0)
        yolo = SimulatedDetector.yolov2(confidence_threshold=0.0)
        mask_dets = {f: mask.detect(tiny_video, f).detections for f in frames}
        yolo_dets = {f: yolo.detect(tiny_video, f).detections for f in frames}
        mask_map = mean_average_precision(mask_dets, truths, ["car", "bus"], 0.5)
        yolo_map = mean_average_precision(yolo_dets, truths, ["car", "bus"], 0.5)
        assert 0.0 < mask_map <= 1.0
        assert 0.0 < yolo_map <= 1.0
        # On a small sample the mAP gap can be within noise, so allow a small
        # tolerance, but the sloppier detector must miss more objects overall.
        assert mask_map >= yolo_map - 0.05
        total_truth = sum(len(v) for v in truths.values())
        mask_found = sum(len(v) for v in mask_dets.values())
        yolo_found = sum(len(v) for v in yolo_dets.values())
        assert total_truth > 0
        assert yolo_found <= mask_found
