"""End-to-end tests for the BlazeIt engine."""

import numpy as np
import pytest

from repro.core.config import BlazeItConfig
from repro.core.engine import BlazeIt
from repro.core.results import (
    AggregateResult,
    ExactResult,
    ScrubbingQueryResult,
    SelectionResult,
)
from repro.errors import (
    ConfigurationError,
    FrameQLAnalysisError,
    FrameQLSyntaxError,
    UnknownVideoError,
)


class TestRegistration:
    def test_videos_listed(self, tiny_engine):
        assert tiny_engine.videos() == ["tiny"]

    def test_labeled_set_built(self, tiny_engine):
        assert tiny_engine.labeled_set("tiny") is not None
        assert tiny_engine.labeled_set("other") is None

    def test_detector_for_default(self, tiny_engine, detector):
        assert tiny_engine.detector_for("tiny") is detector

    def test_register_without_labeled_set(self, tiny_video, detector, engine_config):
        engine = BlazeIt(detector=detector, config=engine_config)
        engine.register_video("bare", test_video=tiny_video)
        assert engine.labeled_set("bare") is None

    def test_register_scenario(self, detector, engine_config):
        engine = BlazeIt(detector=detector, config=engine_config)
        engine.register_scenario("night-street", num_frames=300)
        assert "night-street" in engine.videos()
        assert engine.labeled_set("night-street") is not None

    def test_query_unknown_video_raises(self, tiny_engine):
        with pytest.raises(UnknownVideoError):
            tiny_engine.query("SELECT FCOUNT(*) FROM nowhere WHERE class='car' ERROR WITHIN 0.1")


class TestQueryExecution:
    def test_aggregate_query(self, tiny_engine):
        result = tiny_engine.query(
            "SELECT FCOUNT(*) FROM tiny WHERE class = 'car' "
            "ERROR WITHIN 0.1 AT CONFIDENCE 95%"
        )
        assert isinstance(result, AggregateResult)
        truth = tiny_engine._recorded["tiny"].mean_count("car")
        assert abs(result.value - truth) <= 0.25
        assert result.runtime_seconds > 0

    def test_scrubbing_query(self, tiny_engine):
        result = tiny_engine.query(
            "SELECT timestamp FROM tiny GROUP BY timestamp "
            "HAVING SUM(class='car') >= 2 LIMIT 3 GAP 10"
        )
        assert isinstance(result, ScrubbingQueryResult)
        assert len(result.frames) <= 3
        counts = tiny_engine._recorded["tiny"].counts("car")
        assert all(counts[f] >= 2 for f in result.frames)

    def test_selection_query(self, tiny_engine):
        result = tiny_engine.query(
            "SELECT * FROM tiny WHERE class = 'bus' AND redness(content) >= 17.5"
        )
        assert isinstance(result, SelectionResult)
        assert all(r.object_class == "bus" for r in result.records)

    def test_exact_query(self, tiny_engine):
        result = tiny_engine.query("SELECT * FROM tiny")
        assert isinstance(result, ExactResult)
        assert result.detection_calls == tiny_engine.store.get("tiny").num_frames

    def test_syntax_error_propagates(self, tiny_engine):
        with pytest.raises(FrameQLSyntaxError):
            tiny_engine.query("SELECT FROM WHERE")

    def test_analysis_error_propagates(self, tiny_engine):
        with pytest.raises(FrameQLAnalysisError):
            tiny_engine.query("SELECT speed FROM tiny WHERE class='car'")

    def test_repeated_query_is_deterministic(self, tiny_engine):
        text = (
            "SELECT FCOUNT(*) FROM tiny WHERE class = 'car' "
            "ERROR WITHIN 0.1 AT CONFIDENCE 95%"
        )
        a = tiny_engine.query(text, rng=np.random.default_rng(5))
        b = tiny_engine.query(text, rng=np.random.default_rng(5))
        assert a.value == pytest.approx(b.value)
        assert a.detection_calls == b.detection_calls

    def test_selection_filter_class_override(self, tiny_engine):
        from repro.api import QueryHints

        text = "SELECT * FROM tiny WHERE class = 'bus' AND redness(content) >= 17.5"
        label_only = tiny_engine.query(
            text, hints=QueryHints(selection_filter_classes={"label"})
        )
        assert isinstance(label_only, SelectionResult)
        none = tiny_engine.query(
            text, hints=QueryHints(selection_filter_classes=frozenset())
        )
        assert none.method == "exhaustive"

    def test_scrubbing_indexed_flag(self, tiny_engine):
        from repro.api import QueryHints

        text = (
            "SELECT timestamp FROM tiny GROUP BY timestamp "
            "HAVING SUM(class='car') >= 2 LIMIT 3"
        )
        normal = tiny_engine.query(text)
        indexed = tiny_engine.query(text, hints=QueryHints(scrubbing_indexed=True))
        assert indexed.runtime_seconds <= normal.runtime_seconds


class TestPlanningHelpers:
    def test_explain(self, tiny_engine):
        text = "SELECT FCOUNT(*) FROM tiny WHERE class='car' ERROR WITHIN 0.1"
        explanation = tiny_engine.explain(text)
        assert "aggregate" in explanation
        assert "car" in explanation

    def test_plan_returns_spec_and_plan(self, tiny_engine):
        spec, plan = tiny_engine.plan(
            "SELECT timestamp FROM tiny GROUP BY timestamp "
            "HAVING SUM(class='car') >= 1 LIMIT 5"
        )
        assert spec.kind.value == "scrubbing"
        assert "Scrubbing" in plan.describe()

    def test_analyze_shortcut(self, tiny_engine):
        spec = tiny_engine.analyze("SELECT * FROM tiny WHERE class='car'")
        assert spec.video == "tiny"

    def test_execution_context_for_unknown_video(self, tiny_engine):
        with pytest.raises(UnknownVideoError):
            tiny_engine.execution_context("nope")


class TestConfig:
    def test_invalid_config_values(self):
        with pytest.raises(ConfigurationError):
            BlazeItConfig(default_error_tolerance=0.0)
        with pytest.raises(ConfigurationError):
            BlazeItConfig(default_confidence=1.5)
        with pytest.raises(ConfigurationError):
            BlazeItConfig(min_training_positives=-1)

    def test_defaults(self):
        config = BlazeItConfig()
        assert config.default_error_tolerance == pytest.approx(0.1)
        assert config.default_confidence == pytest.approx(0.95)
        assert config.include_training_time is True

    def test_no_train_config_excludes_training_cost(
        self, tiny_video, tiny_train_video, tiny_heldout_video, detector, fast_training_config
    ):
        """The Figure 4 "BlazeIt (no train)" variant charges no training time."""
        from repro.core.config import AggregateMethod

        results = {}
        for include in (True, False):
            engine = BlazeIt(
                detector=detector,
                config=BlazeItConfig(
                    training=fast_training_config,
                    min_training_positives=20,
                    include_training_time=include,
                    aggregate_method=AggregateMethod.CONTROL_VARIATES,
                    seed=11,
                ),
            )
            engine.register_video(
                "tiny",
                test_video=tiny_video,
                train_video=tiny_train_video,
                heldout_video=tiny_heldout_video,
            )
            results[include] = engine.query(
                "SELECT FCOUNT(*) FROM tiny WHERE class='car' ERROR WITHIN 0.1"
            )
        assert results[True].ledger.call_count("specialized_nn_train") > 0
        assert results[False].ledger.call_count("specialized_nn_train") == 0
        assert results[False].runtime_seconds < results[True].runtime_seconds
