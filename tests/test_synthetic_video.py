"""Tests for the synthetic video generator."""

import numpy as np
import pytest

from repro.video.synthetic import (
    FEATURE_DIM,
    SyntheticVideo,
    Track,
    VideoSpec,
)
from tests.conftest import make_video_spec


class TestTrack:
    def _track(self) -> Track:
        return Track(
            track_id=1,
            object_class="car",
            start_frame=10,
            end_frame=20,
            start_x=100.0,
            start_y=200.0,
            velocity_x=2.0,
            velocity_y=-1.0,
            width=40.0,
            height=30.0,
            color_name="red",
            color=(200.0, 40.0, 40.0),
        )

    def test_duration(self):
        assert self._track().duration == 10

    def test_box_at_start(self):
        box = self._track().box_at(10)
        assert box.center.x == pytest.approx(100.0)
        assert box.center.y == pytest.approx(200.0)

    def test_box_moves_with_velocity(self):
        box = self._track().box_at(15)
        assert box.center.x == pytest.approx(110.0)
        assert box.center.y == pytest.approx(195.0)

    def test_box_at_outside_range_raises(self):
        with pytest.raises(ValueError):
            self._track().box_at(25)
        with pytest.raises(ValueError):
            self._track().box_at(9)

    def test_visible_at(self):
        track = self._track()
        assert track.visible_at(10)
        assert track.visible_at(19)
        assert not track.visible_at(20)


class TestGeneration:
    def test_generation_is_deterministic(self):
        spec = make_video_spec(num_frames=200)
        a = SyntheticVideo.generate(spec)
        b = SyntheticVideo.generate(spec)
        assert len(a.tracks) == len(b.tracks)
        assert [t.start_frame for t in a.tracks] == [t.start_frame for t in b.tracks]

    def test_different_seeds_give_different_videos(self):
        a = SyntheticVideo.generate(make_video_spec(seed=1))
        b = SyntheticVideo.generate(make_video_spec(seed=2))
        assert [t.start_frame for t in a.tracks] != [t.start_frame for t in b.tracks]

    def test_tracks_within_frame_range(self, tiny_video):
        for track in tiny_video.tracks:
            assert 0 <= track.start_frame < track.end_frame <= tiny_video.num_frames

    def test_classes_match_spec(self, tiny_video):
        classes = {t.object_class for t in tiny_video.tracks}
        assert classes <= {"car", "bus"}

    def test_empty_class_video(self):
        spec = VideoSpec(
            name="empty",
            width=100,
            height=100,
            fps=30.0,
            num_frames=50,
            object_classes=(),
            seed=0,
        )
        video = SyntheticVideo.generate(spec)
        assert video.tracks == []
        assert video.objects_at(0) == []
        assert video.class_counts("car").sum() == 0


class TestFrameAccess:
    def test_objects_at_matches_class_counts(self, tiny_video):
        counts = tiny_video.class_counts("car")
        for frame_index in (0, 50, 123, tiny_video.num_frames - 1):
            objects = tiny_video.objects_at(frame_index)
            cars = sum(1 for o in objects if o.object_class == "car")
            assert cars == counts[frame_index]

    def test_get_frame_fields(self, tiny_video):
        frame = tiny_video.get_frame(10)
        assert frame.index == 10
        assert frame.timestamp == pytest.approx(10 / tiny_video.fps)
        assert frame.width == tiny_video.spec.width

    def test_get_frame_with_features(self, tiny_video):
        frame = tiny_video.get_frame(5, with_features=True)
        assert frame.features is not None
        assert frame.features.shape == (FEATURE_DIM,)

    def test_out_of_range_frame_raises(self, tiny_video):
        with pytest.raises(IndexError):
            tiny_video.get_frame(tiny_video.num_frames)
        with pytest.raises(IndexError):
            tiny_video.objects_at(-1)

    def test_timestamp_round_trip(self, tiny_video):
        assert tiny_video.frame_of_timestamp(tiny_video.timestamp_of(77)) == 77


class TestAggregateGroundTruth:
    def test_class_counts_shape(self, tiny_video):
        counts = tiny_video.class_counts("car")
        assert counts.shape == (tiny_video.num_frames,)
        assert counts.dtype == np.int64

    def test_occupancy_between_zero_and_one(self, tiny_video):
        assert 0.0 <= tiny_video.occupancy("car") <= 1.0

    def test_distinct_count_equals_track_count(self, tiny_video):
        expected = sum(1 for t in tiny_video.tracks if t.object_class == "bus")
        assert tiny_video.distinct_count("bus") == expected

    def test_max_count_is_max_of_counts(self, tiny_video):
        assert tiny_video.max_count("car") == int(tiny_video.class_counts("car").max())

    def test_mean_duration_positive_when_tracks_exist(self, tiny_video):
        if tiny_video.distinct_count("car") > 0:
            assert tiny_video.mean_duration_seconds("car") > 0.0

    def test_unknown_class_counts_are_zero(self, tiny_video):
        assert tiny_video.class_counts("zebra").sum() == 0
        assert tiny_video.occupancy("zebra") == 0.0


class TestFeatures:
    def test_feature_shape(self, tiny_video):
        features = tiny_video.frame_features([0, 1, 2])
        assert features.shape == (3, FEATURE_DIM)

    def test_features_deterministic(self, tiny_video):
        a = tiny_video.frame_features([10, 20])
        b = tiny_video.frame_features([10, 20])
        np.testing.assert_allclose(a, b)

    def test_features_differ_across_frames(self, tiny_video):
        # Pick an occupied frame and an empty one; they should differ.
        counts = tiny_video.class_counts("car") + tiny_video.class_counts("bus")
        occupied = int(np.argmax(counts))
        empty_candidates = np.nonzero(counts == 0)[0]
        if empty_candidates.size == 0:
            pytest.skip("no empty frames in the tiny video")
        empty = int(empty_candidates[0])
        features = tiny_video.frame_features([occupied, empty])
        assert not np.allclose(features[0], features[1])

    def test_occupancy_feature_correlates_with_counts(self, tiny_video):
        counts = (
            tiny_video.class_counts("car") + tiny_video.class_counts("bus")
        ).astype(float)
        features = tiny_video.frame_features(np.arange(tiny_video.num_frames))
        # The third-from-last feature is the global occupancy proxy.
        correlation = np.corrcoef(features[:, -3], counts)[0, 1]
        assert correlation > 0.5


class TestSlicing:
    def test_slice_length(self, tiny_video):
        part = tiny_video.slice(100, 200)
        assert part.num_frames == 100

    def test_slice_rebases_frames(self, tiny_video):
        part = tiny_video.slice(100, 200)
        for track in part.tracks:
            assert 0 <= track.start_frame < track.end_frame <= 100

    def test_slice_preserves_counts(self, tiny_video):
        part = tiny_video.slice(100, 200)
        full_counts = tiny_video.class_counts("car")[100:200]
        np.testing.assert_array_equal(part.class_counts("car"), full_counts)

    def test_invalid_slice_raises(self, tiny_video):
        with pytest.raises(ValueError):
            tiny_video.slice(200, 100)
        with pytest.raises(ValueError):
            tiny_video.slice(0, tiny_video.num_frames + 1)

    def test_slice_name(self, tiny_video):
        assert tiny_video.slice(0, 10, name="clip").spec.name == "clip"
