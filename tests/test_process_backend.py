"""Tests for the multiprocess shard executor and its shared-memory transport.

The contract is the same as the thread backend's: a process-backed parallel
execution must be bit-for-bit the sequential one — values, records, hit sets
and ledger accounting — because workers only *speculate* (detections are
recomputed from the exported context spec and published through shared
memory) while the driver alone charges the ledger on consumption.  On top of
the identity matrix, this file covers the export rules (recorded contexts
refuse to spawn and fall back to threads), shard-boundary semantics on the
process backend, worker crashes (SIGKILL mid-query must degrade to inline
computation, not hang or corrupt), and shared-memory segment hygiene.
"""

from __future__ import annotations

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.core.config import BlazeItConfig
from repro.core.engine import BlazeIt
from repro.core.context import ContextSpec
from repro.core.events import ShardProgress
from repro.detection.columnar import decode_from_bytes, encode_to_bytes
from repro.detection.simulated import SimulatedDetector
from repro.errors import ConfigurationError, SpawnExportError
from repro.parallel.shm import SLOT_NAME_PREFIX, SlotRing
from repro.specialization.trainer import TrainingConfig
from repro.video.synthetic import SyntheticVideo

from conftest import make_video_spec
from test_parallel import QUERIES, fingerprint

_SHM_DIR = "/dev/shm"


def leaked_segments() -> list[str]:
    """Shared-memory segments created by this process and never unlinked."""
    if not os.path.isdir(_SHM_DIR):  # non-Linux: rely on the attach errors
        return []
    marker = f"{SLOT_NAME_PREFIX}_{os.getpid()}_"
    return [name for name in os.listdir(_SHM_DIR) if name.startswith(marker)]


def run(engine, query, parallelism, seed=42, backend=None):
    with engine.session() as session:
        return session.prepare(query).execute(
            rng=np.random.default_rng(seed),
            parallelism=parallelism,
            backend=backend,
        )


@pytest.fixture(scope="module")
def spawn_engine(tiny_video, tiny_labeled_set, detector, engine_config):
    """The tiny engine *without* a test-day recording.

    Recordings are driver-only state (``spawn_spec`` refuses to export
    them), so the process-backend matrix needs an engine whose contexts
    rebuild from the video spec alone.
    """
    engine = BlazeIt(detector=detector, config=engine_config)
    engine.register_video("tiny", test_video=tiny_video)
    engine.attach_labeled_set("tiny", tiny_labeled_set)
    return engine


@pytest.fixture(scope="module")
def sequential_fingerprints(spawn_engine):
    """One sequential reference execution per query class, shared by the
    whole identity matrix (same fixed seed as the parallel runs)."""
    return {
        kind: fingerprint(run(spawn_engine, query, parallelism=1))
        for kind, query in QUERIES.items()
    }


class TestProcessBackendIdentity:
    """4 query classes x parallelism {1, 4} x {threads, processes}."""

    @pytest.mark.parametrize("kind", sorted(QUERIES))
    @pytest.mark.parametrize("parallelism", [1, 4])
    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_result_identity_matrix(
        self, spawn_engine, sequential_fingerprints, kind, parallelism, backend
    ):
        routed = run(
            spawn_engine, QUERIES[kind], parallelism=parallelism, backend=backend
        )
        assert fingerprint(routed) == sequential_fingerprints[kind]

    def test_process_streams_emit_shard_progress(self, spawn_engine):
        with spawn_engine.session() as session:
            events = list(
                session.stream(
                    QUERIES["exact"],
                    rng=np.random.default_rng(1),
                    parallelism=4,
                    backend="processes",
                )
            )
        assert [e for e in events if isinstance(e, ShardProgress)]
        assert leaked_segments() == []

    def test_invalid_backend_rejected(self, spawn_engine):
        with spawn_engine.session() as session:
            prepared = session.prepare(QUERIES["exact"])
            with pytest.raises(ConfigurationError):
                prepared.execute(parallelism=4, backend="fibers")


class TestShardBoundariesOnProcesses:
    def test_gap_enforced_across_shard_edges(self, spawn_engine):
        # 8 shards over 400 frames puts a boundary every 50 frames; a GAP of
        # 50 forces cross-shard conflicts to actually arise in the workers.
        query = (
            "SELECT timestamp FROM tiny GROUP BY timestamp "
            "HAVING COUNT(class = 'car') >= 1 LIMIT 6 GAP 50"
        )
        sequential = run(spawn_engine, query, parallelism=1)
        parallel = run(spawn_engine, query, parallelism=8, backend="processes")
        assert fingerprint(parallel) == fingerprint(sequential)
        frames = sorted(parallel.frames)
        assert all(b - a >= 50 for a, b in zip(frames, frames[1:], strict=False))

    def test_selection_windows_spanning_shards(self, spawn_engine):
        # 16 shards: boundaries every 25 frames, car tracks last ~40 — the
        # columnar transport must reassemble windows across shard edges.
        sequential = run(spawn_engine, QUERIES["selection"], parallelism=1)
        parallel = run(
            spawn_engine, QUERIES["selection"], parallelism=16, backend="processes"
        )
        assert fingerprint(parallel) == fingerprint(sequential)

    def test_single_frame_shards(self):
        spec = make_video_spec(name="micro", num_frames=12, seed=11, car_rate=0.2)
        engine = BlazeIt(
            config=BlazeItConfig(
                training=TrainingConfig(epochs=2, batch_size=8, min_examples=4),
                min_training_positives=1,
                seed=5,
            )
        )
        engine.register_video("micro", test_video=SyntheticVideo.generate(spec))
        query = "SELECT FCOUNT(*) FROM micro WHERE class = 'car'"
        sequential = run(engine, query, parallelism=1)
        parallel = run(engine, query, parallelism=12, backend="processes")
        assert fingerprint(parallel) == fingerprint(sequential)
        assert leaked_segments() == []


class TestSpawnExport:
    def test_recorded_context_refuses_export(self, tiny_engine):
        context = tiny_engine.execution_context("tiny")
        with pytest.raises(SpawnExportError):
            context.spawn_spec()

    def test_recorded_engine_falls_back_to_threads(self, tiny_engine):
        """`backend="processes"` on a recorded engine silently degrades to
        the thread backend — still sharded, still identical."""
        sequential = run(tiny_engine, QUERIES["exact"], parallelism=1)
        with tiny_engine.session() as session:
            stream = session.stream(
                QUERIES["exact"],
                rng=np.random.default_rng(42),
                parallelism=4,
                backend="processes",
            )
            events = list(stream)
            result = stream.result
        assert [e for e in events if isinstance(e, ShardProgress)]
        assert fingerprint(result) == fingerprint(sequential)
        assert leaked_segments() == []

    def test_spec_rebuilds_video_exactly(self, spawn_engine):
        context = spawn_engine.execution_context("tiny")
        spec = context.spawn_spec()
        assert isinstance(spec, ContextSpec)
        rebuilt = spec.build_video()
        original = context.video
        assert rebuilt.num_frames == original.num_frames
        assert len(rebuilt.tracks) == len(original.tracks)
        frame = original.num_frames // 2
        a = spec.detector.detect(original, frame)
        b = spec.detector.detect(rebuilt, frame)
        assert len(a.detections) == len(b.detections)
        for da, db in zip(a.detections, b.detections, strict=True):
            assert da.object_class == db.object_class and da.box == db.box


class PacedSpawnDetector(SimulatedDetector):
    """Simulated detector with real per-frame latency, picklable into
    spawn workers (module-level class, value-type state only)."""

    def __init__(self, seconds_per_frame: float = 0.002) -> None:
        base = SimulatedDetector.mask_rcnn()
        super().__init__(
            name=base.name,
            cost=base.cost,
            noise=base.noise,
            confidence_threshold=base.confidence_threshold,
            supported=base._supported,
            seed=base.seed,
        )
        self.seconds_per_frame = seconds_per_frame

    def _detect_batch(self, video, frame_indices, ledger=None):
        import time

        time.sleep(self.seconds_per_frame * len(frame_indices))
        return super()._detect_batch(video, frame_indices, ledger)


class TestWorkerCrash:
    def test_sigkill_mid_query_degrades_to_inline(self):
        """SIGKILL a live worker: the driver must detect the dead process,
        compute the orphaned frames inline with identical charging, and
        leave no shared-memory segments behind."""
        engine = BlazeIt(
            detector=PacedSpawnDetector(),
            config=BlazeItConfig(
                training=TrainingConfig(epochs=2, batch_size=32, min_examples=16),
                min_training_positives=20,
                seed=3,
            ),
        )
        engine.register_video(
            "crashy",
            test_video=SyntheticVideo.generate(make_video_spec(name="crashy")),
        )
        sequential = run(engine, "SELECT * FROM crashy", parallelism=1)
        with engine.session() as session:
            stream = session.stream(
                "SELECT * FROM crashy",
                rng=np.random.default_rng(42),
                parallelism=4,
                backend="processes",
            )
            iterator = iter(stream)
            for event in iterator:
                if isinstance(event, ShardProgress):
                    break  # workers are up and publishing
            victims = multiprocessing.active_children()
            assert victims, "process workers should be alive mid-query"
            os.kill(victims[0].pid, signal.SIGKILL)
            result = stream.drain()
        assert fingerprint(result) == fingerprint(sequential)
        assert leaked_segments() == []

    def test_refused_spawn_cleans_up_and_propagates(self, spawn_engine, monkeypatch):
        """When ``Process.start()`` itself raises (the classic missing
        ``if __name__ == "__main__"`` guard), the error must reach the
        caller — not an ``AssertionError`` from joining a never-started
        process — and every shm segment must be unlinked."""
        import multiprocessing.context as mp_context

        def refuse(self):
            raise RuntimeError("bootstrapping phase")

        monkeypatch.setattr(mp_context.SpawnProcess, "start", refuse)
        with spawn_engine.session() as session:
            prepared = session.prepare(QUERIES["exact"])
            with pytest.raises(RuntimeError, match="bootstrapping"):
                prepared.execute(
                    rng=np.random.default_rng(3), parallelism=4, backend="processes"
                )
        assert leaked_segments() == []
        assert multiprocessing.active_children() == []

    def test_shutdown_joins_all_workers(self, spawn_engine):
        """Closing a stream mid-scan must leave no live worker processes
        and no shared-memory segments."""
        with spawn_engine.session() as session:
            stream = session.stream(
                QUERIES["exact"],
                rng=np.random.default_rng(7),
                parallelism=4,
                backend="processes",
            )
            consumed = 0
            for _ in stream:
                consumed += 1
                if consumed >= 3:
                    break
            stream.close()
        assert leaked_segments() == []
        assert multiprocessing.active_children() == []


class TestShmTransport:
    def test_slot_ring_create_read_destroy(self):
        ring = SlotRing(shard_id=0, slot_count=2, slot_bytes=64)
        try:
            assert len(ring.names) == 2
            payload = b"columnar-bytes"
            ring.slots[0].buf[: len(payload)] = payload
            assert ring.read(0, len(payload)) == payload
        finally:
            ring.destroy()
        assert leaked_segments() == []
        ring.destroy()  # idempotent

    def test_columnar_codec_roundtrip_through_bytes(self, spawn_engine):
        video = spawn_engine.store.get("tiny")
        detector = spawn_engine.detector_for("tiny")
        results = [detector.detect(video, i) for i in range(24)]
        back = decode_from_bytes(encode_to_bytes(results))
        assert len(back) == len(results)
        for a, b in zip(results, back, strict=True):
            assert a.frame_index == b.frame_index
            assert a.timestamp == b.timestamp
            for da, db in zip(a.detections, b.detections, strict=True):
                assert da.object_class == db.object_class
                assert da.box == db.box
                assert da.confidence == db.confidence
                assert (da.features is None) == (db.features is None)
                if da.features is not None:
                    assert np.array_equal(da.features, db.features)
                assert da.color == db.color
                assert da.color_name == db.color_name
                assert da.track_id == db.track_id
