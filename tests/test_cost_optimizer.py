"""Tests for the cost-based optimizer: enumeration, cost model, snapshots,
the estimate-bounds-actuals invariant, and the chosen-vs-forced property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import QueryHints
from repro.core.config import AggregateMethod
from repro.optimizer.aggregates import AggregateQueryPlan, sampling_calls_estimate
from repro.optimizer.cost import CostBasedOptimizer
from repro.optimizer.rules import RuleBasedOptimizer
from repro.optimizer.scrubbing import ScrubbingQueryPlan
from repro.optimizer.selection import SelectionQueryPlan
from repro.udf.registry import default_udf_registry

AGG_QUERY = "SELECT FCOUNT(*) FROM tiny WHERE class='car' ERROR WITHIN 0.1"
SCRUB_QUERY = (
    "SELECT timestamp FROM tiny GROUP BY timestamp "
    "HAVING SUM(class='car') >= 2 LIMIT 3"
)
SELECT_QUERY = "SELECT * FROM tiny WHERE class='bus' AND redness(content) >= 17.5"
EXACT_QUERY = "SELECT * FROM tiny"

#: Forced alternatives per query class that honour the query's accuracy
#: contract.  ``specialized_rewrite`` is deliberately absent: forcing it
#: bypasses Algorithm 1's accuracy gate, so it may do fewer detector calls
#: than the chosen plan precisely when it would violate the error bound.
CONTRACT_ALTERNATIVES = {
    AGG_QUERY: ["exact", "naive_aqp", "control_variates"],
    SCRUB_QUERY: ["exhaustive"],
    SELECT_QUERY: ["exhaustive"],
    EXACT_QUERY: ["exhaustive"],
}


def _names(candidates):
    return [candidate.name for candidate in candidates]


class TestPlanEnumeration:
    def test_aggregate_candidates(self, tiny_engine):
        spec = tiny_engine.analyze(AGG_QUERY)
        candidates = tiny_engine.optimizer.candidates(spec)
        assert _names(candidates) == [
            "auto",
            "exact",
            "naive_aqp",
            "specialized_rewrite",
            "control_variates",
        ]
        by_name = {candidate.name: candidate for candidate in candidates}
        assert by_name["exact"].cost.detector_calls == 400
        assert by_name["specialized_rewrite"].cost.detector_calls == 0
        assert by_name["specialized_rewrite"].cost.training_seconds > 0
        # The adaptive default is priced at the best of its runtime branches,
        # so it can never lose the tie against the strategies it subsumes.
        assert by_name["auto"].cost.total_seconds <= min(
            by_name["specialized_rewrite"].cost.total_seconds,
            by_name["control_variates"].cost.total_seconds,
        )

    def test_aggregate_without_tolerance_only_exact(self, tiny_engine):
        spec = tiny_engine.analyze("SELECT FCOUNT(*) FROM tiny WHERE class='car'")
        assert _names(tiny_engine.optimizer.candidates(spec)) == ["exact"]

    def test_aggregate_unknown_class_not_specializable(self, tiny_engine):
        spec = tiny_engine.analyze(
            "SELECT FCOUNT(*) FROM tiny WHERE class='bear' ERROR WITHIN 0.1"
        )
        assert _names(tiny_engine.optimizer.candidates(spec)) == [
            "auto",
            "exact",
            "naive_aqp",
        ]

    def test_scrubbing_and_selection_candidates(self, tiny_engine):
        scrub = tiny_engine.analyze(SCRUB_QUERY)
        assert _names(tiny_engine.optimizer.candidates(scrub)) == [
            "importance",
            "exhaustive",
        ]
        select = tiny_engine.analyze(SELECT_QUERY)
        assert _names(tiny_engine.optimizer.candidates(select)) == [
            "filtered",
            "exhaustive",
        ]
        exact = tiny_engine.analyze(EXACT_QUERY)
        assert _names(tiny_engine.optimizer.candidates(exact)) == ["exhaustive"]

    def test_default_choice_matches_rule_based_mapping(self, tiny_engine):
        """The cost-chosen default is the same plan the rules produced."""
        for text, plan_type in [
            (AGG_QUERY, AggregateQueryPlan),
            (SCRUB_QUERY, ScrubbingQueryPlan),
            (SELECT_QUERY, SelectionQueryPlan),
        ]:
            spec = tiny_engine.analyze(text)
            plan = tiny_engine.optimizer.plan(spec)
            assert isinstance(plan, plan_type)
        agg = tiny_engine.optimizer.plan(tiny_engine.analyze(AGG_QUERY))
        assert agg.method is None  # adaptive, not a forced variant
        scrub = tiny_engine.optimizer.plan(tiny_engine.analyze(SCRUB_QUERY))
        assert scrub.strategy is None

    def test_rule_based_wrapper_is_cost_based_without_stats(self):
        optimizer = RuleBasedOptimizer(default_udf_registry())
        assert isinstance(optimizer, CostBasedOptimizer)
        spec_text = "SELECT FCOUNT(*) FROM nowhere WHERE class='car' ERROR WITHIN 0.1"
        from repro.frameql.analyzer import analyze
        from repro.frameql.parser import parse

        plan = optimizer.plan(analyze(parse(spec_text)))
        assert isinstance(plan, AggregateQueryPlan)
        assert plan.method is None

    def test_forced_aggregate_variants_execute(self, tiny_engine):
        session = tiny_engine.session()
        for name, method in [
            ("exact", "exact"),
            ("naive_aqp", "naive_aqp"),
            ("specialized_rewrite", "specialized_rewrite"),
            ("control_variates", "control_variates"),
        ]:
            result = session.execute(
                AGG_QUERY,
                hints=QueryHints(force_plan=name),
                rng=np.random.default_rng(4),
            )
            assert result.method == method

    def test_forced_method_overrides_config(self, tiny_engine):
        spec = tiny_engine.analyze(AGG_QUERY)
        plan = tiny_engine.optimizer.plan(
            spec, hints=QueryHints(force_plan="exact")
        )
        assert plan.method is AggregateMethod.EXACT

    def test_config_forced_method_baked_into_default_plan(
        self, tiny_video, tiny_train_video, tiny_heldout_video, detector,
        engine_config,
    ):
        """A config-forced method reaches the default plan, so its detector
        estimate bounds what execution will actually do."""
        import numpy as np

        from repro.core.config import BlazeItConfig
        from repro.core.engine import BlazeIt

        config = BlazeItConfig(
            training=engine_config.training,
            min_training_positives=engine_config.min_training_positives,
            aggregate_method=AggregateMethod.EXACT,
            seed=3,
        )
        engine = BlazeIt(detector=detector, config=config)
        engine.register_video(
            "tiny",
            test_video=tiny_video,
            train_video=tiny_train_video,
            heldout_video=tiny_heldout_video,
        )
        session = engine.session()
        prepared = session.prepare(AGG_QUERY)
        assert prepared.plan.method is AggregateMethod.EXACT
        stats = engine.catalog.get("tiny")
        estimate = prepared.plan.estimate_detector_calls(400, stats)
        result = prepared.execute(rng=np.random.default_rng(2))
        assert result.method == "exact"
        assert result.execution_ledger.detector_calls <= estimate

    def test_scrubbing_ranking_priced_cheaper_than_sequential(self, tiny_engine):
        """The importance candidate's verification reflects the ranking's
        concentration of positives; it never prices above the sequential scan."""
        spec = tiny_engine.analyze(SCRUB_QUERY)
        by_name = {
            candidate.name: candidate
            for candidate in tiny_engine.optimizer.candidates(spec)
        }
        assert (
            by_name["importance"].cost.detector_calls
            <= by_name["exhaustive"].cost.detector_calls
        )

    def test_candidates_without_statistics_use_store_frame_count(
        self, tiny_video, detector, engine_config
    ):
        """Statistics-less explains still show real scan magnitudes."""
        from repro.core.engine import BlazeIt

        engine = BlazeIt(detector=detector, config=engine_config)
        engine.register_video("bare", test_video=tiny_video)
        explanation = engine.session().explain("SELECT * FROM bare")
        (candidate,) = explanation.candidates
        assert candidate.detector_calls == tiny_video.num_frames
        assert candidate.total_seconds > 0


class TestSamplingEstimate:
    def test_zero_variance_converges_at_epsilon_net(self):
        assert sampling_calls_estimate(1000, 0.0, 0.1, 0.95, 2.0) == 20

    def test_never_exceeds_population(self):
        assert sampling_calls_estimate(400, 50.0, 0.01, 0.99, 10.0) == 400

    def test_grows_with_variance_and_confidence(self):
        low = sampling_calls_estimate(100_000, 0.5, 0.1, 0.95, 2.0)
        high_var = sampling_calls_estimate(100_000, 1.5, 0.1, 0.95, 2.0)
        high_conf = sampling_calls_estimate(100_000, 0.5, 0.1, 0.999, 2.0)
        assert low < high_var
        assert low < high_conf


class TestExplainSnapshots:
    """Exact renders of explain() with cost annotations, under fixed seeds.

    The tiny fixtures are fully seeded, so the statistics catalog — and with
    it every estimate in the render — is deterministic.
    """

    def test_scrubbing_render(self, tiny_engine):
        rendered = tiny_engine.session().explain(SCRUB_QUERY).render()
        assert rendered == (
            "scrubbing: ScrubbingQueryPlan(car>=2, limit=3)\n"
            "  ScrubbingQueryPlan(car>=2, limit=3, gap=0)\n"
            "    ImportanceOrderedScan(trained per query)"
            " [~0 detector calls, ~0.52s]\n"
            "    DetectorVerifier(down the ranking)"
            " [~26 detector calls, ~8.67s]\n"
            "  estimated detector calls: 26\n"
            "  hints: none\n"
            "  parallelism: sequential [cost_model] — parallelism not requested\n"
            "  candidates:\n"
            "    importance: ~6 detector calls, ~2.52s <- chosen\n"
            "    exhaustive: ~9 detector calls, ~3.00s"
        )

    def test_exact_render(self, tiny_engine):
        rendered = tiny_engine.session().explain(EXACT_QUERY).render()
        assert rendered == (
            "exact: ExactQueryPlan(reason='query shape not recognised by the "
            "rule-based optimizer')\n"
            "  ExactQueryPlan(query shape not recognised by the rule-based "
            "optimizer)\n"
            "    FullScan(detection on every frame)"
            " [~400 detector calls, ~133.33s]\n"
            "    TrackAggregator(IoU tracker, all records materialised)\n"
            "  estimated detector calls: 400\n"
            "  hints: none\n"
            "  parallelism: sequential [cost_model] — parallelism not requested\n"
            "  candidates:\n"
            "    exhaustive: ~400 detector calls, ~133.33s <- chosen"
        )

    def test_aggregate_render_shows_all_candidates(self, tiny_engine):
        rendered = tiny_engine.session().explain(AGG_QUERY).render()
        assert rendered == (
            "aggregate: AggregateQueryPlan(aggregate=fcount, class=car, "
            "error=0.1)\n"
            "  AggregateQueryPlan(aggregate=fcount, class=car, "
            "error=0.1 @ 0.95)\n"
            "    SpecializedInference(train class=car)"
            " [~0 detector calls, ~0.48s]\n"
            "    BootstrapAccuracyGate(Algorithm 1)\n"
            "    QueryRewrite(specialized NN on every unseen frame)"
            " [~0 detector calls, ~0.04s]\n"
            "    ControlVariateSampler(adaptive CLT-bounded sampling, "
            "NN auxiliary) [~348 detector calls, ~116.00s]\n"
            "    RandomSampler(fallback: too little training data)"
            " [~400 detector calls, ~133.33s]\n"
            "  estimated detector calls: 400\n"
            "  hints: none\n"
            "  parallelism: sequential [cost_model] — parallelism not requested\n"
            "  candidates:\n"
            "    auto: ~0 detector calls, ~0.52s <- chosen\n"
            "    exact: ~400 detector calls, ~133.33s\n"
            "    naive_aqp: ~400 detector calls, ~133.33s\n"
            "    specialized_rewrite: ~0 detector calls, ~0.52s\n"
            "    control_variates: ~348 detector calls, ~116.52s"
        )

    def test_forced_render_marks_forced_candidate(self, tiny_engine):
        rendered = tiny_engine.session().explain(
            AGG_QUERY, hints=QueryHints(force_plan="naive_aqp")
        ).render()
        assert "method=naive_aqp" in rendered
        assert "RandomSampler(adaptive CLT-bounded sampling)" in rendered
        assert "hints: force_plan=naive_aqp" in rendered
        assert "naive_aqp: ~400 detector calls, ~133.33s <- chosen" in rendered
        assert "auto: ~0 detector calls, ~0.52s\n" in rendered  # not chosen

    def test_unannotated_tree_without_statistics(self):
        """Trees built without num_frames/stats carry no cost annotations."""
        from repro.frameql.analyzer import analyze
        from repro.frameql.parser import parse

        optimizer = RuleBasedOptimizer(default_udf_registry())
        plan = optimizer.plan(analyze(parse(EXACT_QUERY)))
        assert "detector calls" not in plan.operator_tree().render()


class TestEstimateBoundsActuals:
    """`estimate_detector_calls` must bound the executed ledger counts.

    One invariant check per query class, for the default plan and for every
    contract-honouring forced alternative, under fixed seeds.
    """

    @pytest.mark.parametrize(
        "text", [AGG_QUERY, SCRUB_QUERY, SELECT_QUERY, EXACT_QUERY]
    )
    def test_estimate_bounds_actual(self, tiny_engine, text):
        stats = tiny_engine.catalog.get("tiny")
        num_frames = tiny_engine.store.get("tiny").num_frames
        session = tiny_engine.session()
        spec = tiny_engine.analyze(text)
        for forced in [None, *CONTRACT_ALTERNATIVES[text]]:
            hints = QueryHints(force_plan=forced) if forced else None
            plan = tiny_engine.optimizer.plan(spec, hints=hints)
            estimate = plan.estimate_detector_calls(num_frames, stats)
            result = session.execute(
                text, hints=hints, rng=np.random.default_rng(11)
            )
            actual = result.execution_ledger.detector_calls
            assert actual <= estimate, (
                f"{text!r} force_plan={forced}: actual {actual} exceeds "
                f"estimate {estimate}"
            )

    def test_estimates_without_statistics_fall_back_to_population(self, tiny_engine):
        """Without a catalog the only safe bound is the whole video."""
        for text in (AGG_QUERY, SCRUB_QUERY, SELECT_QUERY, EXACT_QUERY):
            plan = tiny_engine.optimizer.plan(tiny_engine.analyze(text))
            assert plan.estimate_detector_calls(400, None) == 400

    def test_gap_scrubbing_estimate_bounds_actual(self, tiny_engine):
        """GAP forces hits into different bursts; the bound must budget the
        empty stretches a sequential scan pays crossing between them."""
        text = (
            "SELECT timestamp FROM tiny GROUP BY timestamp "
            "HAVING SUM(class='car') >= 1 LIMIT 4 GAP 90"
        )
        stats = tiny_engine.catalog.get("tiny")
        for forced in (None, "exhaustive", "importance"):
            hints = QueryHints(force_plan=forced) if forced else None
            plan = tiny_engine.optimizer.plan(tiny_engine.analyze(text), hints=hints)
            estimate = plan.estimate_detector_calls(400, stats)
            result = tiny_engine.session().execute(
                text, hints=hints, rng=np.random.default_rng(0)
            )
            assert result.execution_ledger.detector_calls <= estimate, forced

    def test_selection_estimate_is_population_bound(self, tiny_engine):
        """Filter pass rates are calibrated at execution time, so the only
        bound that always holds is the population; the survival reduction
        lives in the candidate pricing only."""
        stats = tiny_engine.catalog.get("tiny")
        plan = tiny_engine.optimizer.plan(tiny_engine.analyze(SELECT_QUERY))
        assert plan.estimate_detector_calls(400, stats) == 400
        # A filter-class subset with no pruning filter prices a full scan.
        hints = QueryHints(selection_filter_classes={"spatial"})
        spatial_only = tiny_engine.optimizer.plan(
            tiny_engine.analyze(SELECT_QUERY), hints=hints
        )
        cost = spatial_only.estimate_cost(400, stats)
        assert cost.detector_calls == 400
        assert cost.training_seconds == 0.0

    def test_forced_rewrite_estimate_is_zero(self, tiny_engine):
        plan = tiny_engine.optimizer.plan(
            tiny_engine.analyze(AGG_QUERY),
            hints=QueryHints(force_plan="specialized_rewrite"),
        )
        stats = tiny_engine.catalog.get("tiny")
        assert plan.estimate_detector_calls(400, stats) == 0


class TestCostChosenProperty:
    """The cost-chosen plan never does more detector calls than any forced,
    contract-honouring alternative executed under the same RNG stream."""

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @pytest.mark.parametrize(
        "text", [AGG_QUERY, SCRUB_QUERY, SELECT_QUERY, EXACT_QUERY]
    )
    def test_chosen_no_worse_than_forced(self, tiny_engine, text, seed):
        session = tiny_engine.session()
        chosen = session.execute(text, rng=np.random.default_rng(seed))
        chosen_calls = chosen.execution_ledger.detector_calls
        for forced in CONTRACT_ALTERNATIVES[text]:
            alternative = session.execute(
                text,
                hints=QueryHints(force_plan=forced),
                rng=np.random.default_rng(seed),
            )
            assert (
                chosen_calls <= alternative.execution_ledger.detector_calls
            ), (
                f"{text!r}: chosen plan used {chosen_calls} detector calls, "
                f"forced {forced!r} used "
                f"{alternative.execution_ledger.detector_calls}"
            )
