"""Tests for the baseline strategies used in the evaluation comparisons."""

import pytest

from repro.baselines.aggregates import (
    naive_aggregate,
    naive_aqp_aggregate,
    noscope_oracle_aggregate,
)
from repro.baselines.scrubbing import (
    naive_scrub,
    noscope_oracle_scrub_baseline,
    random_scrub_baseline,
)
from repro.baselines.selection import naive_selection, noscope_oracle_selection
from repro.frameql.analyzer import analyze
from repro.frameql.parser import parse
from repro.udf.registry import default_udf_registry


class TestAggregateBaselines:
    def test_naive_is_exact_and_expensive(self, tiny_recorded):
        result = naive_aggregate(tiny_recorded, "car")
        assert result.value == pytest.approx(tiny_recorded.mean_count("car"))
        assert result.detection_calls == tiny_recorded.num_frames

    def test_noscope_oracle_cheaper_and_exact(self, tiny_recorded):
        naive = naive_aggregate(tiny_recorded, "car")
        oracle = noscope_oracle_aggregate(tiny_recorded, "car")
        assert oracle.value == pytest.approx(naive.value)
        assert oracle.detection_calls <= naive.detection_calls
        assert oracle.runtime_seconds <= naive.runtime_seconds

    def test_noscope_oracle_cost_tracks_occupancy(self, tiny_recorded):
        oracle = noscope_oracle_aggregate(tiny_recorded, "car")
        occupied = int((tiny_recorded.counts("car") > 0).sum())
        assert oracle.detection_calls == occupied

    def test_naive_aqp_accurate_and_cheaper(self, tiny_recorded, rng):
        naive = naive_aggregate(tiny_recorded, "car")
        aqp = naive_aqp_aggregate(
            tiny_recorded, "car", error_tolerance=0.2, rng=rng
        )
        assert abs(aqp.value - naive.value) < 0.4
        assert aqp.detection_calls < naive.detection_calls

    def test_unknown_class_counts_zero(self, tiny_recorded):
        assert naive_aggregate(tiny_recorded, "zebra").value == 0.0


class TestScrubbingBaselines:
    def test_naive_finds_only_true_positives(self, tiny_recorded):
        result = naive_scrub(tiny_recorded, {"car": 1}, limit=3)
        counts = tiny_recorded.counts("car")
        assert all(counts[f] >= 1 for f in result.frames)

    def test_noscope_oracle_never_slower_than_naive(self, tiny_recorded):
        min_counts = {"car": 2}
        naive = naive_scrub(tiny_recorded, min_counts, limit=3)
        oracle = noscope_oracle_scrub_baseline(tiny_recorded, min_counts, limit=3)
        assert set(oracle.frames) <= set(tiny_recorded.frames_satisfying(min_counts).tolist())
        assert oracle.detection_calls <= naive.detection_calls

    def test_random_order_finds_events(self, tiny_recorded, rng):
        result = random_scrub_baseline(tiny_recorded, {"car": 1}, limit=2, rng=rng)
        assert len(result.frames) == 2

    def test_impossible_event_scans_everything(self, tiny_recorded):
        result = naive_scrub(tiny_recorded, {"car": 99}, limit=1)
        assert result.frames == []
        assert result.detection_calls == tiny_recorded.num_frames

    def test_runtime_proportional_to_detection_calls(self, tiny_recorded, detector):
        result = naive_scrub(tiny_recorded, {"car": 2}, limit=2)
        assert result.runtime_seconds == pytest.approx(
            result.detection_calls * detector.cost.seconds_per_call
        )


class TestSelectionBaselines:
    def _spec(self):
        return analyze(
            parse("SELECT * FROM tiny WHERE class = 'bus' AND redness(content) >= 17.5")
        )

    def test_naive_scans_every_frame(self, tiny_recorded):
        result = naive_selection(tiny_recorded, self._spec(), default_udf_registry())
        assert result.detection_calls == tiny_recorded.num_frames

    def test_oracle_restricts_to_class_frames(self, tiny_recorded):
        naive = naive_selection(tiny_recorded, self._spec(), default_udf_registry())
        oracle = noscope_oracle_selection(
            tiny_recorded, self._spec(), default_udf_registry()
        )
        assert oracle.detection_calls <= naive.detection_calls
        assert set(oracle.matched_frames) == set(naive.matched_frames)

    def test_matched_frames_contain_red_buses(self, tiny_recorded):
        result = naive_selection(tiny_recorded, self._spec(), default_udf_registry())
        for frame in result.matched_frames:
            detections = tiny_recorded.result(frame).detections
            assert any(
                d.object_class == "bus" and d.color_name == "red" for d in detections
            )
