"""Tests for the scrubbing substrate (importance ranking and baselines)."""

import numpy as np
import pytest

from repro.scrubbing.baselines import (
    noscope_oracle_scrub,
    random_scrub,
    sequential_scrub,
)
from repro.scrubbing.importance import importance_scrub, scrub_ordered


class TestScrubOrdered:
    def test_returns_first_matching_frames(self):
        matches = {3, 7, 9}
        result = scrub_ordered(
            range(20), verify_fn=lambda f: f in matches, limit=2
        )
        assert result.frames == [3, 7]
        assert result.satisfied
        assert result.detection_calls == 8  # frames 0..7

    def test_limit_larger_than_matches(self):
        matches = {5}
        result = scrub_ordered(range(10), lambda f: f in matches, limit=3)
        assert result.frames == [5]
        assert not result.satisfied
        assert result.detection_calls == 10

    def test_gap_enforced(self):
        matches = set(range(100))
        result = scrub_ordered(range(100), lambda f: f in matches, limit=3, gap=10)
        assert result.frames == [0, 10, 20]

    def test_gap_skips_candidates_without_detection(self):
        matches = set(range(100))
        result = scrub_ordered(range(100), lambda f: f in matches, limit=2, gap=50)
        # Frames 1..49 are skipped by the gap check before any detector call.
        assert result.detection_calls == 2

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            scrub_ordered(range(5), lambda f: True, limit=0)


class TestImportanceScrub:
    def test_perfect_scores_need_minimal_detections(self):
        matches = {42, 77, 93}
        scores = np.zeros(100)
        for frame in matches:
            scores[frame] = 1.0
        result = importance_scrub(scores, lambda f: f in matches, limit=3)
        assert set(result.frames) == matches
        assert result.detection_calls == 3

    def test_imperfect_scores_still_find_events(self):
        rng = np.random.default_rng(0)
        matches = set(rng.choice(1000, size=5, replace=False).tolist())
        scores = rng.uniform(0.0, 0.4, size=1000)
        for frame in matches:
            scores[frame] = rng.uniform(0.5, 1.0)
        result = importance_scrub(scores, lambda f: f in matches, limit=5)
        assert set(result.frames) == matches
        assert result.detection_calls < 1000

    def test_useless_scores_degrade_to_full_scan(self):
        scores = np.zeros(50)
        matches = {49}
        result = importance_scrub(scores, lambda f: f in matches, limit=1)
        assert result.frames == [49]
        assert result.detection_calls == 50

    def test_returns_only_true_positives(self):
        rng = np.random.default_rng(1)
        scores = rng.uniform(size=200)
        matches = {10, 20}
        result = importance_scrub(scores, lambda f: f in matches, limit=2)
        assert set(result.frames) <= matches


class TestBaselines:
    def test_sequential_scans_in_order(self):
        matches = {100, 150}
        result = sequential_scrub(200, lambda f: f in matches, limit=1)
        assert result.frames == [100]
        assert result.detection_calls == 101

    def test_random_scrub_finds_events(self, rng):
        matches = {10, 20, 30}
        result = random_scrub(100, lambda f: f in matches, limit=3, rng=rng)
        assert set(result.frames) == matches

    def test_noscope_oracle_restricts_candidates(self):
        presence = np.zeros(100, dtype=bool)
        presence[40:60] = True
        matches = {45, 55}
        result = noscope_oracle_scrub(presence, lambda f: f in matches, limit=2)
        assert set(result.frames) == matches
        assert result.detection_calls <= 20

    def test_noscope_oracle_with_empty_presence(self):
        presence = np.zeros(50, dtype=bool)
        result = noscope_oracle_scrub(presence, lambda f: True, limit=1)
        assert result.frames == []
        assert not result.satisfied

    def test_importance_beats_sequential_on_rare_tail_events(self):
        """The core Figure 6 phenomenon: biased search finds rare events faster."""
        num_frames = 5000
        rng = np.random.default_rng(2)
        matches = set(range(num_frames - 20, num_frames))  # rare and late
        scores = rng.uniform(0.0, 0.5, size=num_frames)
        for frame in matches:
            scores[frame] = rng.uniform(0.8, 1.0)
        sequential = sequential_scrub(num_frames, lambda f: f in matches, limit=10)
        importance = importance_scrub(scores, lambda f: f in matches, limit=10)
        assert importance.detection_calls < sequential.detection_calls / 50
