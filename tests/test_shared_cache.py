"""Tests for the process-wide shared cross-query detection cache."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.config import BlazeItConfig
from repro.core.engine import BlazeIt
from repro.detection.base import Detection, DetectionResult
from repro.errors import ConfigurationError
from repro.parallel.cache import (
    SharedDetectionCache,
    estimate_result_bytes,
    get_process_cache,
    reset_process_cache,
    result_from_json,
    result_to_json,
)
from repro.specialization.trainer import TrainingConfig
from repro.video.geometry import BoundingBox
from repro.video.synthetic import SyntheticVideo

from conftest import make_video_spec


def make_result(frame_index: int, detections: int = 2) -> DetectionResult:
    return DetectionResult(
        frame_index=frame_index,
        timestamp=frame_index / 30.0,
        detections=[
            Detection(
                frame_index=frame_index,
                timestamp=frame_index / 30.0,
                object_class="car",
                box=BoundingBox(10.0 * k, 5.0, 10.0 * k + 40.0, 60.0),
                confidence=0.9,
                features=np.arange(5, dtype=np.float64) + k,
                color=(200.0, 10.0, 10.0),
                color_name="red",
            )
            for k in range(detections)
        ],
    )


class TestSharedDetectionCache:
    def test_get_put_roundtrip_and_namespacing(self):
        cache = SharedDetectionCache(capacity_bytes=1 << 20)
        cache.put("video-a", 3, make_result(3))
        assert cache.get("video-a", 3) is not None
        assert cache.get("video-b", 3) is None
        assert cache.get("video-a", 4) is None
        assert cache.stats.hits == 1 and cache.stats.misses == 2

    def test_get_many_put_many(self):
        cache = SharedDetectionCache(capacity_bytes=1 << 20)
        cache.put_many("v", {i: make_result(i) for i in range(5)})
        hits = cache.get_many("v", [0, 2, 4, 9])
        assert sorted(hits) == [0, 2, 4]
        assert hits[2].frame_index == 2

    def test_lru_eviction_respects_byte_budget(self):
        one = estimate_result_bytes(make_result(0))
        cache = SharedDetectionCache(capacity_bytes=3 * one)
        for frame in range(5):
            cache.put("v", frame, make_result(frame))
        assert len(cache) == 3
        assert cache.stats.evictions == 2
        assert cache.stats.current_bytes <= cache.capacity_bytes
        # Oldest entries went first.
        assert cache.get("v", 0) is None and cache.get("v", 1) is None
        assert cache.get("v", 4) is not None

    def test_get_refreshes_recency(self):
        one = estimate_result_bytes(make_result(0))
        cache = SharedDetectionCache(capacity_bytes=2 * one)
        cache.put("v", 0, make_result(0))
        cache.put("v", 1, make_result(1))
        cache.get("v", 0)  # 0 becomes most recent
        cache.put("v", 2, make_result(2))  # evicts 1, not 0
        assert cache.get("v", 0) is not None
        assert cache.get("v", 1) is None

    def test_resize_shrinks_immediately(self):
        one = estimate_result_bytes(make_result(0))
        cache = SharedDetectionCache(capacity_bytes=4 * one)
        for frame in range(4):
            cache.put("v", frame, make_result(frame))
        cache.resize(2 * one)
        assert len(cache) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SharedDetectionCache(capacity_bytes=0)

    def test_json_roundtrip_preserves_detections(self):
        original = make_result(7)
        restored = result_from_json(result_to_json(original))
        assert restored.frame_index == original.frame_index
        assert restored.timestamp == original.timestamp
        assert len(restored.detections) == len(original.detections)
        for a, b in zip(original.detections, restored.detections, strict=True):
            assert a.object_class == b.object_class
            assert a.box == b.box
            assert a.confidence == b.confidence
            assert np.array_equal(a.features, b.features)
            assert a.color == b.color and a.color_name == b.color_name

    def test_save_load_roundtrip(self, tmp_path):
        cache = SharedDetectionCache(capacity_bytes=1 << 20)
        cache.put_many("v", {i: make_result(i) for i in range(4)})
        path = tmp_path / "cache.json"
        cache.save(path)
        loaded = SharedDetectionCache.load(path)
        assert len(loaded) == 4
        assert loaded.capacity_bytes == cache.capacity_bytes
        assert loaded.get("v", 2).count("car") == 2

    def test_npz_roundtrip_is_exact_and_sniffed(self, tmp_path):
        """The binary snapshot restores every field (track_id included) and
        ``load`` recognises the format from the file alone."""
        cache = SharedDetectionCache(capacity_bytes=1 << 20)
        cache.put_many("v|a", {i: make_result(i) for i in range(4)})
        cache.put_many("w|b", {i: make_result(i, detections=1) for i in range(2)})
        cache.get("v|a", 1)  # perturb LRU order; snapshots must preserve it
        path = tmp_path / "cache.npz"
        cache.save(path, format="npz")
        loaded = SharedDetectionCache.load(path)
        assert len(loaded) == len(cache)
        assert loaded.capacity_bytes == cache.capacity_bytes
        assert list(loaded._entries.keys()) == list(cache._entries.keys())
        for key, entry in cache._entries.items():
            restored = loaded._entries[key].result
            for a, b in zip(
                entry.result.detections, restored.detections, strict=True
            ):
                assert a.object_class == b.object_class and a.box == b.box
                assert a.confidence == b.confidence
                assert np.array_equal(a.features, b.features)
                assert a.color == b.color and a.color_name == b.color_name
                assert a.track_id == b.track_id

    def test_npz_snapshot_is_smaller_on_feature_heavy_caches(self, tmp_path):
        cache = SharedDetectionCache(capacity_bytes=64 << 20)
        cache.put_many("v", {i: make_result(i, detections=6) for i in range(64)})
        json_path, npz_path = tmp_path / "c.json", tmp_path / "c.npz"
        cache.save(json_path)
        cache.save(npz_path, format="npz")
        assert npz_path.stat().st_size < json_path.stat().st_size

    def test_json_snapshot_preserves_track_id(self, tmp_path):
        cache = SharedDetectionCache(capacity_bytes=1 << 20)
        result = make_result(0)
        result.detections[0].track_id = 17
        cache.put("v", 0, result)
        path = tmp_path / "cache.json"
        cache.save(path)
        loaded = SharedDetectionCache.load(path)
        assert loaded.get("v", 0).detections[0].track_id == 17

    def test_save_rejects_unknown_format(self, tmp_path):
        cache = SharedDetectionCache(capacity_bytes=1 << 20)
        with pytest.raises(ConfigurationError):
            cache.save(tmp_path / "cache.bin", format="pickle")

    def test_load_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text("{}")
        with pytest.raises(ConfigurationError):
            SharedDetectionCache.load(path)
        zippy = tmp_path / "other.npz"
        zippy.write_bytes(b"PK\x03\x04 not an archive")
        with pytest.raises(ConfigurationError):
            SharedDetectionCache.load(zippy)

    def test_concurrent_access_is_safe_and_loses_nothing(self):
        cache = SharedDetectionCache(capacity_bytes=64 << 20)
        errors: list[Exception] = []

        def worker(worker_id: int) -> None:
            try:
                for frame in range(200):
                    cache.put(f"v{worker_id}", frame, make_result(frame, detections=1))
                    assert cache.get(f"v{worker_id}", frame) is not None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) == 8 * 200

    def test_process_cache_singleton(self):
        reset_process_cache()
        try:
            first = get_process_cache(1 << 20)
            again = get_process_cache()
            assert again is first
            grown = get_process_cache(4 << 20)
            assert grown is first and first.capacity_bytes == 4 << 20
            # Smaller requests never shrink a live serving cache.
            assert get_process_cache(1 << 10).capacity_bytes == 4 << 20
        finally:
            reset_process_cache()


@pytest.fixture()
def cached_engine():
    cache = SharedDetectionCache(capacity_bytes=64 << 20)
    engine = BlazeIt(
        config=BlazeItConfig(
            training=TrainingConfig(epochs=2, batch_size=32, min_examples=16),
            min_training_positives=20,
            seed=3,
        ),
        shared_cache=cache,
    )
    engine.register_video(
        "hot", test_video=SyntheticVideo.generate(make_video_spec(name="hot"))
    )
    return engine, cache


class TestEngineIntegration:
    QUERY = "SELECT FCOUNT(*) FROM hot WHERE class = 'car'"

    def test_warm_cache_skips_detector_calls_entirely(self, cached_engine):
        engine, cache = cached_engine
        cold = engine.session().prepare(self.QUERY).execute(
            rng=np.random.default_rng(1)
        )
        warm = engine.session().prepare(self.QUERY).execute(
            rng=np.random.default_rng(2)
        )
        assert cold.execution_ledger.detector_calls == 400
        assert warm.execution_ledger.detector_calls == 0
        assert warm.execution_ledger.shared_cache_hits == 400
        assert warm.value == cold.value
        assert warm.runtime_seconds < cold.runtime_seconds

    def test_warm_cache_serves_parallel_executions(self, cached_engine):
        engine, cache = cached_engine
        cold = engine.session().prepare(self.QUERY).execute(
            rng=np.random.default_rng(1), parallelism=4
        )
        warm = engine.session().prepare(self.QUERY).execute(
            rng=np.random.default_rng(2), parallelism=4
        )
        assert cold.execution_ledger.detector_calls == 400
        assert warm.execution_ledger.detector_calls == 0
        assert warm.value == cold.value

    def test_scalar_and_batched_accounting_agree_on_shared_hits(self, cached_engine):
        engine, cache = cached_engine
        engine.session().prepare(self.QUERY).execute(rng=np.random.default_rng(1))
        batched = engine.session().prepare(self.QUERY).execute(
            rng=np.random.default_rng(2)
        )
        engine.config.batched_execution = False
        scalar = engine.session().prepare(self.QUERY).execute(
            rng=np.random.default_rng(3)
        )
        engine.config.batched_execution = True
        assert (
            scalar.execution_ledger.shared_cache_hits
            == batched.execution_ledger.shared_cache_hits
        )
        assert (
            scalar.execution_ledger.detection_cache_hits
            == batched.execution_ledger.detection_cache_hits
        )
        assert scalar.value == batched.value

    def test_cache_disabled_by_default(self):
        engine = BlazeIt(
            config=BlazeItConfig(
                training=TrainingConfig(epochs=2, batch_size=32, min_examples=16),
                seed=3,
            )
        )
        assert engine.shared_cache() is None

    def test_config_budget_selects_process_cache(self):
        reset_process_cache()
        try:
            engine = BlazeIt(
                config=BlazeItConfig(
                    training=TrainingConfig(epochs=2, batch_size=32, min_examples=16),
                    shared_cache_bytes=1 << 20,
                    seed=3,
                )
            )
            assert engine.shared_cache() is get_process_cache()
        finally:
            reset_process_cache()
