"""Tests for the parallel sharded execution engine.

The load-bearing property is *determinism*: a parallel execution must be
bit-for-bit the sequential one — values, records, hit sets and ledger
accounting — under the same RNG stream, at every parallelism.  The rest of
the suite covers shard semantics at the boundaries (gap constraints across
shard edges, selection windows spanning shards, single-frame shards),
statistics-driven pruning, and prompt cancellation of in-flight workers.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.api.hints import QueryHints
from repro.core.config import BlazeItConfig
from repro.core.engine import BlazeIt
from repro.core.events import Completed, ScrubbingHit, ShardProgress
from repro.catalog.statistics import VideoStatistics
from repro.detection.simulated import SimulatedDetector
from repro.errors import ConfigurationError
from repro.parallel.shards import MAX_SHARDS, VideoSharder
from repro.specialization.trainer import TrainingConfig
from repro.video.synthetic import SyntheticVideo

from conftest import make_video_spec

QUERIES = {
    "aggregate_aqp": (
        "SELECT FCOUNT(*) FROM tiny WHERE class = 'car' "
        "ERROR WITHIN 0.1 AT CONFIDENCE 95%"
    ),
    "aggregate_exact": "SELECT FCOUNT(*) FROM tiny WHERE class = 'car'",
    "scrubbing": (
        "SELECT timestamp FROM tiny GROUP BY timestamp "
        "HAVING COUNT(class = 'car') >= 1 LIMIT 5 GAP 30"
    ),
    "selection": "SELECT * FROM tiny WHERE class = 'car'",
    "exact": "SELECT * FROM tiny",
}


def fingerprint(result):
    """Everything observable about a result, with numpy fields made hashable."""
    base = (
        result.kind,
        result.method,
        result.stop_reason,
        result.detection_calls,
        result.ledger.charges,
        result.ledger.calls,
        result.execution_ledger.detector_calls,
        result.execution_ledger.frames_decoded,
        result.execution_ledger.detection_cache_hits,
        result.execution_ledger.shared_cache_hits,
        result.execution_ledger.events_emitted,
    )
    if hasattr(result, "value"):
        base += (result.value, getattr(result, "samples_used", None))
    if hasattr(result, "frames"):
        base += (tuple(result.frames), result.satisfied)
    if hasattr(result, "matched_frames"):
        base += (tuple(result.matched_frames), result.frames_after_filters)
    if hasattr(result, "records"):
        base += (
            tuple(
                (
                    r.frame_index,
                    r.object_class,
                    r.trackid,
                    r.confidence,
                    None if r.features is None else tuple(np.asarray(r.features)),
                )
                for r in result.records
            ),
        )
    return base


def run(engine, query, parallelism, seed=42, hints=None, **kwargs):
    with engine.session() as session:
        return session.prepare(query, hints=hints).execute(
            rng=np.random.default_rng(seed), parallelism=parallelism, **kwargs
        )


class TestParallelEqualsSequential:
    @pytest.mark.parametrize("kind", sorted(QUERIES))
    @pytest.mark.parametrize("parallelism", [2, 4, 7])
    def test_bit_identical_across_parallelism(self, tiny_engine, kind, parallelism):
        sequential = run(tiny_engine, QUERIES[kind], parallelism=1)
        parallel = run(tiny_engine, QUERIES[kind], parallelism=parallelism)
        assert fingerprint(parallel) == fingerprint(sequential)

    @pytest.mark.parametrize(
        "forced", ["naive_aqp", "control_variates", "specialized_rewrite", "exact"]
    )
    def test_forced_aggregate_methods_bit_identical(self, tiny_engine, forced):
        hints = QueryHints(force_plan=forced)
        sequential = run(
            tiny_engine, QUERIES["aggregate_aqp"], parallelism=1, hints=hints
        )
        parallel = run(
            tiny_engine, QUERIES["aggregate_aqp"], parallelism=4, hints=hints
        )
        assert fingerprint(parallel) == fingerprint(sequential)

    def test_scrubbing_hit_order_identical(self, tiny_engine):
        hits = {}
        for parallelism in (1, 4):
            with tiny_engine.session() as session:
                stream = session.stream(
                    QUERIES["scrubbing"],
                    rng=np.random.default_rng(9),
                    parallelism=parallelism,
                )
                hits[parallelism] = [
                    e.frame_index for e in stream if isinstance(e, ScrubbingHit)
                ]
        assert hits[4] == hits[1]

    def test_scrubbing_exhaustive_fallback_bit_identical(self, tiny_engine):
        # A conjunction too rare to satisfy: the importance scan runs dry and
        # the exhaustive fallback sweeps the skipped frames — off the
        # announced prefetch order, so the driver computes them inline with
        # sequential-identical charging.
        query = (
            "SELECT timestamp FROM tiny GROUP BY timestamp "
            "HAVING COUNT(class = 'car') >= 4 LIMIT 5 GAP 10"
        )
        sequential = run(tiny_engine, query, parallelism=1, seed=3)
        parallel = run(tiny_engine, query, parallelism=4, seed=3)
        assert not parallel.satisfied
        assert fingerprint(parallel) == fingerprint(sequential)

    def test_parallelism_one_is_the_plain_sequential_path(self, tiny_engine):
        baseline = run(tiny_engine, QUERIES["aggregate_aqp"], parallelism=None)
        explicit = run(tiny_engine, QUERIES["aggregate_aqp"], parallelism=1)
        assert fingerprint(explicit) == fingerprint(baseline)

    def test_hints_and_config_route_parallelism(self, tiny_engine):
        baseline = run(tiny_engine, QUERIES["exact"], parallelism=4)
        hinted = run(
            tiny_engine,
            QUERIES["exact"],
            parallelism=None,
            hints=QueryHints(parallelism=4),
        )
        assert fingerprint(hinted) == fingerprint(baseline)

    def test_shard_progress_events_appear_only_in_parallel_streams(self, tiny_engine):
        with tiny_engine.session() as session:
            parallel_events = list(
                session.stream(
                    QUERIES["exact"], rng=np.random.default_rng(1), parallelism=4
                )
            )
            sequential_events = list(
                session.stream(
                    QUERIES["exact"], rng=np.random.default_rng(1), parallelism=1
                )
            )
        parallel_shards = [e for e in parallel_events if isinstance(e, ShardProgress)]
        assert parallel_shards
        assert {e.shard for e in parallel_shards} <= {0, 1, 2, 3}
        assert not [e for e in sequential_events if isinstance(e, ShardProgress)]
        assert isinstance(parallel_events[-1], Completed)

    def test_shard_progress_excluded_from_event_accounting(self, tiny_engine):
        sequential = run(tiny_engine, QUERIES["exact"], parallelism=1)
        parallel = run(tiny_engine, QUERIES["exact"], parallelism=4)
        assert (
            parallel.execution_ledger.events_emitted
            == sequential.execution_ledger.events_emitted
        )


class TestShardBoundarySemantics:
    def test_gap_enforced_across_shard_edges(self, tiny_engine):
        # 8 shards over 400 frames puts a boundary every 50 frames; a GAP of
        # 50 therefore forces cross-shard conflicts to actually arise.
        query = (
            "SELECT timestamp FROM tiny GROUP BY timestamp "
            "HAVING COUNT(class = 'car') >= 1 LIMIT 6 GAP 50"
        )
        sequential = run(tiny_engine, query, parallelism=1)
        parallel = run(tiny_engine, query, parallelism=8)
        assert parallel.frames == sequential.frames
        frames = sorted(parallel.frames)
        assert all(b - a >= 50 for a, b in zip(frames, frames[1:], strict=False))

    def test_selection_windows_spanning_shards(self, tiny_engine):
        # 16 shards over 400 frames: boundaries every 25 frames, while car
        # tracks last ~40 — matched windows must straddle shard edges.
        sequential = run(tiny_engine, QUERIES["selection"], parallelism=1)
        parallel = run(tiny_engine, QUERIES["selection"], parallelism=16)
        assert fingerprint(parallel) == fingerprint(sequential)
        boundaries = {i * 25 for i in range(1, 16)}
        matched = set(parallel.matched_frames)
        straddling = [
            b for b in boundaries if b in matched and (b - 1) in matched
        ]
        assert straddling, "fixed-seed video should have windows across shard edges"

    def test_single_frame_shards(self):
        spec = make_video_spec(name="micro", num_frames=12, seed=11, car_rate=0.2)
        engine = BlazeIt(
            config=BlazeItConfig(
                training=TrainingConfig(epochs=2, batch_size=8, min_examples=4),
                min_training_positives=1,
                seed=5,
            )
        )
        engine.register_video("micro", test_video=SyntheticVideo.generate(spec))
        query = "SELECT FCOUNT(*) FROM micro WHERE class = 'car'"
        sequential = run(engine, query, parallelism=1)
        parallel = run(engine, query, parallelism=12)
        assert fingerprint(parallel) == fingerprint(sequential)
        assert parallel.execution_ledger.detector_calls == 12


class TestVideoSharder:
    def test_balanced_contiguous_partition(self):
        plan = VideoSharder().shard(num_frames=10, parallelism=3)
        spans = [(s.start, s.end) for s in plan.shards]
        assert spans == [(0, 4), (4, 7), (7, 10)]
        assert sum(s.num_frames for s in plan.shards) == 10

    def test_owner_of_every_frame(self):
        plan = VideoSharder().shard(num_frames=101, parallelism=7)
        for frame in range(101):
            shard = plan.owner_of(frame)
            assert shard.start <= frame < shard.end
        with pytest.raises(IndexError):
            plan.owner_of(101)

    def test_shard_count_capped_by_frames_and_max(self):
        assert len(VideoSharder().shard(num_frames=3, parallelism=8)) == 3
        assert (
            len(VideoSharder().shard(num_frames=10_000, parallelism=1000))
            == MAX_SHARDS
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VideoSharder().shard(num_frames=0, parallelism=2)
        with pytest.raises(ConfigurationError):
            VideoSharder().shard(num_frames=10, parallelism=0)

    def _stats_with_cold_back_half(self) -> VideoStatistics:
        heldout = [1] * 50 + [0] * 50
        return VideoStatistics.from_dict(
            {
                "video": "v",
                "num_frames": 100,
                "train_frames": 100,
                "heldout_frames": 100,
                "detector_seconds_per_call": 1 / 3,
                "training_epochs": 2,
                "classes": {
                    "car": {
                        "training_positives": 50,
                        "presence_rate": 0.5,
                        "mean_count": 0.5,
                        "count_std": 0.5,
                        "max_count": 1,
                    }
                },
                "train_counts": {"car": heldout},
                "heldout_counts": {"car": heldout},
            }
        )

    def test_statistics_prune_cold_shards_and_order_dense_first(self):
        stats = self._stats_with_cold_back_half()
        plan = VideoSharder().shard(
            num_frames=100, parallelism=4, stats=stats, min_counts={"car": 1}
        )
        rates = [s.estimated_rate for s in plan.shards]
        assert rates[0] == pytest.approx(1.0)
        assert rates[3] == 0.0
        assert plan.shards[3].pruned and plan.shards[2].pruned
        assert not plan.shards[0].pruned
        order = [s.shard_id for s in plan.scheduling_order()]
        assert order[:2] == [0, 1]
        assert set(order[2:]) == {2, 3}
        assert [s.shard_id for s in plan.pruned_shards()] == [2, 3]

    def test_no_statistics_means_no_pruning(self):
        plan = VideoSharder().shard(
            num_frames=100, parallelism=4, min_counts={"car": 1}
        )
        assert all(s.estimated_rate == 1.0 and not s.pruned for s in plan.shards)

    def test_presence_rate_profile_for_object_class(self):
        stats = self._stats_with_cold_back_half()
        plan = VideoSharder().shard(
            num_frames=100, parallelism=2, stats=stats, object_class="car"
        )
        assert plan.shards[0].estimated_rate == pytest.approx(1.0)
        assert plan.shards[1].estimated_rate == 0.0 and plan.shards[1].pruned


class _CountingDetector(SimulatedDetector):
    """Mask R-CNN simulation that counts raw detection computations."""

    def __init__(self):
        base = SimulatedDetector.mask_rcnn()
        super().__init__(
            name=base.name,
            cost=base.cost,
            noise=base.noise,
            confidence_threshold=base.confidence_threshold,
            supported=base._supported,
            seed=base.seed,
        )
        self.computed = 0
        self._count_lock = threading.Lock()

    def detect(self, video, frame_index, ledger=None):
        with self._count_lock:
            self.computed += 1
        return super().detect(video, frame_index, ledger)

    def _detect_batch(self, video, frame_indices, ledger=None):
        with self._count_lock:
            self.computed += len(frame_indices)
        # A trace of real-detector latency keeps workers genuinely in flight
        # when the cancellation tests close the stream mid-scan.
        time.sleep(0.0005 * len(frame_indices))
        return super()._detect_batch(video, frame_indices, ledger)


@pytest.fixture()
def live_engine():
    """An engine whose detector is actually invoked (no recording)."""
    detector = _CountingDetector()
    engine = BlazeIt(
        detector=detector,
        config=BlazeItConfig(
            training=TrainingConfig(epochs=2, batch_size=32, min_examples=16),
            min_training_positives=20,
            seed=3,
        ),
    )
    engine.register_video("live", test_video=SyntheticVideo.generate(make_video_spec()))
    return engine, detector


class TestFailureModes:
    def test_explicit_invalid_parallelism_raises(self, tiny_engine):
        with tiny_engine.session() as session:
            prepared = session.prepare(QUERIES["exact"])
            with pytest.raises(ConfigurationError):
                prepared.execute(parallelism=0)
            with pytest.raises(ConfigurationError):
                prepared.stream(parallelism=-4)

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_worker_crash_surfaces_instead_of_hanging(self):
        class ExplodingDetector(SimulatedDetector):
            def __init__(self):
                base = SimulatedDetector.mask_rcnn()
                super().__init__(
                    name=base.name,
                    cost=base.cost,
                    noise=base.noise,
                    confidence_threshold=base.confidence_threshold,
                    supported=base._supported,
                    seed=base.seed,
                )

            def _detect_batch(self, video, frame_indices, ledger=None):
                if any(int(f) >= 150 for f in frame_indices):
                    raise RuntimeError("detector backend fell over")
                return super()._detect_batch(video, frame_indices, ledger)

        engine = BlazeIt(
            detector=ExplodingDetector(),
            config=BlazeItConfig(
                training=TrainingConfig(epochs=2, batch_size=32, min_examples=16),
                seed=3,
            ),
        )
        engine.register_video(
            "flaky", test_video=SyntheticVideo.generate(make_video_spec(name="flaky"))
        )
        with engine.session() as session:
            # The shard worker owning frame 150 dies; the driver must fall
            # back to inline computation, reproduce the error on its own
            # thread and raise it — never poll forever.
            with pytest.raises(RuntimeError, match="detector backend fell over"):
                session.prepare("SELECT * FROM flaky").execute(
                    rng=np.random.default_rng(1), parallelism=4
                )


class TestCancellation:
    def test_close_stops_in_flight_shard_workers_promptly(self, live_engine):
        engine, detector = live_engine
        with engine.session() as session:
            stream = session.stream(
                "SELECT * FROM live",
                rng=np.random.default_rng(3),
                parallelism=4,
                batch_size=16,
            )
            consumed = 0
            for _ in stream:
                consumed += 1
                if consumed >= 3:
                    break
            stream.close()
            after_close = detector.computed
            time.sleep(0.2)
            assert detector.computed == after_close, (
                "shard workers must be joined by close(): no detector call "
                "may happen after it returns"
            )
            assert after_close < 400, "close mid-scan should not finish the video"

    def test_cancel_finalises_partial_result_and_stops_workers(self, live_engine):
        engine, detector = live_engine
        with engine.session() as session:
            stream = session.stream(
                "SELECT * FROM live",
                rng=np.random.default_rng(3),
                parallelism=4,
                batch_size=16,
            )
            for _ in stream:
                break
            stream.cancel()
            result = stream.drain()
            assert result.stop_reason == "cancelled"
            settled = detector.computed
            time.sleep(0.2)
            assert detector.computed == settled

    def test_limit_satisfied_across_shards_stops_workers(self, live_engine):
        engine, detector = live_engine
        query = (
            "SELECT timestamp FROM live GROUP BY timestamp "
            "HAVING COUNT(class = 'car') >= 1 LIMIT 2"
        )
        with engine.session() as session:
            result = session.stream(
                query, rng=np.random.default_rng(5), parallelism=4, batch_size=16
            ).drain()
        assert result.satisfied
        settled = detector.computed
        time.sleep(0.2)
        assert detector.computed == settled
        # The driver charged only what the walk consumed before the limit.
        assert result.execution_ledger.detector_calls < 400


class TestDefaultRoutingDeclinesScrubbing:
    """Hint/config-routed parallelism is priced per query; explicit wins.

    Scrubbing scans stop early (importance ranking or a satisfied LIMIT), so
    speculative shard prefetch is a measured wall-clock regression for them.
    With catalog statistics — the tiny engine has them — the optimizer's
    ``ParallelismModel`` prices worker startup plus expected prefetch waste
    against the plan's expected detector work and reaches sequential on the
    merits; without statistics the plan-level ``parallel_profitable`` gate
    stands in with the same blanket answer.  An explicit per-call
    ``parallelism=`` is honoured as given either way.
    """

    def _shard_events(self, stream):
        return [e for e in stream if isinstance(e, ShardProgress)]

    def test_hint_routed_scrubbing_runs_sequential(self, tiny_engine):
        with tiny_engine.session(hints=QueryHints(parallelism=4)) as session:
            stream = session.stream(
                QUERIES["scrubbing"], rng=np.random.default_rng(1)
            )
            assert self._shard_events(stream) == []

    def test_config_routed_scrubbing_runs_sequential(
        self, tiny_video, tiny_train_video, tiny_heldout_video, detector,
        engine_config
    ):
        import dataclasses

        config = dataclasses.replace(engine_config, parallelism=4)
        engine = BlazeIt(detector=detector, config=config)
        engine.register_video(
            "tiny",
            test_video=tiny_video,
            train_video=tiny_train_video,
            heldout_video=tiny_heldout_video,
        )
        engine.record_test_day("tiny")
        with engine.session() as session:
            stream = session.stream(
                QUERIES["scrubbing"], rng=np.random.default_rng(1)
            )
            assert self._shard_events(stream) == []

    def test_explicit_per_call_parallelism_still_shards(self, tiny_engine):
        with tiny_engine.session() as session:
            stream = session.stream(
                QUERIES["scrubbing"], rng=np.random.default_rng(1), parallelism=4
            )
            assert self._shard_events(stream) != []

    def test_hint_routed_scans_still_shard(self, tiny_engine):
        with tiny_engine.session(hints=QueryHints(parallelism=4)) as session:
            stream = session.stream(
                QUERIES["exact"], rng=np.random.default_rng(1)
            )
            assert self._shard_events(stream) != []

    def test_declined_routing_is_bit_identical_to_sequential(self, tiny_engine):
        sequential = run(tiny_engine, QUERIES["scrubbing"], parallelism=1)
        routed = run(
            tiny_engine,
            QUERIES["scrubbing"],
            parallelism=None,
            hints=QueryHints(parallelism=4),
        )
        assert fingerprint(routed) == fingerprint(sequential)

    def test_parallel_profitable_surface(self, tiny_engine):
        # The statistics-free fallback gate keeps its conservative answers
        # (it is only consulted when no catalog statistics exist).
        spec_scrub, plan_scrub = tiny_engine.plan(QUERIES["scrubbing"])
        spec_exact, plan_exact = tiny_engine.plan(QUERIES["exact"])
        context = tiny_engine.execution_context("tiny")
        assert plan_scrub.parallel_profitable(context) is False
        assert plan_exact.parallel_profitable(context) is True
