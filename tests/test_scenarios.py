"""Tests for the built-in evaluation scenarios (Table 3)."""

import pytest

from repro.video.scenarios import (
    SCENARIOS,
    generate_scenario,
    generate_scenario_days,
    get_scenario,
    list_scenarios,
)


class TestScenarioRegistry:
    def test_all_six_scenarios_present(self):
        assert set(list_scenarios()) == {
            "taipei",
            "night-street",
            "rialto",
            "grand-canal",
            "amsterdam",
            "archie",
        }

    def test_get_scenario_unknown_raises(self):
        with pytest.raises(KeyError):
            get_scenario("nonexistent")

    def test_primary_classes(self):
        assert get_scenario("taipei").primary_class == "car"
        assert get_scenario("rialto").primary_class == "boat"
        assert get_scenario("grand-canal").primary_class == "boat"

    def test_resolutions_match_table3(self):
        assert (SCENARIOS["taipei"].width, SCENARIOS["taipei"].height) == (1280, 720)
        assert (SCENARIOS["grand-canal"].width, SCENARIOS["grand-canal"].height) == (
            1920,
            1080,
        )
        assert (SCENARIOS["archie"].width, SCENARIOS["archie"].height) == (3840, 2160)

    def test_frame_rates_match_table3(self):
        assert SCENARIOS["grand-canal"].fps == 60.0
        assert SCENARIOS["taipei"].fps == 30.0

    def test_arrival_rate_is_positive(self):
        scenario = get_scenario("taipei")
        for class_spec in scenario.classes:
            assert scenario.arrival_rate(class_spec) > 0.0


class TestScenarioGeneration:
    def test_generate_scenario_length(self):
        video = generate_scenario("night-street", "test", num_frames=2000)
        assert video.num_frames == 2000

    def test_unknown_split_raises(self):
        with pytest.raises(ValueError):
            get_scenario("taipei").to_video_spec("validation", 100)

    def test_splits_differ(self):
        train = generate_scenario("amsterdam", "train", num_frames=2000)
        test = generate_scenario("amsterdam", "test", num_frames=2000)
        assert [t.start_frame for t in train.tracks] != [
            t.start_frame for t in test.tracks
        ]

    def test_generation_is_deterministic_per_split(self):
        a = generate_scenario("taipei", "test", num_frames=1500)
        b = generate_scenario("taipei", "test", num_frames=1500)
        assert len(a.tracks) == len(b.tracks)

    def test_generate_scenario_days(self):
        days = generate_scenario_days("night-street", num_frames=1000)
        assert set(days) == {"train", "heldout", "test"}
        assert all(video.num_frames == 1000 for video in days.values())

    @pytest.mark.parametrize("name", ["taipei", "rialto", "amsterdam"])
    def test_occupancy_roughly_matches_target(self, name):
        scenario = get_scenario(name)
        video = generate_scenario(name, "test", num_frames=6000)
        for class_spec in scenario.classes:
            generated = video.occupancy(class_spec.name)
            # The burst modulation and finite length allow a generous band,
            # but the ordering of dense vs sparse scenes must be preserved.
            assert generated == pytest.approx(class_spec.occupancy, abs=0.25)

    def test_taipei_has_both_cars_and_buses(self):
        video = generate_scenario("taipei", "test", num_frames=4000)
        assert video.distinct_count("car") > 0
        assert video.distinct_count("bus") > 0

    def test_rialto_is_denser_than_night_street(self):
        rialto = generate_scenario("rialto", "test", num_frames=4000)
        night = generate_scenario("night-street", "test", num_frames=4000)
        assert rialto.occupancy("boat") > night.occupancy("car")
