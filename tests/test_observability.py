"""Tests for the observability layer: tracer, metrics, EXPLAIN ANALYZE.

The load-bearing contract is determinism: a traced execution must be
byte-identical (``result_fingerprint``) to an untraced one across every
query class, parallelism level and backend — spans record wall time but
never feed it into result-bearing values, span *identity* is a pure
function of the execution.  On top of that: the metrics registry's
Prometheus exposition, the per-operator EXPLAIN ANALYZE profile and its
wire round-trip, the parallel wall-time accounting fix (S2), and the
service-level admission/TTFE instrumentation (S1).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro.api.session as session_mod
from repro.api.hints import QueryHints
from repro.core.config import BlazeItConfig
from repro.core.engine import BlazeIt
from repro.errors import ConfigurationError
from repro.metrics.runtime import ExecutionLedger
from repro.obs.metrics import MetricsRegistry, get_registry, record_execution_ledger
from repro.obs.profile import ExecutionProfile, build_profile, estimate_errors
from repro.obs.trace import Tracer, maybe_span, operator_scope
from repro.service.protocol import (
    result_fingerprint,
    result_from_json,
    result_to_json,
)

from test_parallel import QUERIES


def run(engine, query, seed=42, **kwargs):
    with engine.session() as session:
        return session.prepare(query).execute(
            rng=np.random.default_rng(seed), **kwargs
        )


@pytest.fixture(scope="module")
def spawn_engine(tiny_video, tiny_labeled_set, detector, engine_config):
    """Engine without a test-day recording, so process workers can spawn."""
    engine = BlazeIt(detector=detector, config=engine_config)
    engine.register_video("tiny", test_video=tiny_video)
    engine.attach_labeled_set("tiny", tiny_labeled_set)
    return engine


@pytest.fixture(scope="module")
def untraced_fingerprints(spawn_engine):
    """Sequential untraced reference fingerprint per query class."""
    return {
        kind: result_fingerprint(run(spawn_engine, query, parallelism=1))
        for kind, query in QUERIES.items()
    }


# -- tracer ---------------------------------------------------------------------------


class TestTracer:
    def test_span_ids_are_creation_order_deterministic(self):
        tracer = Tracer()
        with tracer.span("parse"):
            pass
        with tracer.span("execute") as execute:
            with tracer.span("inner-a"), tracer.span("inner-b"):
                pass
        ids = [r.span_id for r in tracer.records()]
        assert ids == ["s0", "s1", "s1.0", "s1.0.0"]
        assert execute.parent_id is None
        assert tracer.open_spans() == 0

    def test_trace_id_derives_from_seed_sequence_not_clock(self):
        child = np.random.SeedSequence(7).spawn(3)[2]
        assert Tracer.from_seed_sequence(child).trace_id == "seed:7/2"
        assert (
            Tracer.from_seed_sequence(child).trace_id
            == Tracer.from_seed_sequence(child).trace_id
        )
        assert Tracer.from_seed_sequence(None).trace_id == "trace"
        assert (
            Tracer.from_seed_sequence(np.random.SeedSequence(7)).trace_id
            == "seed:7/root"
        )

    def test_span_closes_on_exception_path(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        assert tracer.open_spans() == 0
        inner = tracer.records()[1]
        assert inner.name == "inner" and inner.wall_duration >= 0.0

    def test_operator_span_snapshots_detector_call_delta(self):
        tracer = Tracer()
        ledger = ExecutionLedger()
        with tracer.operator_span("FullScan", ledger):
            ledger.detector_calls += 7
        record = tracer.records()[0]
        assert record.attributes["kind"] == "operator"
        assert record.attributes["detector_calls"] == 7

    def test_worker_spans_stitch_under_current_span_by_shard_id(self):
        tracer = Tracer()
        payloads = [
            {"shard_id": 1, "name": "shard_worker", "wall_duration": 0.5,
             "frames": 10, "backend": "threads"},
            {"shard_id": 0, "name": "shard_worker", "wall_duration": 0.4,
             "frames": 12, "backend": "threads"},
        ]
        with tracer.span("execute"):
            tracer.attach_worker_spans(payloads)
        workers = [r for r in tracer.records() if r.name == "shard_worker"]
        assert [w.span_id for w in workers] == ["s0.w1", "s0.w0"]
        assert all(w.parent_id == "s0" for w in workers)
        assert workers[0].attributes == {
            "frames": 10, "backend": "threads", "shard_id": 1
        }

    def test_null_span_is_shared_and_free(self):
        class Bare:
            tracer = None

        assert maybe_span(None, "x") is maybe_span(None, "y")
        assert operator_scope(Bare(), "FullScan") is maybe_span(None, "z")

    def test_synthetic_span_records_given_duration(self):
        tracer = Tracer()
        record = tracer.synthetic_span("parse", 0.125)
        assert record.span_id == "s0" and record.wall_duration == 0.125
        assert tracer.open_spans() == 0


# -- metrics registry -----------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_histogram_prometheus_text(self):
        registry = MetricsRegistry()
        registry.inc("repro_x_total", 2, {"kind": "a"}, help="X total.")
        registry.inc("repro_x_total", 3, {"kind": "a"})
        registry.set_gauge("repro_depth", 4, help="Depth.")
        registry.observe("repro_wait_seconds", 0.07, buckets=[0.01, 0.1, 1.0])
        registry.observe("repro_wait_seconds", 5.0, buckets=[0.01, 0.1, 1.0])
        text = registry.render_prometheus()
        assert "# HELP repro_x_total X total." in text
        assert "# TYPE repro_x_total counter" in text
        assert 'repro_x_total{kind="a"} 5' in text
        assert "# TYPE repro_depth gauge" in text and "repro_depth 4" in text
        assert "# TYPE repro_wait_seconds histogram" in text
        assert 'repro_wait_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_wait_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_wait_seconds_count 2" in text
        assert text.endswith("\n")

    def test_bucket_counts_are_cumulative_and_monotone(self):
        registry = MetricsRegistry()
        for value in (0.005, 0.05, 0.5, 50.0):
            registry.observe("repro_h", value, buckets=[0.01, 0.1, 1.0])
        lines = [
            line
            for line in registry.render_prometheus().splitlines()
            if line.startswith("repro_h_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts) == [1, 2, 3, 4]

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.inc("repro_esc_total", 1, {"q": 'say "hi"\nnow'})
        assert '\\"hi\\"\\n' in registry.render_prometheus()

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.inc("repro_c", 1, {"kind": "a"})
        registry.set_gauge("repro_g", 2)
        registry.observe("repro_h", 0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {'repro_c{kind="a"}': 1.0}
        assert snapshot["gauges"] == {"repro_g": 2.0}
        assert snapshot["histograms"]["repro_h"]["count"] == 1

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.inc("repro_c")
        registry.reset()
        assert registry.render_prometheus() == "\n"

    def test_record_execution_ledger_folds_counters(self):
        registry = get_registry()
        registry.reset()
        ledger = ExecutionLedger()
        ledger.detector_calls += 9
        record_execution_ledger("selection", ledger)
        snapshot = registry.snapshot()
        assert snapshot["counters"]['repro_queries_total{kind="selection"}'] == 1.0
        assert (
            snapshot["counters"]['repro_detector_calls_total{kind="selection"}']
            == 9.0
        )
        registry.reset()


# -- EXPLAIN ANALYZE ------------------------------------------------------------------


class TestExplainAnalyze:
    def test_execute_analyze_attaches_profile(self, spawn_engine):
        result = run(spawn_engine, QUERIES["selection"], analyze=True)
        profile = result.profile
        assert isinstance(profile, ExecutionProfile)
        assert profile.kind == result.kind
        executed = [
            op for op in profile.operators if op.actual_detector_calls is not None
        ]
        assert executed, profile.render()
        assert any(op.estimated_detector_calls is not None for op in executed)
        rendered = profile.render()
        assert "est" in rendered and "actual" in rendered
        # An explicit rng bypasses the session's seed-sequence draw, so the
        # trace id falls back to the default; session-drawn executions get
        # the deterministic spawn-path id (covered below).
        assert profile.trace_id == "trace"
        # parse/optimize/execute spans frame the operator spans.
        names = {span.name for span in profile.spans}
        assert {"parse", "optimize", "execute"} <= names

    def test_session_drawn_rng_yields_seeded_trace_id(self, spawn_engine):
        with spawn_engine.session() as session:
            first = session.prepare(QUERIES["exact"]).execute(analyze=True)
        assert first.profile.trace_id.startswith("seed:")

    def test_default_execution_attaches_no_profile(self, spawn_engine):
        assert run(spawn_engine, QUERIES["selection"]).profile is None

    def test_trace_flag_precedence(self, spawn_engine):
        # Explicit trace=True wins over the (off) config default.
        assert run(spawn_engine, QUERIES["exact"], trace=True).profile is not None
        # analyze=True wins over trace=False.
        assert (
            run(spawn_engine, QUERIES["exact"], trace=False, analyze=True).profile
            is not None
        )
        # Session hints enable tracing without per-call arguments.
        with spawn_engine.session(hints=QueryHints(trace=True)) as session:
            result = session.prepare(QUERIES["exact"]).execute(
                rng=np.random.default_rng(42)
            )
        assert result.profile is not None

    def test_trace_argument_validated(self, spawn_engine):
        with pytest.raises(ConfigurationError):
            run(spawn_engine, QUERIES["exact"], trace="yes")

    def test_explain_analyze_returns_profile(self, spawn_engine):
        with spawn_engine.session() as session:
            prepared = session.prepare(QUERIES["aggregate_exact"])
            profile = prepared.explain(analyze=True)
            assert isinstance(profile, ExecutionProfile)
            explanation = prepared.explain()
            assert not isinstance(explanation, ExecutionProfile)

    def test_estimate_errors_rows(self, spawn_engine):
        result = run(spawn_engine, QUERIES["exact"], analyze=True)
        rows = estimate_errors([result.profile])
        assert rows and all("relative_error" in row for row in rows)
        for row in rows:
            assert row["actual_detector_calls"] >= 0

    def test_build_profile_sums_repeated_operator_spans(self):
        from repro.core.results import OperatorNode

        tracer = Tracer()
        ledger = ExecutionLedger()
        for calls in (3, 4):
            with tracer.operator_span("FullScan", ledger):
                ledger.detector_calls += calls
        tree = OperatorNode(
            name="FullScan", detail="", estimated_detector_calls=10
        )
        profile = build_profile("exact", "scan", tree, tracer)
        assert profile.operators[0].actual_detector_calls == 7
        assert profile.operators[0].estimated_detector_calls == 10


# -- determinism: traced == untraced across the whole matrix --------------------------


class TestTraceIdentityMatrix:
    @pytest.mark.parametrize("kind", sorted(QUERIES))
    @pytest.mark.parametrize("parallelism", [1, 4])
    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_traced_result_fingerprint_identical(
        self, spawn_engine, untraced_fingerprints, kind, parallelism, backend
    ):
        traced = run(
            spawn_engine,
            QUERIES[kind],
            parallelism=parallelism,
            backend=backend,
            trace=True,
        )
        assert result_fingerprint(traced) == untraced_fingerprints[kind]
        assert traced.profile is not None

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_worker_spans_stitched_per_backend(self, spawn_engine, backend):
        result = run(
            spawn_engine,
            QUERIES["exact"],
            parallelism=4,
            backend=backend,
            analyze=True,
        )
        workers = [
            span for span in result.profile.spans if span.name == "shard_worker"
        ]
        assert len(workers) == 4
        assert sorted(span.attributes["shard_id"] for span in workers) == [
            0, 1, 2, 3,
        ]
        assert {span.attributes["backend"] for span in workers} == {backend}
        # Stable ids derived from shard ids under the execute span.
        assert sorted(span.span_id for span in workers) == [
            f"{workers[0].parent_id}.w{i}" for i in range(4)
        ]


# -- S2: parallel wall-time accounting ------------------------------------------------


class TestWallAccounting:
    def test_set_wall_seconds_is_an_overwrite(self):
        ledger = ExecutionLedger()
        ledger.set_wall_seconds(1.25)
        assert ledger.wall_seconds == 1.25
        ledger.set_wall_seconds(2.5)
        assert ledger.wall_seconds == 2.5

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_parallel_wall_matches_driver_elapsed(self, spawn_engine, backend):
        """Regression (S2): the terminal ledger's wall time must cover the
        whole parallel execution — executor construction and (for the
        process backend) worker spawn included — so thread and process rows
        are comparable.  Before the fix the process backend reported only
        the stream-drain time, hiding seconds of spawn cost."""
        started = time.perf_counter()
        result = run(
            spawn_engine, QUERIES["exact"], parallelism=4, backend=backend
        )
        elapsed = time.perf_counter() - started
        wall = result.execution_ledger.wall_seconds
        assert wall <= elapsed * 1.05 + 0.01
        assert wall >= 0.5 * elapsed


# -- S4: wire round-trips -------------------------------------------------------------


class TestProfileWireRoundTrip:
    def test_profile_survives_protocol_round_trip(self, spawn_engine):
        result = run(spawn_engine, QUERIES["selection"], analyze=True)
        restored = result_from_json(result_to_json(result))
        assert restored.profile is not None
        assert restored.profile.trace_id == result.profile.trace_id
        assert [op.name for op in restored.profile.operators] == [
            op.name for op in result.profile.operators
        ]
        assert [span.span_id for span in restored.profile.spans] == [
            span.span_id for span in result.profile.spans
        ]

    def test_fingerprint_excludes_profile(self, spawn_engine):
        traced = run(spawn_engine, QUERIES["selection"], analyze=True)
        untraced = run(spawn_engine, QUERIES["selection"])
        assert result_fingerprint(traced) == result_fingerprint(untraced)

    def test_closed_stream_leaks_no_spans(self, spawn_engine, monkeypatch):
        """Abandoning a traced stream mid-flight (the client-disconnect
        path) must unwind every open span."""
        tracers: list[Tracer] = []

        class RecordingTracer(Tracer):
            @classmethod
            def from_seed_sequence(cls, seed_sequence):
                tracer = super().from_seed_sequence(seed_sequence)
                tracers.append(tracer)
                return tracer

        monkeypatch.setattr(session_mod, "Tracer", RecordingTracer)
        with spawn_engine.session() as session:
            prepared = session.prepare(QUERIES["exact"])
            stream = prepared.stream(
                rng=np.random.default_rng(42), batch_size=16, trace=True
            )
            next(iter(stream))
            stream.close()
        assert len(tracers) == 1
        assert tracers[0].open_spans() == 0
        assert any(r.name == "execute" for r in tracers[0].records())


# -- S1 + service wire: admission waits, /metrics, traced queries over SSE ------------


def _service_engine():
    from repro.detection.simulated import SimulatedDetector
    from repro.video.scenarios import generate_scenario

    engine = BlazeIt(
        detector=SimulatedDetector.mask_rcnn(),
        config=BlazeItConfig(seed=11),
    )
    engine.register_video(
        "v", test_video=generate_scenario("rialto", "test", 120)
    )
    return engine


@pytest.fixture()
def service_manager():
    from repro.service.manager import ServiceConfig, ServiceManager

    manager = ServiceManager(_service_engine(), ServiceConfig(slots=2))
    try:
        yield manager
    finally:
        manager.shutdown()


@pytest.fixture()
def live_client(service_manager):
    from repro.service.app import ServiceThread
    from repro.service.client import ServiceClient

    with ServiceThread(service_manager) as service:
        yield ServiceClient(service.host, service.port)


class TestServiceObservability:
    def test_admission_waits_and_ttfe_on_status(self, service_manager):
        service_manager.create_tenant("t")
        session_id = service_manager.create_session("t")
        record = service_manager.submit(session_id, query="SELECT * FROM v")
        assert record.done.wait(60.0)
        payload = record.status()
        for key in (
            "admission_wait_seconds",
            "slot_wait_seconds",
            "ttfe_seconds",
        ):
            assert payload[key] is not None and payload[key] >= 0.0
        # TTFE includes the admission wait by construction.
        assert payload["ttfe_seconds"] >= payload["admission_wait_seconds"]

    def test_quota_rejection_increments_counter(self, service_manager):
        from repro.service.manager import QuotaExceededError, TenantQuota

        get_registry().reset()
        service_manager.create_tenant(
            "small", TenantQuota(max_detector_calls=1)
        )
        session_id = service_manager.create_session("small")
        record = service_manager.submit(
            session_id, query="SELECT FCOUNT(*) FROM v WHERE class = 'car'"
        )
        assert record.done.wait(60.0)
        with pytest.raises(QuotaExceededError):
            service_manager.submit(session_id, query="SELECT * FROM v")
        counters = get_registry().snapshot()["counters"]
        assert counters['repro_quota_rejections_total{tenant="small"}'] == 1

    def test_manager_status_embeds_metrics_snapshot(self, service_manager):
        snapshot = service_manager.status()["metrics"]
        assert isinstance(snapshot, dict)

    def test_metrics_endpoint_serves_prometheus_text(self, live_client):
        live_client.create_tenant("t")
        session_id = live_client.create_session("t")
        live_client.execute(session_id, "SELECT * FROM v")
        text = live_client.metrics()
        assert text.endswith("\n")
        lines = [line for line in text.splitlines() if line]
        assert any(line.startswith("# HELP repro_") for line in lines)
        assert any(line.startswith("# TYPE repro_") for line in lines)
        for line in lines:
            if line.startswith("#"):
                continue
            name_part, _, value = line.rpartition(" ")
            assert name_part and float(value) is not None
        assert "repro_query_wall_seconds_bucket" in text

    def test_healthz_carries_metrics_snapshot(self, live_client):
        payload = live_client.healthz()
        assert isinstance(payload["metrics"], dict)

    def test_traced_query_profile_round_trips_over_wire(self, live_client):
        live_client.create_tenant("t")
        session_id = live_client.create_session("t")
        plain = live_client.execute(session_id, "SELECT * FROM v")
        traced = live_client.execute(
            session_id, "SELECT * FROM v", hints={"trace": True}
        )
        assert result_fingerprint(traced) == result_fingerprint(plain)
        assert traced.profile is not None
        names = {span.name for span in traced.profile.spans}
        assert {"parse", "optimize", "execute"} <= names

    def test_sse_resume_preserves_traced_tail(self, live_client):
        """S4: a traced query's SSE stream resumes from an index with an
        identical tail, and the terminal status still carries the profile."""
        live_client.create_tenant("t")
        session_id = live_client.create_session("t")
        status = live_client.submit(
            session_id,
            query="SELECT * FROM v",
            hints={"trace": True},
            wait=False,
        )
        query_id = status["query_id"]
        events = list(live_client.events(query_id))
        assert events and type(events[-1][1]).__name__ == "Completed"
        indices = [index for index, _ in events]
        assert indices == list(range(len(events)))
        resumed = list(live_client.events(query_id, start=2))
        assert [index for index, _ in resumed] == indices[2:]
        final = live_client.query_status(query_id)
        assert final["state"] == "completed"
        restored = result_from_json(final["result"])
        assert restored.profile is not None
        assert restored.profile.trace_id.startswith("seed:")
