"""Tests for bounding-box geometry."""

import math

import pytest

from repro.video.geometry import BoundingBox, Point


class TestPoint:
    def test_distance_to_self_is_zero(self):
        point = Point(3.0, 4.0)
        assert point.distance_to(point) == 0.0

    def test_distance_is_euclidean(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Point(1.0, 2.0), Point(-4.0, 7.5)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))


class TestBoundingBoxBasics:
    def test_width_height_area(self):
        box = BoundingBox(10.0, 20.0, 30.0, 60.0)
        assert box.width == 20.0
        assert box.height == 40.0
        assert box.area == 800.0

    def test_center(self):
        box = BoundingBox(0.0, 0.0, 10.0, 20.0)
        assert box.center == Point(5.0, 10.0)

    def test_invalid_box_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(10.0, 0.0, 5.0, 5.0)
        with pytest.raises(ValueError):
            BoundingBox(0.0, 10.0, 5.0, 5.0)

    def test_degenerate_box_has_zero_area(self):
        assert BoundingBox(5.0, 5.0, 5.0, 9.0).area == 0.0

    def test_from_center_round_trips(self):
        box = BoundingBox.from_center(50.0, 60.0, 20.0, 10.0)
        assert box.center == Point(50.0, 60.0)
        assert box.width == pytest.approx(20.0)
        assert box.height == pytest.approx(10.0)

    def test_as_tuple(self):
        box = BoundingBox(1.0, 2.0, 3.0, 4.0)
        assert box.as_tuple() == (1.0, 2.0, 3.0, 4.0)

    def test_contains_point(self):
        box = BoundingBox(0.0, 0.0, 10.0, 10.0)
        assert box.contains_point(Point(5.0, 5.0))
        assert box.contains_point(Point(0.0, 10.0))
        assert not box.contains_point(Point(10.1, 5.0))


class TestBoundingBoxOverlap:
    def test_iou_identical_boxes(self):
        box = BoundingBox(0.0, 0.0, 10.0, 10.0)
        assert box.iou(box) == pytest.approx(1.0)

    def test_iou_disjoint_boxes(self):
        a = BoundingBox(0.0, 0.0, 10.0, 10.0)
        b = BoundingBox(20.0, 20.0, 30.0, 30.0)
        assert a.iou(b) == 0.0
        assert not a.intersects(b)

    def test_iou_half_overlap(self):
        a = BoundingBox(0.0, 0.0, 10.0, 10.0)
        b = BoundingBox(5.0, 0.0, 15.0, 10.0)
        # Intersection 50, union 150.
        assert a.iou(b) == pytest.approx(1.0 / 3.0)

    def test_iou_symmetric(self):
        a = BoundingBox(0.0, 0.0, 10.0, 10.0)
        b = BoundingBox(3.0, 4.0, 12.0, 9.0)
        assert a.iou(b) == pytest.approx(b.iou(a))

    def test_touching_boxes_do_not_intersect(self):
        a = BoundingBox(0.0, 0.0, 10.0, 10.0)
        b = BoundingBox(10.0, 0.0, 20.0, 10.0)
        assert a.intersection(b) == 0.0

    def test_union_of_identical_equals_area(self):
        box = BoundingBox(0.0, 0.0, 4.0, 5.0)
        assert box.union(box) == pytest.approx(box.area)

    def test_iou_of_degenerate_boxes_is_zero(self):
        a = BoundingBox(0.0, 0.0, 0.0, 0.0)
        assert a.iou(a) == 0.0


class TestBoundingBoxTransforms:
    def test_translate(self):
        box = BoundingBox(0.0, 0.0, 10.0, 10.0).translate(5.0, -2.0)
        assert box.as_tuple() == (5.0, -2.0, 15.0, 8.0)

    def test_expand(self):
        box = BoundingBox(10.0, 10.0, 20.0, 20.0).expand(2.0)
        assert box.as_tuple() == (8.0, 8.0, 22.0, 22.0)

    def test_clip_to_frame(self):
        box = BoundingBox(-10.0, -5.0, 2000.0, 900.0).clip_to(1280, 720)
        assert box.as_tuple() == (0.0, 0.0, 1280.0, 720.0)

    def test_clip_preserves_inner_box(self):
        box = BoundingBox(10.0, 10.0, 20.0, 20.0)
        assert box.clip_to(1280, 720) == box

    def test_expand_then_area_grows(self):
        box = BoundingBox(0.0, 0.0, 10.0, 10.0)
        assert box.expand(1.0).area > box.area

    def test_translate_preserves_area(self):
        box = BoundingBox(0.0, 0.0, 7.0, 3.0)
        assert box.translate(100.0, 50.0).area == pytest.approx(box.area)


class TestBoundingBoxNumericEdgeCases:
    def test_tiny_boxes(self):
        a = BoundingBox(0.0, 0.0, 1e-9, 1e-9)
        b = BoundingBox(0.0, 0.0, 1e-9, 1e-9)
        assert a.iou(b) == pytest.approx(1.0)

    def test_large_coordinates(self):
        a = BoundingBox(1e8, 1e8, 1e8 + 10, 1e8 + 10)
        b = BoundingBox(1e8 + 5, 1e8, 1e8 + 15, 1e8 + 10)
        assert 0.0 < a.iou(b) < 1.0

    def test_iou_bounded(self):
        a = BoundingBox(0.0, 0.0, 3.0, 7.0)
        b = BoundingBox(1.0, 1.0, 9.0, 4.0)
        assert 0.0 <= a.iou(b) <= 1.0
        assert not math.isnan(a.iou(b))
