"""Tests for the selection filter classes and feature-level UDF scores."""

import numpy as np
import pytest

from repro.metrics.runtime import RuntimeLedger
from repro.selection.filters import (
    ContentFilter,
    LabelFilter,
    SpatialFilter,
    TemporalFilter,
    feature_level_score,
)
from repro.selection.plan import SelectionPlan
from repro.specialization.binary_model import BinaryPresenceModel


class TestTemporalFilter:
    def test_subsampling(self, tiny_video):
        filter_ = TemporalFilter(subsample_step=7)
        survivors = filter_.apply(tiny_video, np.arange(100))
        np.testing.assert_array_equal(survivors, np.arange(0, 100, 7))

    def test_time_range(self, tiny_video):
        filter_ = TemporalFilter(start_frame=10, end_frame=20)
        survivors = filter_.apply(tiny_video, np.arange(100))
        np.testing.assert_array_equal(survivors, np.arange(10, 20))

    def test_combined_subsample_and_range(self, tiny_video):
        filter_ = TemporalFilter(subsample_step=5, start_frame=10, end_frame=40)
        survivors = filter_.apply(tiny_video, np.arange(100))
        np.testing.assert_array_equal(survivors, [10, 15, 20, 25, 30, 35])

    def test_step_one_is_identity(self, tiny_video):
        filter_ = TemporalFilter(subsample_step=1)
        survivors = filter_.apply(tiny_video, np.arange(50))
        assert survivors.size == 50

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            TemporalFilter(subsample_step=0)

    def test_no_cost_charged(self, tiny_video):
        ledger = RuntimeLedger()
        TemporalFilter(subsample_step=3).apply(tiny_video, np.arange(30), ledger)
        assert ledger.total_seconds == 0.0


class TestSpatialFilter:
    def test_half_width_roi_halves_detection_cost(self):
        filter_ = SpatialFilter(
            roi_x_min=0, roi_y_min=0, roi_x_max=640, roi_y_max=720,
            frame_width=1280, frame_height=720,
        )
        assert filter_.detection_cost_scale == pytest.approx(0.5)

    def test_does_not_prune_frames(self, tiny_video):
        filter_ = SpatialFilter(
            roi_x_min=0, roi_y_min=0, roi_x_max=640, roi_y_max=720,
            frame_width=1280, frame_height=720,
        )
        survivors = filter_.apply(tiny_video, np.arange(25))
        assert survivors.size == 25

    def test_invalid_roi(self):
        with pytest.raises(ValueError):
            SpatialFilter(
                roi_x_min=100, roi_y_min=0, roi_x_max=50, roi_y_max=720,
                frame_width=1280, frame_height=720,
            )

    def test_cost_scale_floor(self):
        filter_ = SpatialFilter(
            roi_x_min=0, roi_y_min=0, roi_x_max=10, roi_y_max=10,
            frame_width=1280, frame_height=720,
        )
        assert filter_.detection_cost_scale >= 0.05


class TestFeatureLevelScore:
    def test_red_frames_score_higher(self, tiny_video):
        """Frames with red objects should get a higher redness score."""
        red_frames = []
        white_frames = []
        for track in tiny_video.tracks:
            target = red_frames if track.color_name == "red" else white_frames
            target.append(track.start_frame)
        if not red_frames or not white_frames:
            pytest.skip("tiny video lacks colour diversity")
        features_red = tiny_video.frame_features(red_frames[:10])
        features_white = tiny_video.frame_features(white_frames[:10])
        assert feature_level_score(features_red, "redness").mean() > (
            feature_level_score(features_white, "redness").mean()
        )

    def test_unknown_udf_raises(self):
        with pytest.raises(ValueError):
            feature_level_score(np.zeros((1, 65)), "sharpness")

    def test_output_shape(self, tiny_video):
        features = tiny_video.frame_features([0, 1, 2])
        assert feature_level_score(features, "brightness").shape == (3,)


class TestContentFilter:
    def test_threshold_filters_frames(self, tiny_video):
        ledger = RuntimeLedger()
        filter_ = ContentFilter(udf_name="redness", threshold=1e9)
        survivors = filter_.apply(tiny_video, np.arange(50), ledger)
        assert survivors.size == 0
        assert ledger.call_count("simple_filter") == 50

    def test_minus_infinity_threshold_keeps_all(self, tiny_video):
        filter_ = ContentFilter(udf_name="redness", threshold=float("-inf"))
        survivors = filter_.apply(tiny_video, np.arange(50))
        assert survivors.size == 50

    def test_empty_input(self, tiny_video):
        filter_ = ContentFilter(udf_name="redness", threshold=0.0)
        assert filter_.apply(tiny_video, np.array([], dtype=np.int64)).size == 0


class TestLabelFilter:
    def test_filters_with_trained_model(self, tiny_video, tiny_labeled_set, fast_training_config):
        model = BinaryPresenceModel("bus", training_config=fast_training_config)
        model.fit(
            tiny_labeled_set.train_features, tiny_labeled_set.train_presence("bus")
        )
        ledger = RuntimeLedger()
        loose = LabelFilter(model=model, threshold=0.0)
        strict = LabelFilter(model=model, threshold=1.1)
        assert loose.apply(tiny_video, np.arange(40), ledger).size == 40
        assert strict.apply(tiny_video, np.arange(40), ledger).size == 0
        assert ledger.call_count("specialized_nn") == 80


class TestSelectionPlan:
    def test_detection_cost_scale_multiplies(self):
        plan = SelectionPlan(
            filters=[
                SpatialFilter(0, 0, 640, 720, 1280, 720),
                TemporalFilter(subsample_step=2),
            ]
        )
        assert plan.detection_cost_scale == pytest.approx(0.5)

    def test_without_removes_filter_class(self):
        plan = SelectionPlan(
            filters=[TemporalFilter(subsample_step=2), ContentFilter("redness", 0.0)]
        )
        assert plan.without("temporal").filter_classes() == ["content"]

    def test_restricted_to(self):
        plan = SelectionPlan(
            filters=[TemporalFilter(subsample_step=2), ContentFilter("redness", 0.0)]
        )
        assert plan.restricted_to(["temporal"]).filter_classes() == ["temporal"]

    def test_apply_chains_filters(self, tiny_video):
        plan = SelectionPlan(
            filters=[
                TemporalFilter(subsample_step=2),
                ContentFilter("redness", float("-inf")),
            ]
        )
        survivors = plan.apply(tiny_video, np.arange(20))
        np.testing.assert_array_equal(survivors, np.arange(0, 20, 2))

    def test_apply_defaults_to_all_frames(self, tiny_video):
        plan = SelectionPlan(filters=[TemporalFilter(subsample_step=tiny_video.num_frames)])
        survivors = plan.apply(tiny_video)
        assert survivors.size == 1

    def test_describe_mentions_filters(self):
        plan = SelectionPlan(filters=[TemporalFilter(subsample_step=2)])
        assert "temporal" in plan.describe()
        assert "no filters" in SelectionPlan().describe()

    def test_empty_survivor_short_circuits(self, tiny_video):
        ledger = RuntimeLedger()
        plan = SelectionPlan(
            filters=[
                ContentFilter("redness", 1e9),
                ContentFilter("blueness", float("-inf")),
            ]
        )
        plan.apply(tiny_video, np.arange(30), ledger)
        # The second filter never runs because nothing survived the first.
        assert ledger.call_count("simple_filter") == 30
