"""Tests for the statistics catalog computed from labeled sets."""

import numpy as np
import pytest

from repro.catalog import ClassStatistics, StatisticsCatalog, VideoStatistics


@pytest.fixture(scope="module")
def tiny_stats(tiny_engine) -> VideoStatistics:
    stats = tiny_engine.catalog.get("tiny")
    assert stats is not None
    return stats


class TestCatalogRegistration:
    def test_engine_registers_stats_with_labeled_set(self, tiny_engine):
        assert "tiny" in tiny_engine.catalog
        assert tiny_engine.catalog.names() == ["tiny"]

    def test_no_labeled_set_no_stats(self, tiny_video, detector, engine_config):
        from repro.core.engine import BlazeIt

        engine = BlazeIt(detector=detector, config=engine_config)
        engine.register_video("bare", test_video=tiny_video)
        assert engine.catalog.get("bare") is None

    def test_catalog_replaces_on_reregistration(self, tiny_stats):
        catalog = StatisticsCatalog()
        catalog.register(tiny_stats)
        catalog.register(tiny_stats)
        assert len(catalog) == 1

    def test_attach_labeled_set_requires_registered_video(
        self, tiny_labeled_set, detector, engine_config
    ):
        from repro.core.engine import BlazeIt
        from repro.errors import UnknownVideoError

        engine = BlazeIt(detector=detector, config=engine_config)
        with pytest.raises(UnknownVideoError):
            engine.attach_labeled_set("ghost", tiny_labeled_set)

    def test_attach_labeled_set_registers_statistics(
        self, tiny_video, tiny_labeled_set, detector, engine_config
    ):
        from repro.core.engine import BlazeIt

        engine = BlazeIt(detector=detector, config=engine_config)
        engine.register_video("tiny", test_video=tiny_video)
        engine.attach_labeled_set("tiny", tiny_labeled_set)
        stats = engine.catalog.get("tiny")
        assert stats is not None
        assert stats.num_frames == tiny_video.num_frames


class TestVideoStatistics:
    def test_frame_counts(self, tiny_stats, tiny_video):
        assert tiny_stats.num_frames == tiny_video.num_frames
        assert tiny_stats.train_frames == 400
        assert tiny_stats.heldout_frames == 400

    def test_detector_cost_from_configured_detector(self, tiny_stats, detector):
        assert tiny_stats.detector_seconds_per_call == pytest.approx(
            detector.cost.seconds_per_call
        )
        assert tiny_stats.detector_seconds(3) == pytest.approx(
            3 * detector.cost.seconds_per_call
        )

    def test_observed_classes_covered(self, tiny_stats):
        assert set(tiny_stats.classes) == {"car", "bus"}
        for stats in tiny_stats.classes.values():
            assert isinstance(stats, ClassStatistics)

    def test_class_frequencies_match_labeled_set(self, tiny_stats, tiny_labeled_set):
        for name in ("car", "bus"):
            heldout = tiny_labeled_set.heldout_counts(name)
            stats = tiny_stats.class_stats(name)
            assert stats.presence_rate == pytest.approx(float((heldout > 0).mean()))
            assert stats.mean_count == pytest.approx(float(heldout.mean()))
            assert stats.count_std == pytest.approx(float(heldout.std(ddof=1)))
            assert stats.training_positives == tiny_labeled_set.training_positives(name)

    def test_value_range_mirrors_plan_fallbacks(self, tiny_stats):
        car = tiny_stats.class_stats("car")
        assert tiny_stats.value_range("car") == float(car.max_count + 1)
        # Unseen classes have a labeled maximum of zero, so K = 1, exactly
        # what the aggregate plan computes at execution time.
        assert tiny_stats.value_range("bear") == 1.0
        assert tiny_stats.count_std("bear") == 0.0
        assert tiny_stats.class_stats(None) is None

    def test_event_rate_matches_recorded_conjunction(
        self, tiny_stats, tiny_labeled_set
    ):
        rate = tiny_stats.event_rate({"car": 2})
        expected = tiny_labeled_set.heldout_recorded.frames_satisfying(
            {"car": 2}
        ).size / 400
        assert rate == pytest.approx(expected)
        assert tiny_stats.event_rate({"bear": 1}) == 0.0
        assert tiny_stats.event_rate({}) == 0.0

    def test_training_event_count_matches_plan_gate(
        self, tiny_stats, tiny_labeled_set
    ):
        assert tiny_stats.training_event_count(
            {"car": 2}
        ) == tiny_labeled_set.training_instances({"car": 2})
        assert tiny_stats.training_event_count({"bear": 1}) == 0

    def test_selection_survival_bounded(self, tiny_stats):
        for name in ("car", "bus"):
            survival = tiny_stats.selection_survival(name)
            assert tiny_stats.class_stats(name).presence_rate <= survival <= 1.0
        # A class without statistics gives no trainable filter.
        assert tiny_stats.selection_survival("bear") == 1.0
        assert tiny_stats.selection_survival(None) == 1.0

    def test_training_cost_matches_trainer_accounting(
        self, tiny_stats, engine_config
    ):
        from repro.metrics.runtime import StandardCosts

        expected = (
            400
            * engine_config.training.epochs
            * StandardCosts.SPECIALIZED_NN_TRAIN.seconds_per_call
        )
        assert tiny_stats.specialized_training_seconds() == pytest.approx(expected)

    def test_training_charge_actually_within_estimate(self, tiny_engine):
        """The catalog's training price matches what a plan really charges."""
        result = tiny_engine.query(
            "SELECT FCOUNT(*) FROM tiny WHERE class='car' ERROR WITHIN 0.1",
            rng=np.random.default_rng(0),
        )
        charged = result.ledger.seconds_for("specialized_nn_train")
        estimated = tiny_engine.catalog.get("tiny").specialized_training_seconds()
        assert charged == pytest.approx(estimated)


class TestRangeStatistics:
    """Per-shard (frame-range) rates driving the video sharder."""

    def test_whole_range_matches_global_rates(self, tiny_stats):
        whole = tiny_stats.range_event_rate({"car": 1}, 0, tiny_stats.num_frames)
        assert whole == pytest.approx(tiny_stats.event_rate({"car": 1}))
        presence = tiny_stats.range_presence_rate("car", 0, tiny_stats.num_frames)
        assert presence == pytest.approx(tiny_stats.class_stats("car").presence_rate)

    def test_ranges_partition_the_event_mass(self, tiny_stats):
        n = tiny_stats.num_frames
        halves = [
            tiny_stats.range_event_rate({"car": 1}, 0, n // 2),
            tiny_stats.range_event_rate({"car": 1}, n // 2, n),
        ]
        total = tiny_stats.event_rate({"car": 1})
        assert sum(halves) / 2 == pytest.approx(total, abs=1e-9)

    def test_unknown_class_rates(self, tiny_stats):
        assert tiny_stats.range_event_rate({"bear": 1}, 0, 100) == 0.0
        assert tiny_stats.range_presence_rate("bear", 0, 100) == 0.0
        assert tiny_stats.range_presence_rate(None, 0, 100) == 1.0

    def test_tiny_ranges_never_empty(self, tiny_stats):
        # A single-frame shard still maps to at least one held-out frame.
        rate = tiny_stats.range_presence_rate("car", 0, 1)
        assert rate in (0.0, 1.0)


class TestCatalogPersistence:
    def test_save_load_roundtrip(self, tiny_engine, tiny_stats, tmp_path):
        path = tmp_path / "catalog.json"
        tiny_engine.catalog.save(path)
        loaded = StatisticsCatalog.load(path)
        assert loaded.names() == ["tiny"]
        restored = loaded.get("tiny")
        assert restored.num_frames == tiny_stats.num_frames
        assert restored.heldout_frames == tiny_stats.heldout_frames
        assert set(restored.classes) == set(tiny_stats.classes)
        for name in tiny_stats.classes:
            assert restored.classes[name] == tiny_stats.classes[name]
        # The derived quantities the optimizer and sharder consume survive.
        assert restored.event_rate({"car": 1}) == tiny_stats.event_rate({"car": 1})
        assert restored.training_event_count({"car": 1}) == tiny_stats.training_event_count(
            {"car": 1}
        )
        assert restored.range_event_rate({"car": 1}, 0, 100) == tiny_stats.range_event_rate(
            {"car": 1}, 0, 100
        )

    def test_engine_accepts_preloaded_catalog(
        self, tiny_engine, tiny_video, detector, engine_config, tmp_path
    ):
        from repro.core.engine import BlazeIt

        path = tmp_path / "catalog.json"
        tiny_engine.catalog.save(path)
        engine = BlazeIt(
            detector=detector,
            config=engine_config,
            catalog=StatisticsCatalog.load(path),
        )
        engine.register_video("tiny", test_video=tiny_video)
        # Statistics are available without re-running the detector over the
        # labeled days: the optimizer prices plans and the sharder prunes.
        assert engine.catalog.get("tiny") is not None
        explanation = engine.session().explain(
            "SELECT FCOUNT(*) FROM tiny WHERE class='car' ERROR WITHIN 0.1"
        )
        assert explanation.candidates

    def test_load_rejects_foreign_files(self, tmp_path):
        from repro.errors import ConfigurationError

        path = tmp_path / "other.json"
        path.write_text("{\"nope\": 1}")
        with pytest.raises(ConfigurationError):
            StatisticsCatalog.load(path)

    def test_npz_save_load_roundtrip(self, tiny_engine, tiny_stats, tmp_path):
        path = tmp_path / "catalog.npz"
        tiny_engine.catalog.save(path, format="npz")
        assert path.read_bytes()[:4] == b"PK\x03\x04"  # a real zip container
        restored = StatisticsCatalog.load(path).get("tiny")
        assert restored is not None
        assert restored.num_frames == tiny_stats.num_frames
        assert set(restored.classes) == set(tiny_stats.classes)
        for name in tiny_stats.classes:
            assert restored.classes[name] == tiny_stats.classes[name]
        assert restored.event_rate({"car": 1}) == tiny_stats.event_rate({"car": 1})
        assert restored.range_event_rate({"car": 1}, 0, 100) == (
            tiny_stats.range_event_rate({"car": 1}, 0, 100)
        )

    def test_load_sniffs_format_regardless_of_extension(
        self, tiny_engine, tmp_path
    ):
        # ``load`` reads the leading bytes, not the filename: a binary
        # catalog saved under a ``.json`` name still loads.
        path = tmp_path / "catalog.json"
        tiny_engine.catalog.save(path, format="npz")
        assert StatisticsCatalog.load(path).names() == ["tiny"]

    def test_unknown_save_format_rejected(self, tiny_engine, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            tiny_engine.catalog.save(tmp_path / "catalog.xml", format="xml")

    def test_foreign_npz_rejected_typed(self, tmp_path):
        from repro.errors import ConfigurationError

        path = tmp_path / "other.npz"
        with open(path, "wb") as handle:
            np.savez(handle, values=np.arange(3))
        with pytest.raises(ConfigurationError):
            StatisticsCatalog.load(path)
