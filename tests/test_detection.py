"""Tests for the simulated object detectors, NMS and the registry."""

import numpy as np
import pytest

from repro.detection.base import Detection
from repro.detection.nms import non_max_suppression
from repro.detection.registry import default_registry
from repro.detection.simulated import DetectorNoiseModel, SimulatedDetector
from repro.metrics.runtime import RuntimeLedger
from repro.video.geometry import BoundingBox


class TestSimulatedDetector:
    def test_detection_is_deterministic(self, tiny_video, detector):
        a = detector.detect(tiny_video, 25)
        b = detector.detect(tiny_video, 25)
        assert a.count() == b.count()
        assert [d.object_class for d in a.detections] == [
            d.object_class for d in b.detections
        ]

    def test_different_detector_seeds_can_differ(self, tiny_video):
        counts_a = []
        counts_b = []
        det_a = SimulatedDetector.mask_rcnn(seed=1)
        det_b = SimulatedDetector.mask_rcnn(seed=2)
        for frame in range(0, tiny_video.num_frames, 10):
            counts_a.append(det_a.detect(tiny_video, frame).count())
            counts_b.append(det_b.detect(tiny_video, frame).count())
        # Identical noise streams for different seeds would be a bug; the
        # totals may coincide but per-frame sequences should not all match.
        assert counts_a != counts_b or sum(counts_a) == 0

    def test_charges_ledger(self, tiny_video, detector):
        ledger = RuntimeLedger()
        detector.detect(tiny_video, 0, ledger)
        assert ledger.call_count(detector.cost.name) == 1
        assert ledger.total_seconds == pytest.approx(detector.cost.seconds_per_call)

    def test_counts_track_ground_truth(self, tiny_video, detector):
        """Detected counts should correlate strongly with ground truth."""
        truth = tiny_video.class_counts("car").astype(float)
        detected = np.array(
            [
                detector.detect(tiny_video, frame).count("car")
                for frame in range(tiny_video.num_frames)
            ],
            dtype=float,
        )
        if truth.std() == 0:
            pytest.skip("tiny video has constant car count")
        correlation = np.corrcoef(truth, detected)[0, 1]
        assert correlation > 0.8

    def test_boxes_within_frame(self, tiny_video, detector):
        for frame in range(0, tiny_video.num_frames, 37):
            result = detector.detect(tiny_video, frame)
            for det in result.detections:
                assert 0.0 <= det.box.x_min <= det.box.x_max <= tiny_video.spec.width
                assert 0.0 <= det.box.y_min <= det.box.y_max <= tiny_video.spec.height

    def test_confidences_in_range(self, tiny_video, detector):
        for frame in range(0, tiny_video.num_frames, 41):
            for det in detector.detect(tiny_video, frame).detections:
                assert 0.0 < det.confidence < 1.0

    def test_confidence_threshold_filters(self, tiny_video):
        permissive = SimulatedDetector.mask_rcnn(confidence_threshold=0.0)
        strict = SimulatedDetector.mask_rcnn(confidence_threshold=0.95)
        permissive_total = sum(
            permissive.detect(tiny_video, f).count() for f in range(0, 200, 5)
        )
        strict_total = sum(
            strict.detect(tiny_video, f).count() for f in range(0, 200, 5)
        )
        assert strict_total <= permissive_total

    def test_supported_classes_restriction(self, tiny_video):
        detector = SimulatedDetector(
            name="cars_only",
            cost=SimulatedDetector.mask_rcnn().cost,
            supported={"car"},
            noise=DetectorNoiseModel(false_positive_rate=0.0),
        )
        for frame in range(0, tiny_video.num_frames, 23):
            for det in detector.detect(tiny_video, frame).detections:
                assert det.object_class == "car"

    def test_yolo_is_cheaper_and_sloppier_than_mask_rcnn(self, tiny_video):
        mask = SimulatedDetector.mask_rcnn(confidence_threshold=0.0)
        yolo = SimulatedDetector.yolov2(confidence_threshold=0.0)
        assert yolo.cost.seconds_per_call < mask.cost.seconds_per_call
        assert yolo.noise.max_miss_probability > mask.noise.max_miss_probability

    def test_detect_many(self, tiny_video, detector):
        ledger = RuntimeLedger()
        results = detector.detect_many(tiny_video, [0, 1, 2], ledger)
        assert len(results) == 3
        assert ledger.call_count(detector.cost.name) == 3

    def test_detection_result_helpers(self, tiny_video, detector):
        result = detector.detect(tiny_video, 0)
        assert result.count() == len(result.detections)
        assert result.count("car") == len(result.of_class("car"))


class TestNonMaxSuppression:
    def _detection(self, x, confidence, object_class="car"):
        return Detection(
            frame_index=0,
            timestamp=0.0,
            object_class=object_class,
            box=BoundingBox(x, 0.0, x + 10.0, 10.0),
            confidence=confidence,
        )

    def test_keeps_highest_confidence(self):
        a = self._detection(0.0, 0.9)
        b = self._detection(1.0, 0.5)  # heavy overlap with a
        kept = non_max_suppression([a, b], iou_threshold=0.5)
        assert kept == [a]

    def test_keeps_non_overlapping(self):
        a = self._detection(0.0, 0.9)
        b = self._detection(100.0, 0.5)
        assert len(non_max_suppression([a, b])) == 2

    def test_different_classes_never_suppress(self):
        a = self._detection(0.0, 0.9, "car")
        b = self._detection(1.0, 0.5, "bus")
        assert len(non_max_suppression([a, b], iou_threshold=0.1)) == 2

    def test_empty_input(self):
        assert non_max_suppression([]) == []

    def test_invalid_threshold_raises(self):
        with pytest.raises(ValueError):
            non_max_suppression([], iou_threshold=1.5)

    def test_result_sorted_by_confidence(self):
        detections = [self._detection(i * 100.0, c) for i, c in enumerate([0.3, 0.9, 0.6])]
        kept = non_max_suppression(detections)
        confidences = [d.confidence for d in kept]
        assert confidences == sorted(confidences, reverse=True)


class TestDetectorRegistry:
    def test_default_registry_has_paper_detectors(self):
        registry = default_registry()
        assert set(registry.names()) == {"mask_rcnn", "fgfa", "yolov2"}

    def test_create(self):
        registry = default_registry()
        detector = registry.create("mask_rcnn", confidence_threshold=0.5)
        assert detector.name == "mask_rcnn"
        assert detector.confidence_threshold == 0.5

    def test_unknown_detector_raises(self):
        with pytest.raises(KeyError):
            default_registry().create("ssd")

    def test_register_custom(self, detector):
        registry = default_registry()
        registry.register("custom", lambda: detector)
        assert "custom" in registry
        assert registry.create("custom") is detector
