"""Tests for the session-based query API: prepare once, execute many."""

import numpy as np
import pytest

import repro.api.session as session_module
from repro.api import Q, FCOUNT, PreparedQuery, QueryHints
from repro.core.config import BlazeItConfig
from repro.core.engine import BlazeIt
from repro.core.results import AggregateResult, PlanExplanation
from repro.errors import QueryParameterError

AGG_QUERY = (
    "SELECT FCOUNT(*) FROM tiny WHERE class = 'car' "
    "ERROR WITHIN 0.1 AT CONFIDENCE 95%"
)


@pytest.fixture(scope="module")
def aqp_engine(tiny_video, detector, fast_training_config):
    """An engine forced onto plain AQP (no labeled set is ever usable)."""
    engine = BlazeIt(
        detector=detector,
        config=BlazeItConfig(
            training=fast_training_config,
            min_training_positives=10**6,
            seed=123,
        ),
    )
    engine.register_video("tiny", test_video=tiny_video)
    engine.record_test_day("tiny")
    return engine


class TestPreparedQuery:
    def test_execute_many_parses_and_plans_exactly_once(self, aqp_engine, monkeypatch):
        """50 executions of one prepared aggregate: one parse, one plan."""
        parse_calls = []
        real_parse = session_module.parse
        monkeypatch.setattr(
            session_module,
            "parse",
            lambda text: parse_calls.append(text) or real_parse(text),
        )
        plan_calls = []
        real_plan = aqp_engine.optimizer.plan
        monkeypatch.setattr(
            aqp_engine.optimizer,
            "plan",
            lambda spec, **kw: plan_calls.append(spec) or real_plan(spec, **kw),
        )

        session = aqp_engine.session()
        prepared = session.prepare(AGG_QUERY)
        plan_before = prepared.plan
        results = prepared.execute_many([{} for _ in range(50)])

        assert len(results) == 50
        assert all(isinstance(r, AggregateResult) for r in results)
        assert len(parse_calls) == 1
        assert len(plan_calls) == 1
        assert prepared.plan is plan_before
        assert session.stats.parses == 1
        assert session.stats.plans == 1
        assert session.stats.executions == 50

    def test_execute_rebinds_runtime_parameters(self, aqp_engine):
        prepared = aqp_engine.session().prepare(AGG_QUERY)
        loose = prepared.execute(error_within=0.5)
        tight = prepared.execute(error_within=0.02)
        # A looser bound needs no more samples than a much tighter one.
        assert loose.samples_used <= tight.samples_used
        # The analyzed spec is restored after every execution.
        assert prepared.spec.error_tolerance == pytest.approx(0.1)

    def test_unknown_parameter_rejected(self, aqp_engine):
        prepared = aqp_engine.session().prepare(AGG_QUERY)
        with pytest.raises(QueryParameterError, match="limit"):
            prepared.execute(limit=5)
        # And the message lists what *is* bindable for the query class.
        with pytest.raises(QueryParameterError, match="error_within"):
            prepared.execute(nope=1)

    def test_invalid_parameter_values_rejected(self, aqp_engine, tiny_engine):
        prepared = aqp_engine.session().prepare(AGG_QUERY)
        with pytest.raises(QueryParameterError, match="positive"):
            prepared.execute(error_within=-0.5)
        with pytest.raises(QueryParameterError, match="number"):
            prepared.execute(error_within="lots")
        with pytest.raises(QueryParameterError, match="confidence"):
            prepared.execute(confidence=150)
        assert prepared.spec.error_tolerance == pytest.approx(0.1)
        scrub = tiny_engine.session().prepare(
            "SELECT timestamp FROM tiny GROUP BY timestamp "
            "HAVING SUM(class='car') >= 2 LIMIT 3"
        )
        with pytest.raises(QueryParameterError, match=">= 1"):
            scrub.execute(limit=0)

    def test_confidence_percent_normalized_like_builder(self, aqp_engine):
        prepared = aqp_engine.session().prepare(AGG_QUERY)
        as_percent = prepared.execute(confidence=95, rng=np.random.default_rng(3))
        as_fraction = prepared.execute(confidence=0.95, rng=np.random.default_rng(3))
        assert as_percent.value == pytest.approx(as_fraction.value)

    def test_exact_queries_bind_nothing(self, tiny_engine):
        prepared = tiny_engine.session().prepare("SELECT timestamp FROM tiny")
        with pytest.raises(QueryParameterError, match="none"):
            prepared.execute(limit=3)

    def test_scrubbing_limit_rebinds(self, tiny_engine):
        prepared = tiny_engine.session().prepare(
            "SELECT timestamp FROM tiny GROUP BY timestamp "
            "HAVING SUM(class='car') >= 2 LIMIT 3"
        )
        small = prepared.execute(limit=1)
        assert len(small.frames) <= 1
        assert prepared.spec.limit == 3

    def test_explain_is_structured(self, tiny_engine):
        prepared = tiny_engine.session().prepare(AGG_QUERY)
        explanation = prepared.explain()
        assert isinstance(explanation, PlanExplanation)
        assert explanation.kind == "aggregate"
        assert "car" in explanation.plan_summary
        # The one-line str() form matches the historical engine.explain().
        assert str(explanation) == tiny_engine.explain(AGG_QUERY)
        assert explanation.estimated_detector_calls > 0
        assert "SpecializedInference" in explanation.operators.flatten()
        assert "estimated detector calls" in explanation.render()


class TestSessionRngStreams:
    def test_consecutive_executions_draw_different_samples(self, aqp_engine):
        session = aqp_engine.session()
        first = session.execute(AGG_QUERY)
        second = session.execute(AGG_QUERY)
        # Distinct RNG streams: the two AQP runs sample different frames.
        assert (first.value, first.samples_used) != (second.value, second.samples_used)

    def test_runs_reproducible_under_fixed_engine_seed(
        self, tiny_video, detector, fast_training_config
    ):
        def run():
            engine = BlazeIt(
                detector=detector,
                config=BlazeItConfig(
                    training=fast_training_config,
                    min_training_positives=10**6,
                    seed=77,
                ),
            )
            engine.register_video("tiny", test_video=tiny_video)
            engine.record_test_day("tiny")
            session = engine.session()
            return [session.execute(AGG_QUERY).value for _ in range(3)]

        first, second = run(), run()
        assert first == second
        assert len(set(first)) > 1  # ...while the draws within a run differ

    def test_explicit_rng_still_deterministic(self, aqp_engine):
        prepared = aqp_engine.session().prepare(AGG_QUERY)
        a = prepared.execute(rng=np.random.default_rng(5))
        b = prepared.execute(rng=np.random.default_rng(5))
        assert a.value == pytest.approx(b.value)
        assert a.samples_used == b.samples_used


class TestSessionCaching:
    def test_execute_reuses_prepared_queries(self, aqp_engine):
        session = aqp_engine.session()
        session.execute(AGG_QUERY)
        session.execute(AGG_QUERY)
        session.execute(AGG_QUERY)
        assert session.stats.parses == 1
        assert session.stats.plans == 1
        assert session.stats.prepared_cache_hits == 2

    def test_distinct_hints_get_distinct_plans(self, tiny_engine):
        session = tiny_engine.session()
        text = "SELECT * FROM tiny WHERE class = 'bus' AND redness(content) >= 17.5"
        session.execute(text)
        session.execute(text, hints=QueryHints(selection_filter_classes=frozenset()))
        assert session.stats.plans == 2
        assert session.stats.prepared_cache_hits == 0

    def test_execution_context_shared_within_session(self, tiny_engine):
        session = tiny_engine.session()
        assert session._context_for("tiny") is session._context_for("tiny")
        # ...but the engine hands out a fresh context (and RNG stream) per call.
        assert tiny_engine.execution_context("tiny") is not tiny_engine.execution_context(
            "tiny"
        )

    def test_close_drops_caches(self, tiny_engine):
        with tiny_engine.session() as session:
            session.execute("SELECT timestamp FROM tiny")
            assert session._prepared
        assert not session._prepared
        assert not session._contexts


class TestSessionInputs:
    def test_prepare_accepts_builder_and_text(self, tiny_engine):
        session = tiny_engine.session()
        from_text = session.prepare(AGG_QUERY)
        from_builder = session.prepare(
            Q.select(FCOUNT()).from_("tiny").where(cls="car")
            .error_within(0.1).confidence(0.95)
        )
        assert from_builder.spec == from_text.spec

    def test_session_default_video_fills_missing_from(self, tiny_engine):
        session = tiny_engine.session(video="tiny")
        prepared = session.prepare(Q.select(FCOUNT()).where(cls="car").error_within(0.1))
        assert prepared.spec.video == "tiny"
        result = prepared.execute()
        assert isinstance(result, AggregateResult)

    def test_execute_accepts_builder_without_from(self, tiny_engine):
        session = tiny_engine.session(video="tiny")
        builder = Q.select(FCOUNT()).where(cls="car").error_within(0.1)
        result = session.execute(builder)
        assert isinstance(result, AggregateResult)
        # The cached plan is reused on the second execution.
        session.execute(builder)
        assert session.stats.prepared_cache_hits == 1

    def test_execute_compiles_builder_once_per_call(self, tiny_engine, monkeypatch):
        session = tiny_engine.session(video="tiny")
        builder = Q.select(FCOUNT()).where(cls="car").error_within(0.1).from_("tiny")
        builds = []
        real_build = type(builder).build
        monkeypatch.setattr(
            type(builder), "build", lambda b: builds.append(1) or real_build(b)
        )
        session.execute(builder)
        session.execute(builder)
        assert len(builds) == 2  # once per call (cache key), never twice per call

    def test_prepare_returns_prepared_query(self, tiny_engine):
        prepared = tiny_engine.session().prepare("SELECT timestamp FROM tiny")
        assert isinstance(prepared, PreparedQuery)
        assert "PreparedQuery" in repr(prepared)


class TestCompatibilityWrapper:
    def test_one_shot_query_unchanged(self, tiny_engine):
        result = tiny_engine.query(AGG_QUERY)
        assert isinstance(result, AggregateResult)

    def test_engine_explain_still_a_string(self, tiny_engine):
        explanation = tiny_engine.explain(AGG_QUERY)
        assert isinstance(explanation, str)
        assert "aggregate" in explanation

    def test_engine_explain_query_structured(self, tiny_engine):
        explanation = tiny_engine.explain_query(AGG_QUERY)
        assert isinstance(explanation, PlanExplanation)
        assert explanation.kind == "aggregate"
