"""Tests for the count / binary / multi-class specialized models."""

import numpy as np
import pytest

from repro.metrics.runtime import RuntimeLedger
from repro.specialization.binary_model import BinaryPresenceModel
from repro.specialization.count_model import CountSpecializedModel, select_num_classes
from repro.specialization.multiclass import MultiClassCountModel


class TestSelectNumClasses:
    def test_one_percent_rule(self):
        # Out of 1000 frames: 0 appears 88.4%, 1 appears 10%, 2 appears 1.1%
        # (qualifies), 3 appears 0.5% (does not qualify).
        counts = np.concatenate(
            [np.zeros(884), np.ones(100), np.full(11, 2), np.full(5, 3)]
        ).astype(int)
        assert select_num_classes(counts) == 3

    def test_minimum_two_classes(self):
        assert select_num_classes(np.zeros(100, dtype=int)) == 2

    def test_empty_raises(self):
        from repro.errors import InsufficientTrainingDataError

        with pytest.raises(InsufficientTrainingDataError):
            select_num_classes(np.array([], dtype=int))

    def test_all_high_counts(self):
        counts = np.full(100, 4)
        assert select_num_classes(counts) == 5


class TestCountSpecializedModel:
    @pytest.fixture(scope="class")
    def trained_model(self, tiny_labeled_set, fast_training_config):
        model = CountSpecializedModel(
            "car", training_config=fast_training_config, seed=0
        )
        model.fit(tiny_labeled_set.train_features, tiny_labeled_set.train_counts("car"))
        return model

    def test_is_trained(self, trained_model):
        assert trained_model.is_trained
        assert trained_model.num_classes >= 2

    def test_untrained_model_raises(self):
        model = CountSpecializedModel("car")
        with pytest.raises(RuntimeError):
            model.predict_counts(np.zeros((1, 65)))

    def test_predicted_counts_are_valid_classes(self, trained_model, tiny_labeled_set):
        predictions = trained_model.predict_counts(tiny_labeled_set.heldout_features)
        assert predictions.min() >= 0
        assert predictions.max() < trained_model.num_classes

    def test_predictions_correlate_with_truth(self, trained_model, tiny_labeled_set):
        predictions = trained_model.expected_counts(tiny_labeled_set.heldout_features)
        truth = tiny_labeled_set.heldout_counts("car").astype(float)
        if truth.std() == 0:
            pytest.skip("held-out day has constant count")
        assert np.corrcoef(predictions, truth)[0, 1] > 0.3

    def test_expected_counts_bounded_by_classes(self, trained_model, tiny_labeled_set):
        expected = trained_model.expected_counts(tiny_labeled_set.heldout_features)
        assert np.all(expected >= 0.0)
        assert np.all(expected <= trained_model.num_classes - 1 + 1e-9)

    def test_prob_at_least_monotone_in_threshold(self, trained_model, tiny_labeled_set):
        features = tiny_labeled_set.heldout_features[:50]
        p1 = trained_model.prob_at_least(features, 1)
        p2 = trained_model.prob_at_least(features, 2)
        assert np.all(p2 <= p1 + 1e-12)

    def test_prob_at_least_zero_is_one(self, trained_model, tiny_labeled_set):
        probs = trained_model.prob_at_least(tiny_labeled_set.heldout_features[:10], 0)
        np.testing.assert_allclose(probs, 1.0)

    def test_prob_at_least_negative_raises(self, trained_model, tiny_labeled_set):
        with pytest.raises(ValueError):
            trained_model.prob_at_least(tiny_labeled_set.heldout_features[:5], -1)

    def test_inference_charges_ledger(self, trained_model, tiny_labeled_set):
        ledger = RuntimeLedger()
        trained_model.predict_counts(tiny_labeled_set.heldout_features[:25], ledger)
        assert ledger.call_count("specialized_nn") == 25

    def test_mean_count_close_to_truth(self, trained_model, tiny_labeled_set):
        mean = trained_model.mean_count(tiny_labeled_set.heldout_features)
        truth = float(tiny_labeled_set.heldout_counts("car").mean())
        assert abs(mean - truth) < 0.5

    def test_absolute_errors_shape(self, trained_model, tiny_labeled_set):
        errors = trained_model.absolute_errors(
            tiny_labeled_set.heldout_features, tiny_labeled_set.heldout_counts("car")
        )
        assert errors.shape == (tiny_labeled_set.heldout_video.num_frames,)
        assert np.all(errors >= 0)

    def test_mlp_variant_trains(self, tiny_labeled_set, fast_training_config):
        model = CountSpecializedModel(
            "car", model_type="mlp", training_config=fast_training_config
        )
        model.fit(tiny_labeled_set.train_features, tiny_labeled_set.train_counts("car"))
        assert model.is_trained

    def test_invalid_model_type(self):
        with pytest.raises(ValueError):
            CountSpecializedModel("car", model_type="transformer")

    def test_length_mismatch_raises(self, fast_training_config):
        model = CountSpecializedModel("car", training_config=fast_training_config)
        with pytest.raises(ValueError):
            model.fit(np.zeros((10, 5)), np.zeros(9, dtype=int))


class TestBinaryPresenceModel:
    @pytest.fixture(scope="class")
    def trained(self, tiny_labeled_set, fast_training_config):
        model = BinaryPresenceModel("car", training_config=fast_training_config)
        model.fit(
            tiny_labeled_set.train_features, tiny_labeled_set.train_presence("car")
        )
        return model

    def test_probabilities_in_range(self, trained, tiny_labeled_set):
        probs = trained.predict_proba_present(tiny_labeled_set.heldout_features)
        assert np.all(probs >= 0.0)
        assert np.all(probs <= 1.0)

    def test_predictions_separate_present_from_absent(self, trained, tiny_labeled_set):
        probs = trained.predict_proba_present(tiny_labeled_set.heldout_features)
        truth = tiny_labeled_set.heldout_presence("car")
        if truth.all() or not truth.any():
            pytest.skip("held-out day has constant presence")
        assert probs[truth].mean() > probs[~truth].mean()

    def test_predict_present_threshold(self, trained, tiny_labeled_set):
        features = tiny_labeled_set.heldout_features[:20]
        loose = trained.predict_present(features, threshold=0.0)
        strict = trained.predict_present(features, threshold=1.0)
        assert loose.sum() >= strict.sum()

    def test_untrained_raises(self):
        with pytest.raises(RuntimeError):
            BinaryPresenceModel("car").predict_proba_present(np.zeros((1, 65)))

    def test_invalid_model_type(self):
        with pytest.raises(ValueError):
            BinaryPresenceModel("car", model_type="resnet152")


class TestMultiClassCountModel:
    @pytest.fixture(scope="class")
    def trained(self, tiny_labeled_set, fast_training_config):
        model = MultiClassCountModel(
            ["car", "bus"], training_config=fast_training_config
        )
        model.fit(
            tiny_labeled_set.train_features,
            {
                "car": tiny_labeled_set.train_counts("car"),
                "bus": tiny_labeled_set.train_counts("bus"),
            },
        )
        return model

    def test_is_trained(self, trained):
        assert trained.is_trained

    def test_empty_classes_rejected(self):
        with pytest.raises(ValueError):
            MultiClassCountModel([])

    def test_missing_counts_raises(self, tiny_labeled_set, fast_training_config):
        model = MultiClassCountModel(["car", "bus"], training_config=fast_training_config)
        with pytest.raises(KeyError):
            model.fit(
                tiny_labeled_set.train_features,
                {"car": tiny_labeled_set.train_counts("car")},
            )

    def test_unknown_head_raises(self, trained):
        with pytest.raises(KeyError):
            trained.head("boat")

    def test_conjunction_score_shape(self, trained, tiny_labeled_set):
        scores = trained.score_conjunction(
            tiny_labeled_set.heldout_features, {"car": 1, "bus": 1}
        )
        assert scores.shape == (tiny_labeled_set.heldout_video.num_frames,)

    def test_conjunction_score_empty_raises(self, trained, tiny_labeled_set):
        with pytest.raises(ValueError):
            trained.score_conjunction(tiny_labeled_set.heldout_features, {})

    def test_conjunction_score_ranks_positive_frames_higher(
        self, trained, tiny_labeled_set
    ):
        """Frames that truly satisfy the conjunction should score above average."""
        features = tiny_labeled_set.heldout_features
        scores = trained.score_conjunction(features, {"car": 1, "bus": 1})
        car = tiny_labeled_set.heldout_counts("car") >= 1
        bus = tiny_labeled_set.heldout_counts("bus") >= 1
        positives = car & bus
        if positives.sum() < 3:
            pytest.skip("too few joint events on the tiny held-out day")
        assert scores[positives].mean() > scores[~positives].mean()

    def test_predict_counts_per_class(self, trained, tiny_labeled_set):
        counts = trained.predict_counts(tiny_labeled_set.heldout_features[:10])
        assert set(counts) == {"car", "bus"}
        assert all(v.shape == (10,) for v in counts.values())
