"""Service-layer tests: manager, scheduler, wire protocol, cancellation races.

Three layers are exercised:

- **Manager** (no sockets): admission control, quota accounting, fair
  scheduling, per-session serialization.
- **Wire** (real asyncio server on an ephemeral port + the stdlib client):
  results byte-identical to in-process execution, SSE streaming with
  resume, typed HTTP rejections.
- **Cancellation races** (the PR's satellite): N concurrent queries over
  the service, half disconnected mid-stream; after every disconnected
  query reaches its terminal state, the detector's raw computation count
  must equal the sum of every terminal ledger — i.e. not one detector call
  happened after a disconnect — and the surviving queries' results must be
  byte-identical to unperturbed in-process runs.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api.hints import QueryHints
from repro.core.config import BlazeItConfig
from repro.core.engine import BlazeIt
from repro.detection.simulated import SimulatedDetector
from repro.service.app import ServiceThread
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.manager import (
    CANCELLED,
    COMPLETED,
    QUEUED,
    AdmissionRejectedError,
    EventLog,
    NotFoundError,
    QuotaExceededError,
    ServiceConfig,
    ServiceManager,
    TenantQuota,
)
from repro.service.protocol import result_fingerprint
from repro.video.scenarios import generate_scenario

FRAMES = 200
SCENARIO = "rialto"


def scenario_class() -> str:
    return generate_scenario(SCENARIO, "test", 32).object_class_names[0]


def queries_for(cls: str) -> list[str]:
    return [
        f"SELECT FCOUNT(*) FROM v WHERE class = '{cls}'",
        f"SELECT * FROM v WHERE class = '{cls}'",
        "SELECT * FROM v",
        f"SELECT timestamp FROM v GROUP BY timestamp "
        f"HAVING COUNT(class = '{cls}') >= 1 LIMIT 3 GAP 10",
    ]


class _CountingDetector(SimulatedDetector):
    """Mask R-CNN simulation counting raw detect computations, with latency."""

    def __init__(self, seconds_per_frame: float = 0.0) -> None:
        base = SimulatedDetector.mask_rcnn()
        super().__init__(
            name=base.name,
            cost=base.cost,
            noise=base.noise,
            confidence_threshold=base.confidence_threshold,
            supported=base._supported,
            seed=base.seed,
        )
        self.seconds_per_frame = seconds_per_frame
        self.computed = 0
        self._count_lock = threading.Lock()

    def detect(self, video, frame_index, ledger=None):
        with self._count_lock:
            self.computed += 1
        if self.seconds_per_frame:
            time.sleep(self.seconds_per_frame)
        return super().detect(video, frame_index, ledger)

    def _detect_batch(self, video, frame_indices, ledger=None):
        with self._count_lock:
            self.computed += len(frame_indices)
        if self.seconds_per_frame:
            time.sleep(self.seconds_per_frame * len(frame_indices))
        return super()._detect_batch(video, frame_indices, ledger)


def build_engine(
    seed: int = 11, detector: SimulatedDetector | None = None, frames: int = FRAMES
) -> BlazeIt:
    engine = BlazeIt(
        detector=detector or SimulatedDetector.mask_rcnn(),
        config=BlazeItConfig(seed=seed),
    )
    engine.register_video(
        "v", test_video=generate_scenario(SCENARIO, "test", frames)
    )
    return engine


def reference_fingerprints(queries: list[str], seed: int = 11) -> list[str]:
    """One session, queries executed in order — the in-process ground truth."""
    engine = build_engine(seed=seed)
    with engine.session() as session:
        return [
            result_fingerprint(session.prepare(query).execute())
            for query in queries
        ]


# ---------------------------------------------------------------------------------
# Event log
# ---------------------------------------------------------------------------------


class TestEventLog:
    def test_indexing_snapshot_and_wait(self):
        log = EventLog()
        assert log.append({"a": 1}) == 0
        assert log.append({"b": 2}) == 1
        assert log.snapshot() == [{"a": 1}, {"b": 2}]
        assert log.snapshot(1) == [{"b": 2}]
        assert log.wait_for(0, timeout=0.1) == {"a": 1}

    def test_wait_blocks_until_append(self):
        log = EventLog()
        seen = []

        def reader():
            seen.append(log.wait_for(0, timeout=5.0))

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        log.append({"x": 9})
        thread.join(5.0)
        assert seen == [{"x": 9}]

    def test_close_wakes_waiters_with_none(self):
        log = EventLog()
        result = ["sentinel"]

        def reader():
            result[0] = log.wait_for(0, timeout=5.0)

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        log.close()
        thread.join(5.0)
        assert result[0] is None
        assert log.closed

    def test_timeout_returns_none_while_open(self):
        log = EventLog()
        assert log.wait_for(0, timeout=0.05) is None
        assert not log.closed


# ---------------------------------------------------------------------------------
# Manager: identity, quotas, admission
# ---------------------------------------------------------------------------------


class TestResultIdentityProperty:
    """The reproducibility invariant the analyzer exists to protect, as one
    property: for every query class the result fingerprint is a pure function
    of (engine seed, query) — neither the parallelism level (1 vs 4) nor the
    execution path (direct session vs service manager) may change a byte.
    """

    KINDS = ["aggregate", "selection", "exact", "scrubbing"]

    @pytest.mark.parametrize("kind", KINDS)
    def test_fingerprint_pure_in_seed_and_query(self, kind):
        query = queries_for(scenario_class())[self.KINDS.index(kind)]
        fingerprints: dict[str, str] = {}
        for parallelism in (1, 4):
            hints = QueryHints(parallelism=parallelism)

            engine = build_engine(seed=11)
            with engine.session() as session:
                result = session.prepare(query, hints=hints).execute()
            fingerprints[f"session/p{parallelism}"] = result_fingerprint(result)

            manager = ServiceManager(build_engine(seed=11), ServiceConfig(slots=4))
            try:
                manager.create_tenant("prop")
                session_id = manager.create_session("prop")
                record = manager.submit(session_id, query=query, hints=hints)
                assert record.done.wait(60.0)
                assert record.state == COMPLETED, record.error
                fingerprints[f"manager/p{parallelism}"] = result_fingerprint(
                    record.result
                )
            finally:
                manager.shutdown()

        assert len(set(fingerprints.values())) == 1, fingerprints


class TestManagerExecution:
    def test_all_query_classes_byte_identical_to_in_process(self):
        cls = scenario_class()
        queries = queries_for(cls)
        refs = reference_fingerprints(queries)
        manager = ServiceManager(build_engine(), ServiceConfig(slots=4))
        try:
            manager.create_tenant("acme")
            session_id = manager.create_session("acme")
            for query, ref in zip(queries, refs, strict=True):
                record = manager.submit(session_id, query=query)
                assert record.done.wait(60.0)
                assert record.state == COMPLETED, record.error
                assert result_fingerprint(record.result) == ref
        finally:
            manager.shutdown()

    def test_event_log_ends_with_completed(self):
        manager = ServiceManager(build_engine(), ServiceConfig(slots=2))
        try:
            manager.create_tenant("t")
            session_id = manager.create_session("t")
            record = manager.submit(session_id, query="SELECT * FROM v")
            assert record.done.wait(60.0)
            events = record.log.snapshot()
            assert events, "no events logged"
            assert events[-1]["event"] == "completed"
            assert record.log.closed
        finally:
            manager.shutdown()

    def test_unknown_entities_raise_not_found(self):
        manager = ServiceManager(build_engine())
        try:
            manager.create_tenant("t")
            with pytest.raises(NotFoundError):
                manager.create_session("ghost")
            with pytest.raises(NotFoundError):
                manager.prepare("nope", "SELECT * FROM v")
            with pytest.raises(NotFoundError):
                manager.query("q999")
        finally:
            manager.shutdown()


class TestQuotas:
    def test_over_budget_tenant_rejected_others_unaffected(self):
        cls = scenario_class()
        aggregate = queries_for(cls)[0]
        manager = ServiceManager(build_engine(), ServiceConfig(slots=2))
        try:
            manager.create_tenant("small", TenantQuota(max_detector_calls=5))
            manager.create_tenant("big")
            small_session = manager.create_session("small")
            big_session = manager.create_session("big")

            first = manager.submit(small_session, query=aggregate)
            assert first.done.wait(60.0)
            charged = manager.tenant_status("small")["detector_calls_charged"]
            assert charged == first.result.execution_ledger.detector_calls
            assert charged > 5  # admission-time check: first query ran whole

            with pytest.raises(QuotaExceededError) as excinfo:
                manager.submit(small_session, query=aggregate)
            assert excinfo.value.http_status == 429

            # The other tenant is untouched by the rejection.
            other = manager.submit(big_session, query=aggregate)
            assert other.done.wait(60.0)
            assert other.state == COMPLETED
        finally:
            manager.shutdown()

    def test_tenant_concurrency_cap_is_admission_rejection(self):
        detector = _CountingDetector(seconds_per_frame=0.003)
        manager = ServiceManager(
            build_engine(detector=detector), ServiceConfig(slots=4)
        )
        try:
            manager.create_tenant("t", TenantQuota(max_active_queries=1))
            session_id = manager.create_session("t")
            record = manager.submit(session_id, query="SELECT * FROM v")
            with pytest.raises(AdmissionRejectedError) as excinfo:
                manager.submit(session_id, query="SELECT * FROM v")
            assert excinfo.value.http_status == 503
            manager.cancel(record.query_id)
            assert record.done.wait(60.0)
        finally:
            manager.shutdown()

    def test_bounded_queue_rejects_when_full(self):
        detector = _CountingDetector(seconds_per_frame=0.003)
        manager = ServiceManager(
            build_engine(detector=detector),
            ServiceConfig(slots=1, max_queue_depth=1),
        )
        try:
            manager.create_tenant("t")
            first_session = manager.create_session("t")
            second_session = manager.create_session("t")
            third_session = manager.create_session("t")
            running = manager.submit(first_session, query="SELECT * FROM v")
            queued = manager.submit(second_session, query="SELECT * FROM v")
            assert queued.state == QUEUED
            with pytest.raises(AdmissionRejectedError):
                manager.submit(third_session, query="SELECT * FROM v")
            manager.cancel(running.query_id)
            manager.cancel(queued.query_id)
            assert running.done.wait(60.0) and queued.done.wait(60.0)
        finally:
            manager.shutdown()


class TestScheduler:
    def test_per_session_queries_are_serialized(self):
        detector = _CountingDetector(seconds_per_frame=0.002)
        manager = ServiceManager(
            build_engine(detector=detector), ServiceConfig(slots=4)
        )
        try:
            manager.create_tenant("t")
            session_id = manager.create_session("t")
            first = manager.submit(session_id, query="SELECT * FROM v")
            second = manager.submit(session_id, query="SELECT * FROM v")
            deadline = time.monotonic() + 10.0
            while first.state == QUEUED and time.monotonic() < deadline:
                time.sleep(0.005)
            # While the first runs, the second must wait for the session.
            assert first.state == "running"
            assert second.state == QUEUED
            assert first.done.wait(60.0) and second.done.wait(60.0)
            assert first.state == COMPLETED and second.state == COMPLETED
        finally:
            manager.shutdown()

    def test_round_robin_interleaves_tenants(self):
        detector = _CountingDetector(seconds_per_frame=0.002)
        manager = ServiceManager(
            build_engine(detector=detector), ServiceConfig(slots=1)
        )
        order: list[str] = []
        original = manager._drain

        def recording_drain(record):
            order.append(record.tenant_name)
            original(record)

        manager._drain = recording_drain
        manager.scheduler._run = recording_drain
        try:
            manager.create_tenant("a")
            manager.create_tenant("b")
            sessions = {
                "a": [manager.create_session("a") for _ in range(2)],
                "b": [manager.create_session("b") for _ in range(2)],
            }
            records = []
            # Tenant a floods first; b's queries must not all wait behind it.
            for tenant in ("a", "a", "b", "b"):
                session = sessions[tenant].pop(0)
                records.append(manager.submit(session, query="SELECT * FROM v"))
            for record in records:
                assert record.done.wait(60.0)
            assert order == ["a", "b", "a", "b"]
        finally:
            manager.shutdown()

    def test_parallel_hints_consume_slots(self):
        manager = ServiceManager(build_engine(), ServiceConfig(slots=4))
        try:
            manager.create_tenant("t")
            session_id = manager.create_session(
                "t", hints={"parallelism": 4}
            )
            record = manager.submit(session_id, query="SELECT * FROM v")
            assert record.slots == 4
            assert record.done.wait(60.0)
            assert record.state == COMPLETED
        finally:
            manager.shutdown()


# ---------------------------------------------------------------------------------
# Wire: HTTP + SSE against a live server
# ---------------------------------------------------------------------------------


@pytest.fixture()
def live_service():
    manager = ServiceManager(
        build_engine(), ServiceConfig(slots=4, heartbeat_seconds=0.25)
    )
    with ServiceThread(manager) as service:
        yield ServiceClient(service.host, service.port), manager


class TestWire:
    def test_results_byte_identical_over_the_wire(self, live_service):
        client, _ = live_service
        cls = scenario_class()
        queries = queries_for(cls)
        refs = reference_fingerprints(queries)
        client.create_tenant("acme")
        session_id = client.create_session("acme")
        for query, ref in zip(queries, refs, strict=True):
            result = client.execute(session_id, query)
            assert result_fingerprint(result) == ref

    def test_prepare_then_execute_prepared(self, live_service):
        client, _ = live_service
        cls = scenario_class()
        client.create_tenant("t")
        session_id = client.create_session("t")
        info = client.prepare(session_id, queries_for(cls)[0])
        assert info["kind"] == "aggregate"
        assert "plan" in info
        result = client.execute(session_id, prepared_id=info["prepared_id"])
        assert result.kind == "aggregate"

    def test_sse_stream_matches_log_and_resumes(self, live_service):
        client, manager = live_service
        cls = scenario_class()
        client.create_tenant("t")
        session_id = client.create_session("t")
        status = client.submit(session_id, query=queries_for(cls)[3], wait=False)
        query_id = status["query_id"]
        events = list(client.events(query_id))
        assert events
        indices = [index for index, _ in events]
        assert indices == list(range(len(events)))
        assert type(events[-1][1]).__name__ == "Completed"
        # Resume from the middle: identical tail.
        resumed = list(client.events(query_id, start=2))
        assert [index for index, _ in resumed] == indices[2:]
        record = manager.query(query_id)
        assert len(record.log) == len(events)

    def test_typed_errors_over_the_wire(self, live_service):
        client, _ = live_service
        client.create_tenant("small", max_detector_calls=1)
        session_id = client.create_session("small")
        cls = scenario_class()
        client.execute(session_id, queries_for(cls)[0])  # burns the budget
        with pytest.raises(ServiceClientError) as excinfo:
            client.execute(session_id, queries_for(cls)[0])
        assert excinfo.value.status == 429
        assert excinfo.value.code == "quota_exceeded"
        with pytest.raises(ServiceClientError) as not_found:
            client.query_status("q-missing")
        assert not_found.value.status == 404
        # Parse errors are 400s — from a tenant with budget left, so the
        # quota check (which runs first at admission) does not mask them.
        client.create_tenant("fresh")
        fresh_session = client.create_session("fresh")
        with pytest.raises(ServiceClientError) as bad_query:
            client.execute(fresh_session, "SELEKT nonsense")
        assert bad_query.value.status == 400

    def test_delete_cancels_running_query(self):
        detector = _CountingDetector(seconds_per_frame=0.003)
        manager = ServiceManager(
            build_engine(detector=detector),
            ServiceConfig(slots=2, heartbeat_seconds=0.25),
        )
        with ServiceThread(manager) as service:
            client = ServiceClient(service.host, service.port)
            client.create_tenant("t")
            session_id = client.create_session("t")
            status = client.submit(session_id, query="SELECT * FROM v", wait=False)
            query_id = status["query_id"]
            deadline = time.monotonic() + 10.0
            while (
                client.query_status(query_id)["state"] == QUEUED
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            client.cancel(query_id)
            record = manager.query(query_id)
            assert record.done.wait(30.0)
            final = client.query_status(query_id)
            assert final["state"] == CANCELLED
            # Cooperative cancellation still finalises a partial result.
            assert final["stop_reason"] == "cancelled"
            assert "result" in final


# ---------------------------------------------------------------------------------
# Satellite: cancellation-after-disconnect races
# ---------------------------------------------------------------------------------


class TestDisconnectCancellationRaces:
    N_QUERIES = 6  # half get disconnected mid-stream

    def test_disconnect_stops_detector_calls_and_survivors_are_exact(self):
        seed = 23
        detector = _CountingDetector(seconds_per_frame=0.004)
        manager = ServiceManager(
            build_engine(seed=seed, detector=detector),
            ServiceConfig(slots=self.N_QUERIES, heartbeat_seconds=0.25),
        )
        victims = range(0, self.N_QUERIES, 2)
        with ServiceThread(manager) as service:
            client = ServiceClient(service.host, service.port)
            client.create_tenant("t")
            # One session per query: every query runs truly concurrently.
            sessions = [
                client.create_session("t") for _ in range(self.N_QUERIES)
            ]
            query_ids = []
            for session_id in sessions:
                status = client.submit(
                    session_id, query="SELECT * FROM v", wait=False
                )
                query_ids.append(status["query_id"])

            # Disconnect every second client mid-stream: read two events off
            # the SSE wire, then abandon the iterator (closes the socket).
            def disconnect(query_id: str) -> None:
                stream = client.events(query_id)
                for count, _ in enumerate(stream):
                    if count >= 1:
                        break
                stream.close()

            threads = [
                threading.Thread(target=disconnect, args=(query_ids[i],))
                for i in victims
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30.0)

            records = [manager.query(query_id) for query_id in query_ids]
            for record in records:
                assert record.done.wait(60.0), record.query_id

            for i in victims:
                assert records[i].state == CANCELLED, records[i].status()
                assert records[i].result is not None  # partial, well-formed
            survivors = [
                records[i]
                for i in range(self.N_QUERIES)
                if i not in victims
            ]
            for record in survivors:
                assert record.state == COMPLETED, record.status()

            # Not one detector call outside the terminal ledgers: every raw
            # computation the detector ever did is accounted for by a
            # terminal result (partial or complete).  A single detector call
            # after a disconnect would break this equality.
            time.sleep(0.2)  # any runaway worker would land here
            ledger_total = sum(
                record.result.execution_ledger.detector_calls
                for record in records
            )
            assert detector.computed == ledger_total

            # Survivors' ledgers and results are exactly what unperturbed
            # in-process sessions produce: cancelled neighbours changed
            # nothing (RNG ancestry is per session, fixed at creation).
            reference_engine = build_engine(seed=seed)
            reference_sessions = [
                reference_engine.session() for _ in range(self.N_QUERIES)
            ]
            for i, record in enumerate(records):
                if i in victims:
                    continue
                expected = (
                    reference_sessions[i].prepare("SELECT * FROM v").execute()
                )
                assert result_fingerprint(record.result) == result_fingerprint(
                    expected
                )
                assert (
                    record.result.execution_ledger.detector_calls
                    == expected.execution_ledger.detector_calls
                )

    def test_detector_frozen_after_every_query_terminal(self):
        detector = _CountingDetector(seconds_per_frame=0.002)
        manager = ServiceManager(
            build_engine(detector=detector),
            ServiceConfig(slots=4, heartbeat_seconds=0.25),
        )
        try:
            manager.create_tenant("t")
            session_id = manager.create_session("t")
            record = manager.submit(session_id, query="SELECT * FROM v")
            deadline = time.monotonic() + 10.0
            while record.state == QUEUED and time.monotonic() < deadline:
                time.sleep(0.005)
            manager.cancel(record.query_id)
            assert record.done.wait(30.0)
            frozen = detector.computed
            time.sleep(0.25)
            assert detector.computed == frozen
        finally:
            manager.shutdown()
