"""Tests for the FrameQL parser, covering every query shape in the paper."""

import pytest

from repro.errors import FrameQLSyntaxError
from repro.frameql.ast import (
    BinaryOp,
    ColumnRef,
    FunctionCall,
    Literal,
    Star,
    conjuncts,
)
from repro.frameql.parser import parse


class TestBasicParsing:
    def test_select_star(self):
        query = parse("SELECT * FROM taipei")
        assert query.video == "taipei"
        assert len(query.select) == 1
        assert isinstance(query.select[0].expression, Star)

    def test_select_columns(self):
        query = parse("SELECT timestamp, class FROM amsterdam")
        names = [item.expression.name for item in query.select]
        assert names == ["timestamp", "class"]

    def test_select_alias(self):
        query = parse("SELECT timestamp AS t FROM taipei")
        assert query.select[0].alias == "t"

    def test_trailing_semicolon(self):
        assert parse("SELECT * FROM taipei;").video == "taipei"

    def test_empty_query_raises(self):
        with pytest.raises(FrameQLSyntaxError):
            parse("   ")

    def test_missing_from_raises(self):
        with pytest.raises(FrameQLSyntaxError):
            parse("SELECT *")

    def test_trailing_garbage_raises(self):
        with pytest.raises(FrameQLSyntaxError):
            parse("SELECT * FROM taipei banana")

    def test_str_round_trip_reparses(self):
        text = (
            "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
            "ERROR WITHIN 0.1 AT CONFIDENCE 95%"
        )
        query = parse(text)
        reparsed = parse(str(query))
        assert reparsed.video == query.video
        assert reparsed.error_within == query.error_within
        assert reparsed.confidence == query.confidence


class TestPaperFigure3Queries:
    def test_figure_3a_aggregate(self):
        query = parse(
            "SELECT FCOUNT(*) FROM taipei WHERE class = 'car' "
            "ERROR WITHIN 0.1 AT CONFIDENCE 95%"
        )
        call = query.select[0].expression
        assert isinstance(call, FunctionCall)
        assert call.name.upper() == "FCOUNT"
        assert isinstance(call.args[0], Star)
        assert query.error_within == pytest.approx(0.1)
        assert query.confidence == pytest.approx(0.95)

    def test_figure_3b_scrubbing(self):
        query = parse(
            "SELECT timestamp FROM taipei GROUP BY timestamp "
            "HAVING SUM(class='bus')>=1 AND SUM(class='car')>=5 "
            "LIMIT 10 GAP 300"
        )
        assert [c.name for c in query.group_by] == ["timestamp"]
        assert query.limit == 10
        assert query.gap == 300
        having_conjuncts = conjuncts(query.having)
        assert len(having_conjuncts) == 2

    def test_figure_3c_selection(self):
        query = parse(
            "SELECT * FROM taipei WHERE class = 'bus' "
            "AND redness(content) >= 17.5 AND area(mask) > 100000 "
            "GROUP BY trackid HAVING COUNT(*) > 15"
        )
        assert [c.name for c in query.group_by] == ["trackid"]
        where_conjuncts = conjuncts(query.where)
        assert len(where_conjuncts) == 3

    def test_count_distinct(self):
        query = parse("SELECT COUNT(DISTINCT trackid) FROM taipei WHERE class = 'car'")
        call = query.select[0].expression
        assert call.distinct
        assert isinstance(call.args[0], ColumnRef)

    def test_error_without_at(self):
        query = parse(
            "SELECT COUNT(*) FROM taipei WHERE class = 'car' "
            "ERROR WITHIN 0.1 CONFIDENCE 95%"
        )
        assert query.error_within == pytest.approx(0.1)
        assert query.confidence == pytest.approx(0.95)

    def test_fnr_fpr_query(self):
        query = parse(
            "SELECT timestamp FROM taipei WHERE class = 'car' "
            "FNR WITHIN 0.01 FPR WITHIN 0.02"
        )
        assert query.fnr_within == pytest.approx(0.01)
        assert query.fpr_within == pytest.approx(0.02)

    def test_udf_equality_query(self):
        query = parse(
            "SELECT * FROM taipei WHERE class = 'car' AND classify(content) = 'sedan'"
        )
        predicates = conjuncts(query.where)
        assert len(predicates) == 2
        udf_predicate = predicates[1]
        assert isinstance(udf_predicate.left, FunctionCall)
        assert udf_predicate.right == Literal("sedan")


class TestExpressions:
    def test_comparison_operators(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            query = parse(f"SELECT * FROM v WHERE timestamp {op} 5")
            assert query.where.op == op

    def test_diamond_normalised_to_bang_equals(self):
        query = parse("SELECT * FROM v WHERE timestamp <> 5")
        assert query.where.op == "!="

    def test_and_or_precedence(self):
        query = parse("SELECT * FROM v WHERE timestamp > 1 AND timestamp < 5 OR class = 'car'")
        assert query.where.op == "OR"
        assert query.where.left.op == "AND"

    def test_not_operator(self):
        query = parse("SELECT * FROM v WHERE NOT class = 'car'")
        assert query.where.op == "NOT"

    def test_parentheses_override_precedence(self):
        query = parse(
            "SELECT * FROM v WHERE timestamp > 1 AND (timestamp < 5 OR class = 'car')"
        )
        assert query.where.op == "AND"
        assert query.where.right.op == "OR"

    def test_arithmetic(self):
        query = parse("SELECT * FROM v WHERE timestamp > 10 + 5 * 2")
        comparison = query.where
        assert isinstance(comparison, BinaryOp)
        addition = comparison.right
        assert addition.op == "+"
        assert addition.right.op == "*"

    def test_unary_minus(self):
        query = parse("SELECT * FROM v WHERE timestamp > -5")
        assert query.where.right.op == "-"

    def test_integer_vs_float_literals(self):
        query = parse("SELECT * FROM v WHERE timestamp > 5 AND redness(content) > 5.5")
        predicates = conjuncts(query.where)
        assert predicates[0].right == Literal(5)
        assert predicates[1].right == Literal(5.5)

    def test_function_without_args(self):
        query = parse("SELECT * FROM v WHERE now() > 5")
        assert isinstance(query.where.left, FunctionCall)
        assert query.where.left.args == ()


class TestClauses:
    def test_limit_without_gap(self):
        query = parse("SELECT timestamp FROM v GROUP BY timestamp HAVING SUM(class='car')>=1 LIMIT 5")
        assert query.limit == 5
        assert query.gap is None

    def test_gap_alone(self):
        query = parse("SELECT timestamp FROM v GAP 100")
        assert query.gap == 100

    def test_non_integer_limit_raises(self):
        with pytest.raises(FrameQLSyntaxError):
            parse("SELECT timestamp FROM v LIMIT 2.5")

    def test_confidence_without_percent_sign(self):
        query = parse("SELECT FCOUNT(*) FROM v ERROR WITHIN 0.1 AT CONFIDENCE 95")
        assert query.confidence == pytest.approx(0.95)

    def test_confidence_as_fraction(self):
        query = parse("SELECT FCOUNT(*) FROM v ERROR WITHIN 0.1 AT CONFIDENCE 0.9")
        assert query.confidence == pytest.approx(0.9)

    def test_clauses_any_order(self):
        query = parse(
            "SELECT FCOUNT(*) FROM v ERROR WITHIN 0.05 WHERE class = 'car' "
            "AT CONFIDENCE 99%"
        )
        assert query.error_within == pytest.approx(0.05)
        assert query.where is not None
