"""Tests for the video store and the decode cost model."""

import pytest

from repro.errors import UnknownVideoError
from repro.metrics.runtime import RuntimeLedger
from repro.video.codec import DecodeCostModel
from repro.video.store import VideoStore
from repro.video.synthetic import FEATURE_DIM


class TestVideoStore:
    def test_register_and_get(self, tiny_video):
        store = VideoStore()
        store.register("tiny", tiny_video)
        assert "tiny" in store
        assert store.get("tiny") is tiny_video

    def test_unknown_video_raises(self):
        store = VideoStore()
        with pytest.raises(UnknownVideoError):
            store.get("missing")

    def test_unregister(self, tiny_video):
        store = VideoStore()
        store.register("tiny", tiny_video)
        store.unregister("tiny")
        assert "tiny" not in store

    def test_unregister_missing_is_noop(self):
        VideoStore().unregister("nothing")

    def test_names_sorted(self, tiny_video):
        store = VideoStore()
        store.register("b", tiny_video)
        store.register("a", tiny_video)
        assert store.names() == ["a", "b"]

    def test_num_frames(self, tiny_video):
        store = VideoStore()
        store.register("tiny", tiny_video)
        assert store.num_frames("tiny") == tiny_video.num_frames

    def test_get_frame_charges_decode(self, tiny_video):
        store = VideoStore()
        store.register("tiny", tiny_video)
        ledger = RuntimeLedger()
        frame = store.get_frame("tiny", 3, ledger=ledger)
        assert frame.index == 3
        assert ledger.call_count("video_decode") == 1

    def test_frame_features_shape_and_decode_charge(self, tiny_video):
        store = VideoStore()
        store.register("tiny", tiny_video)
        ledger = RuntimeLedger()
        features = store.frame_features("tiny", [0, 1, 2, 3], ledger=ledger)
        assert features.shape == (4, FEATURE_DIM)
        # Four frames were decoded, one charge per frame.
        assert ledger.call_count("video_decode") == 4
        assert ledger.seconds_for("video_decode") > 0


class TestDecodeCostModel:
    def test_cost_scales_with_resolution(self):
        model = DecodeCostModel()
        small = model.cost_for_resolution(1280, 720)
        large = model.cost_for_resolution(3840, 2160)
        assert large.seconds_per_call == pytest.approx(small.seconds_per_call * 9)

    def test_charge_decode(self):
        model = DecodeCostModel()
        ledger = RuntimeLedger()
        seconds = model.charge_decode(ledger, 1280, 720, 300)
        assert seconds == pytest.approx(1.0)
        assert ledger.total_seconds == pytest.approx(1.0)

    def test_reference_resolution_cost(self):
        model = DecodeCostModel()
        cost = model.cost_for_resolution(1280, 720)
        assert cost.seconds_per_call == pytest.approx(model.base_cost.seconds_per_call)
