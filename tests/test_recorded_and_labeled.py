"""Tests for the detector recording and the labeled set."""

import numpy as np
import pytest

from repro.core.labeled_set import LabeledSet
from repro.core.recorded import RecordedDetections
from repro.metrics.runtime import RuntimeLedger
from repro.video.synthetic import FEATURE_DIM


class TestRecordedDetections:
    def test_num_frames(self, tiny_recorded, tiny_video):
        assert tiny_recorded.num_frames == tiny_video.num_frames

    def test_counts_match_results(self, tiny_recorded):
        counts = tiny_recorded.counts("car")
        for frame in (0, 10, 100):
            assert counts[frame] == tiny_recorded.result(frame).count("car")

    def test_result_charges_ledger_when_given(self, tiny_recorded, detector):
        ledger = RuntimeLedger()
        tiny_recorded.result(0, ledger)
        assert ledger.call_count(detector.cost.name) == 1

    def test_result_free_without_ledger(self, tiny_recorded):
        # Reading the recording without a ledger is the harness's ground-truth
        # access and must not affect any measurement.
        tiny_recorded.result(0)

    def test_count_at_charges(self, tiny_recorded, detector):
        ledger = RuntimeLedger()
        count = tiny_recorded.count_at(5, "car", ledger)
        assert count == tiny_recorded.counts("car")[5]
        assert ledger.call_count(detector.cost.name) == 1

    def test_presence_is_counts_positive(self, tiny_recorded):
        np.testing.assert_array_equal(
            tiny_recorded.presence("car"), tiny_recorded.counts("car") > 0
        )

    def test_satisfies_min_counts(self, tiny_recorded):
        counts = tiny_recorded.counts("car")
        frame = int(np.argmax(counts))
        assert tiny_recorded.satisfies_min_counts(frame, {"car": int(counts[frame])})
        assert not tiny_recorded.satisfies_min_counts(
            frame, {"car": int(counts[frame]) + 1}
        )

    def test_frames_satisfying(self, tiny_recorded):
        frames = tiny_recorded.frames_satisfying({"car": 1})
        np.testing.assert_array_equal(frames, np.nonzero(tiny_recorded.counts("car") >= 1)[0])

    def test_mean_count(self, tiny_recorded):
        assert tiny_recorded.mean_count("car") == pytest.approx(
            float(tiny_recorded.counts("car").mean())
        )

    def test_length_mismatch_rejected(self, tiny_video, detector):
        with pytest.raises(ValueError):
            RecordedDetections(tiny_video, detector, results=[])

    def test_counts_cached(self, tiny_recorded):
        a = tiny_recorded.counts("car")
        b = tiny_recorded.counts("car")
        assert a is b


class TestLabeledSet:
    def test_build_runs_detector_over_both_days(self, tiny_labeled_set):
        assert (
            tiny_labeled_set.train_recorded.num_frames
            == tiny_labeled_set.train_video.num_frames
        )
        assert (
            tiny_labeled_set.heldout_recorded.num_frames
            == tiny_labeled_set.heldout_video.num_frames
        )

    def test_features_shape(self, tiny_labeled_set):
        assert tiny_labeled_set.train_features.shape == (
            tiny_labeled_set.train_video.num_frames,
            FEATURE_DIM,
        )
        assert tiny_labeled_set.heldout_features.shape == (
            tiny_labeled_set.heldout_video.num_frames,
            FEATURE_DIM,
        )

    def test_features_cached(self, tiny_labeled_set):
        assert tiny_labeled_set.train_features is tiny_labeled_set.train_features

    def test_counts_and_presence_consistent(self, tiny_labeled_set):
        counts = tiny_labeled_set.train_counts("car")
        presence = tiny_labeled_set.train_presence("car")
        np.testing.assert_array_equal(presence, counts > 0)

    def test_training_positives(self, tiny_labeled_set):
        assert tiny_labeled_set.training_positives("car") == int(
            tiny_labeled_set.train_presence("car").sum()
        )

    def test_training_instances_conjunction(self, tiny_labeled_set):
        single = tiny_labeled_set.training_instances({"car": 1})
        joint = tiny_labeled_set.training_instances({"car": 1, "bus": 1})
        assert joint <= single

    def test_build_classmethod(self, tiny_train_video, tiny_heldout_video, detector):
        labeled = LabeledSet.build(
            tiny_train_video.slice(0, 50), tiny_heldout_video.slice(0, 50), detector
        )
        assert labeled.train_recorded.num_frames == 50
