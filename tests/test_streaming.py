"""Tests for the streaming execution protocol.

Covers the acceptance criteria of the streaming redesign: every query class
emits at least one incremental event before ``Completed``, drained-stream
results are identical to blocking ``execute()`` results under a fixed RNG
stream, and ``limit`` / ``stop_when`` conditions terminate execution with
strictly fewer detector calls than a full run (asserted via the
``ExecutionLedger``).
"""

import numpy as np
import pytest

from repro.api import (
    Completed,
    EstimateUpdate,
    ExecutionLedger,
    Progress,
    QueryHints,
    ScrubbingHit,
    SelectionWindow,
    StopConditions,
)
from repro.core.config import BlazeItConfig
from repro.core.engine import BlazeIt
from repro.errors import ConfigurationError

AGG_QUERY = (
    "SELECT FCOUNT(*) FROM tiny WHERE class = 'car' "
    "ERROR WITHIN 0.1 AT CONFIDENCE 95%"
)
SCRUB_QUERY = (
    "SELECT timestamp FROM tiny GROUP BY timestamp "
    "HAVING SUM(class='car') >= 1 LIMIT 3"
)
SELECT_QUERY = "SELECT * FROM tiny WHERE class = 'car'"
EXACT_QUERY = "SELECT timestamp FROM tiny"

ALL_QUERIES = {
    "aggregate": AGG_QUERY,
    "scrubbing": SCRUB_QUERY,
    "selection": SELECT_QUERY,
    "exact": EXACT_QUERY,
}


@pytest.fixture(scope="module")
def aqp_engine(tiny_video, detector, fast_training_config):
    """An engine forced onto plain AQP (specialization never has enough data)."""
    engine = BlazeIt(
        detector=detector,
        config=BlazeItConfig(
            training=fast_training_config,
            min_training_positives=10**6,
            seed=99,
        ),
    )
    engine.register_video("tiny", test_video=tiny_video)
    engine.record_test_day("tiny")
    return engine


class TestStreamBlockingEquivalence:
    @pytest.mark.parametrize("kind", sorted(ALL_QUERIES))
    def test_drained_stream_equals_blocking_execute(self, tiny_engine, kind):
        """Same prepared query, same RNG stream: identical results."""
        query = ALL_QUERIES[kind]
        session = tiny_engine.session()
        prepared = session.prepare(query)
        blocking = prepared.execute(rng=np.random.default_rng(11))
        events = list(prepared.stream(rng=np.random.default_rng(11)))

        assert isinstance(events[-1], Completed)
        incremental = events[:-1]
        assert len(incremental) >= 1
        assert not any(isinstance(e, Completed) for e in incremental)
        streamed = events[-1].result
        assert streamed.kind == kind
        assert streamed == blocking

    def test_aqp_stream_shows_shrinking_interval(self, aqp_engine):
        events = list(
            aqp_engine.session().stream(
                AGG_QUERY, rng=np.random.default_rng(2), error_within=0.02
            )
        )
        updates = [e for e in events if isinstance(e, EstimateUpdate)]
        assert len(updates) >= 1
        final = events[-1].result
        assert updates[-1].estimate == pytest.approx(final.value)
        assert updates[-1].samples_used == final.samples_used

    def test_every_execution_carries_an_execution_ledger(self, tiny_engine):
        for query in ALL_QUERIES.values():
            result = tiny_engine.session().execute(query)
            ledger = result.execution_ledger
            assert isinstance(ledger, ExecutionLedger)
            assert ledger.detector_calls > 0
            assert ledger.frames_decoded > 0
            assert ledger.events_emitted > ledger.batches_emitted >= 1
            assert ledger.wall_seconds > 0.0

    def test_stream_event_count_matches_ledger(self, tiny_engine):
        events = list(tiny_engine.session().stream(EXACT_QUERY))
        ledger = events[-1].result.execution_ledger
        assert ledger.events_emitted == len(events)
        assert ledger.batches_emitted == len(events) - 1

    def test_lazy_stream_not_contaminated_by_interleaved_execution(
        self, tiny_video, detector, fast_training_config
    ):
        """The RNG stream drawn at stream creation binds at iteration time,
        so executions between creating and draining a stream do not change
        the streamed result."""

        def make_prepared():
            engine = BlazeIt(
                detector=detector,
                config=BlazeItConfig(
                    training=fast_training_config,
                    min_training_positives=10**6,
                    seed=1234,
                ),
            )
            engine.register_video("tiny", test_video=tiny_video)
            engine.record_test_day("tiny")
            return engine.session().prepare(AGG_QUERY)

        undisturbed = make_prepared()
        reference = undisturbed.stream().drain().value

        disturbed = make_prepared()
        stream = disturbed.stream()
        disturbed.execute()  # interleaved execution, draws its own RNG stream
        assert stream.drain().value == reference

        # Same guarantee for a stream that is already part-way through when
        # another execution runs on the shared context.
        part_way = make_prepared()
        stream = part_way.stream()
        next(stream)
        part_way.execute()
        assert stream.drain().value == reference


class TestEarlyTermination:
    def test_scrubbing_stop_limit_saves_detector_calls(self, tiny_engine):
        session = tiny_engine.session()
        prepared = session.prepare(SCRUB_QUERY)
        full = prepared.execute()
        assert full.satisfied  # the event is common enough to find 3 of

        stream = prepared.stream(stop=StopConditions(limit=1))
        events = list(stream)
        limited = events[-1].result
        hits = [e for e in events if isinstance(e, ScrubbingHit)]
        assert len(hits) == 1
        assert len(limited.frames) == 1
        assert stream.stop_reason == "limit"
        # ``satisfied`` keeps its blocking meaning: the query's own LIMIT 3
        # was not reached, the stop condition just ended the run early.
        assert limited.limit == 3
        assert not limited.satisfied
        assert (
            limited.execution_ledger.detector_calls
            < full.execution_ledger.detector_calls
        )

    def test_scrubbing_hits_stream_before_completion(self, tiny_engine):
        events = list(tiny_engine.session().stream(SCRUB_QUERY))
        hit_positions = [
            i for i, e in enumerate(events) if isinstance(e, ScrubbingHit)
        ]
        assert hit_positions and hit_positions[0] < len(events) - 1
        final = events[-1].result
        assert sorted(e.frame_index for e in events if isinstance(e, ScrubbingHit)) == (
            final.frames
        )

    def test_aggregate_detector_budget_saves_detector_calls(self, aqp_engine):
        session = aqp_engine.session()
        prepared = session.prepare(AGG_QUERY)
        full = prepared.execute(rng=np.random.default_rng(5), error_within=0.02)
        assert full.execution_ledger.detector_calls > 25

        events = list(
            prepared.stream(
                rng=np.random.default_rng(5),
                stop=StopConditions(max_detector_calls=25),
                error_within=0.02,
            )
        )
        capped = events[-1].result
        assert capped.execution_ledger.detector_calls <= 25
        assert (
            capped.execution_ledger.detector_calls
            < full.execution_ledger.detector_calls
        )
        assert events[-1].stop_reason == "max_detector_calls"

    def test_aggregate_ci_width_stop(self, aqp_engine):
        session = aqp_engine.session()
        prepared = session.prepare(AGG_QUERY)
        full = prepared.execute(rng=np.random.default_rng(6), error_within=0.02)

        stream = prepared.stream(
            rng=np.random.default_rng(6),
            stop=StopConditions(ci_width=10.0),
            error_within=0.02,
        )
        relaxed = stream.drain()
        assert stream.stop_reason == "ci_width"
        assert relaxed.half_width <= 10.0
        assert relaxed.samples_used <= full.samples_used

    def test_selection_stop_limit_saves_detector_calls(self, tiny_engine):
        session = tiny_engine.session()
        prepared = session.prepare(SELECT_QUERY)
        full = prepared.execute()
        assert len(full.matched_frames) > 1

        events = list(
            prepared.stream(stop=StopConditions(limit=1), batch_size=4)
        )
        limited = events[-1].result
        windows = [e for e in events if isinstance(e, SelectionWindow)]
        assert len(windows) == 1
        assert events[-1].stop_reason == "limit"
        assert (
            limited.execution_ledger.detector_calls
            < full.execution_ledger.detector_calls
        )
        # The limited result is a prefix of the full answer.
        assert set(limited.matched_frames) <= set(full.matched_frames)

    def test_exact_detector_budget(self, tiny_engine):
        session = tiny_engine.session()
        prepared = session.prepare(EXACT_QUERY)
        full = prepared.execute()

        stream = prepared.stream(stop=StopConditions(max_detector_calls=10))
        partial = stream.drain()
        assert partial.execution_ledger.detector_calls == 10
        assert (
            partial.execution_ledger.detector_calls
            < full.execution_ledger.detector_calls
        )
        assert stream.stop_reason == "max_detector_calls"
        # Blocking callers see the truncation on the result itself.
        assert partial.stop_reason == "max_detector_calls"
        assert full.stop_reason is None

    def test_cancel_finalises_partial_result(self, tiny_engine):
        stream = tiny_engine.session().stream(EXACT_QUERY, batch_size=16)
        seen = [next(stream), next(stream)]
        assert all(isinstance(e, Progress) for e in seen)
        stream.cancel()
        result = stream.drain()
        assert stream.stop_reason == "cancelled"
        assert result.execution_ledger.detector_calls < 400

    def test_until_helper_cancels_on_predicate(self, aqp_engine):
        stream = aqp_engine.session().stream(
            AGG_QUERY, rng=np.random.default_rng(8), error_within=0.02
        )
        events = stream.until(lambda e: isinstance(e, EstimateUpdate))
        assert isinstance(events[-1], Completed)
        assert any(isinstance(e, EstimateUpdate) for e in events)
        assert stream.result is events[-1].result

    def test_stop_conditions_default_from_hints(self, tiny_engine):
        hints = QueryHints(stop_conditions=StopConditions(limit=1))
        events = list(tiny_engine.session().stream(SCRUB_QUERY, hints=hints))
        assert len(events[-1].result.frames) == 1
        assert "stop(limit=1)" in hints.describe()

    def test_stop_condition_validation(self):
        with pytest.raises(ConfigurationError, match=">= 1"):
            StopConditions(limit=0)
        with pytest.raises(ConfigurationError, match="positive"):
            StopConditions(ci_width=-0.5)
        with pytest.raises(ConfigurationError, match=">= 1"):
            StopConditions(max_detector_calls=0)
        with pytest.raises(ConfigurationError, match="StopConditions"):
            QueryHints(stop_conditions="soon")  # type: ignore[arg-type]


class TestScrubbingFallbackDedupe:
    def test_detection_cache_dedupes_repeat_frames(self, tiny_engine):
        """The satellite mechanism itself: within one execution, a frame is
        detected (and charged) once; revisits replay the cached result."""
        from repro.metrics.runtime import ExecutionLedger

        context = tiny_engine.execution_context("tiny")
        ledger = ExecutionLedger()
        first = context.detect(7, ledger)
        again = context.detect(7, ledger)
        assert again is first
        assert ledger.detector_calls == 1
        assert ledger.detection_cache_hits == 1
        assert ledger.frames_decoded == 1
        assert ledger.seen_frames == {7}
        copy = ledger.snapshot()
        assert copy.detector_calls == 1 and copy.detection_cache_hits == 1

    def test_exhaustive_fallback_sweeps_only_unexamined_frames(self, tiny_engine):
        """An unsatisfiable limit with a GAP leaves gap-blocked frames
        unexamined, which triggers the fallback sweep; frames the ranked
        scan already examined are excluded via the ledger's seen-frame set,
        so the detector is charged at most once per frame."""
        query = (
            "SELECT timestamp FROM tiny GROUP BY timestamp "
            "HAVING SUM(class='car') >= 1 LIMIT 399 GAP 5"
        )
        events = list(tiny_engine.session().stream(query))
        result = events[-1].result
        assert result.method == "importance"
        assert not result.satisfied
        phases = [e.phase for e in events if isinstance(e, Progress)]
        assert "exhaustive_fallback" in phases
        ledger = result.execution_ledger
        assert ledger.detector_calls == ledger.frames_decoded < 400
        assert result.detection_calls == ledger.detector_calls

    def test_no_fallback_when_ranked_scan_examined_everything(self, tiny_engine):
        """Without a GAP the ranked scan is a full permutation, so the
        fallback could never accept a new frame and is skipped."""
        query = (
            "SELECT timestamp FROM tiny GROUP BY timestamp "
            "HAVING SUM(class='car') >= 1 LIMIT 399"
        )
        events = list(tiny_engine.session().stream(query))
        result = events[-1].result
        assert not result.satisfied
        phases = [e.phase for e in events if isinstance(e, Progress)]
        assert "exhaustive_fallback" not in phases
        ledger = result.execution_ledger
        assert ledger.detector_calls == ledger.frames_decoded == 400
        assert ledger.detection_cache_hits == 0


class TestPlanCursor:
    def test_cursor_batches_until_exhausted(self, tiny_engine):
        session = tiny_engine.session()
        prepared = session.prepare(EXACT_QUERY)
        cursor = prepared.plan.open(session._context_for("tiny"))
        events = []
        while True:
            batch = cursor.next_batch(3)
            if not batch:
                break
            assert len(batch) <= 3
            events.extend(batch)
        assert cursor.exhausted
        assert isinstance(events[-1], Completed)
        assert cursor.result is events[-1].result

    def test_cursor_close_cancels(self, tiny_engine):
        session = tiny_engine.session()
        prepared = session.prepare(EXACT_QUERY)
        cursor = prepared.plan.open(session._context_for("tiny"))
        cursor.next_batch(1)
        cursor.close()
        assert cursor.exhausted
        assert cursor.next_batch() == []


class TestSessionStats:
    def test_streams_counted_separately_from_executions(self, tiny_engine):
        session = tiny_engine.session()
        session.execute(EXACT_QUERY)
        assert (session.stats.executions, session.stats.streams) == (1, 0)
        list(session.stream(EXACT_QUERY))
        assert (session.stats.executions, session.stats.streams) == (2, 1)
