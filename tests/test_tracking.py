"""Tests for motion-IoU entity resolution."""

import pytest

from repro.detection.base import Detection, DetectionResult
from repro.tracking.iou_tracker import IoUTracker
from repro.tracking.track import ResolvedTrack
from repro.video.geometry import BoundingBox


def _frame(frame_index, boxes, object_class="car"):
    detections = [
        Detection(
            frame_index=frame_index,
            timestamp=frame_index / 30.0,
            object_class=object_class,
            box=box,
            confidence=0.9,
        )
        for box in boxes
    ]
    return DetectionResult(
        frame_index=frame_index, timestamp=frame_index / 30.0, detections=detections
    )


def _box(x, y=0.0, size=100.0):
    return BoundingBox(x, y, x + size, y + size)


class TestIoUTracker:
    def test_stationary_object_is_one_track(self):
        tracker = IoUTracker()
        results = [_frame(i, [_box(0.0)]) for i in range(5)]
        tracks = tracker.resolve(results)
        assert len(tracks) == 1
        assert tracks[0].length == 5

    def test_slow_object_stays_one_track(self):
        tracker = IoUTracker(iou_threshold=0.7)
        results = [_frame(i, [_box(i * 5.0)]) for i in range(10)]
        tracks = tracker.resolve(results)
        assert len(tracks) == 1

    def test_teleporting_object_splits_tracks(self):
        tracker = IoUTracker()
        results = [_frame(0, [_box(0.0)]), _frame(1, [_box(1000.0)])]
        tracks = tracker.resolve(results)
        assert len(tracks) == 2

    def test_two_parallel_objects(self):
        tracker = IoUTracker()
        results = [_frame(i, [_box(0.0), _box(500.0)]) for i in range(4)]
        tracks = tracker.resolve(results)
        assert len(tracks) == 2
        assert all(t.length == 4 for t in tracks)

    def test_different_classes_never_merge(self):
        tracker = IoUTracker()
        results = [
            DetectionResult(
                frame_index=i,
                timestamp=i / 30.0,
                detections=[
                    Detection(i, i / 30.0, "car", _box(0.0), 0.9),
                    Detection(i, i / 30.0, "bus", _box(0.0), 0.9),
                ],
            )
            for i in range(3)
        ]
        tracks = tracker.resolve(results)
        assert len(tracks) == 2
        assert {t.object_class for t in tracks} == {"car", "bus"}

    def test_gap_closes_track(self):
        tracker = IoUTracker(max_gap=1)
        results = [_frame(0, [_box(0.0)]), _frame(1, []), _frame(2, [_box(0.0)])]
        # Without bridging the empty frame the object re-enters as a new track,
        # matching the trackid semantics of Table 1.
        tracks = tracker.resolve(results)
        assert len(tracks) == 2

    def test_larger_gap_bridges_missing_frame(self):
        tracker = IoUTracker(max_gap=2)
        results = [_frame(0, [_box(0.0)]), _frame(1, []), _frame(2, [_box(0.0)])]
        tracks = tracker.resolve(results)
        assert len(tracks) == 1

    def test_track_ids_assigned_to_detections(self):
        tracker = IoUTracker()
        results = [_frame(i, [_box(0.0)]) for i in range(3)]
        tracks = tracker.resolve(results)
        for track in tracks:
            for det in track.detections:
                assert det.track_id == track.track_id

    def test_every_detection_belongs_to_exactly_one_track(self):
        tracker = IoUTracker()
        results = [_frame(i, [_box(0.0), _box(300.0)]) for i in range(6)]
        tracks = tracker.resolve(results)
        total = sum(t.length for t in tracks)
        assert total == 12

    def test_reset_clears_state(self):
        tracker = IoUTracker()
        tracker.resolve([_frame(0, [_box(0.0)])])
        tracker.reset()
        tracks = tracker.resolve([_frame(0, [_box(0.0)])])
        assert len(tracks) == 1
        assert tracks[0].track_id == 0

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            IoUTracker(iou_threshold=0.0)
        with pytest.raises(ValueError):
            IoUTracker(max_gap=0)

    def test_real_video_track_count_is_reasonable(self, tiny_video, detector):
        """Tracks resolved from detections should be of the same order as ground truth."""
        results = [
            detector.detect(tiny_video, frame) for frame in range(tiny_video.num_frames)
        ]
        tracker = IoUTracker(iou_threshold=0.5, max_gap=3)
        tracks = tracker.resolve(results)
        car_tracks = [t for t in tracks if t.object_class == "car" and t.length >= 3]
        true_cars = tiny_video.distinct_count("car")
        assert car_tracks, "expected at least one resolved car track"
        # Fragmentation and misses allow a wide band, but not order-of-magnitude drift.
        assert 0.3 * true_cars <= len(car_tracks) <= 3.0 * true_cars + 5


class TestResolvedTrack:
    def test_start_end_frames(self):
        track = ResolvedTrack(track_id=0, object_class="car")
        track.add(Detection(5, 0.1, "car", _box(0.0), 0.9))
        track.add(Detection(9, 0.3, "car", _box(0.0), 0.9))
        assert track.start_frame == 5
        assert track.end_frame == 9
        assert track.length == 2
