"""Tests for FrameQL semantic analysis and query classification."""

import pytest

from repro.errors import FrameQLAnalysisError
from repro.frameql.analyzer import (
    AggregateQuerySpec,
    ExactQuerySpec,
    QueryKind,
    ScrubbingQuerySpec,
    SelectionQuerySpec,
    analyze,
)
from repro.frameql.parser import parse
from repro.frameql.schema import FRAMEQL_SCHEMA, FrameRecord, is_valid_column
from repro.video.geometry import BoundingBox
from repro.workloads.queries import (
    aggregate_query,
    multiclass_scrubbing_query,
    red_bus_selection_query,
    scrubbing_query,
)


def _analyze(text):
    return analyze(parse(text))


class TestSchema:
    def test_table1_fields_present(self):
        assert set(FRAMEQL_SCHEMA) == {
            "timestamp",
            "class",
            "mask",
            "trackid",
            "content",
            "features",
        }

    def test_is_valid_column(self):
        assert is_valid_column("timestamp")
        assert not is_valid_column("speed")

    def test_frame_record_field_access(self):
        record = FrameRecord(
            timestamp=1.0,
            frame_index=30,
            object_class="car",
            mask=BoundingBox(0, 0, 10, 10),
            trackid=7,
            color=(200.0, 40.0, 40.0),
        )
        assert record.field("class") == "car"
        assert record.field("trackid") == 7
        assert record.field("timestamp") == 1.0
        assert record.field("mask").area == 100.0
        assert record.field("content") == (200.0, 40.0, 40.0)
        with pytest.raises(KeyError):
            record.field("velocity")


class TestAggregateClassification:
    def test_fcount_query(self):
        spec = _analyze(aggregate_query("taipei", "car"))
        assert isinstance(spec, AggregateQuerySpec)
        assert spec.kind == QueryKind.AGGREGATE
        assert spec.aggregate == "fcount"
        assert spec.object_class == "car"
        assert spec.error_tolerance == pytest.approx(0.1)
        assert spec.confidence == pytest.approx(0.95)

    def test_count_query(self):
        spec = _analyze("SELECT COUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1")
        assert isinstance(spec, AggregateQuerySpec)
        assert spec.aggregate == "count"

    def test_count_distinct_query(self):
        spec = _analyze("SELECT COUNT(DISTINCT trackid) FROM taipei WHERE class = 'car'")
        assert isinstance(spec, AggregateQuerySpec)
        assert spec.aggregate == "count_distinct"

    def test_aggregate_without_error_bound(self):
        spec = _analyze("SELECT FCOUNT(*) FROM taipei WHERE class = 'car'")
        assert isinstance(spec, AggregateQuerySpec)
        assert spec.error_tolerance is None

    def test_default_confidence_is_95(self):
        spec = _analyze("SELECT FCOUNT(*) FROM taipei WHERE class = 'car' ERROR WITHIN 0.1")
        assert spec.confidence == pytest.approx(0.95)


class TestScrubbingClassification:
    def test_single_class(self):
        spec = _analyze(scrubbing_query("taipei", "car", 6, limit=10, gap=300))
        assert isinstance(spec, ScrubbingQuerySpec)
        assert spec.min_counts == {"car": 6}
        assert spec.limit == 10
        assert spec.gap == 300

    def test_multi_class(self):
        spec = _analyze(multiclass_scrubbing_query("taipei", {"bus": 1, "car": 5}))
        assert isinstance(spec, ScrubbingQuerySpec)
        assert spec.min_counts == {"bus": 1, "car": 5}

    def test_strict_greater_than_bumps_threshold(self):
        spec = _analyze(
            "SELECT timestamp FROM v GROUP BY timestamp HAVING SUM(class='car') > 3 LIMIT 5"
        )
        assert spec.min_counts == {"car": 4}

    def test_default_limit_is_ten(self):
        spec = _analyze(
            "SELECT timestamp FROM v GROUP BY timestamp HAVING SUM(class='car') >= 2"
        )
        assert spec.limit == 10

    def test_where_class_adds_presence_requirement(self):
        spec = _analyze(
            "SELECT timestamp FROM v WHERE class = 'bus' GROUP BY timestamp "
            "HAVING SUM(class='car') >= 5 LIMIT 3"
        )
        assert spec.min_counts == {"car": 5, "bus": 1}

    def test_bad_having_predicate_raises(self):
        with pytest.raises(FrameQLAnalysisError):
            _analyze(
                "SELECT timestamp FROM v GROUP BY timestamp "
                "HAVING redness(content) >= 3 LIMIT 5"
            )


class TestSelectionClassification:
    def test_red_bus_query(self):
        spec = _analyze(red_bus_selection_query())
        assert isinstance(spec, SelectionQuerySpec)
        assert spec.object_class == "bus"
        assert spec.min_area == pytest.approx(100000)
        assert spec.min_track_frames == 16  # COUNT(*) > 15
        assert len(spec.udf_predicates) == 1
        assert spec.udf_predicates[0].udf_name == "redness"
        assert spec.select_star

    def test_class_only_selection(self):
        spec = _analyze("SELECT timestamp FROM v WHERE class = 'car'")
        assert isinstance(spec, SelectionQuerySpec)
        assert spec.object_class == "car"
        assert spec.select_columns == ["timestamp"]

    def test_fnr_fpr_captured(self):
        spec = _analyze(
            "SELECT timestamp FROM v WHERE class = 'car' FNR WITHIN 0.01 FPR WITHIN 0.02"
        )
        assert isinstance(spec, SelectionQuerySpec)
        assert spec.fnr_within == pytest.approx(0.01)
        assert spec.fpr_within == pytest.approx(0.02)

    def test_spatial_constraint(self):
        spec = _analyze("SELECT * FROM v WHERE class = 'car' AND xmax(mask) < 720")
        assert len(spec.spatial_constraints) == 1
        assert spec.spatial_constraints[0].axis == "xmax"
        assert spec.spatial_constraints[0].value == pytest.approx(720)

    def test_time_range(self):
        spec = _analyze(
            "SELECT * FROM v WHERE class = 'car' AND timestamp >= 60 AND timestamp < 120"
        )
        assert spec.time_range == (60.0, 120.0)

    def test_udf_equality_predicate(self):
        spec = _analyze(
            "SELECT * FROM v WHERE class = 'car' AND classify(content) = 'sedan'"
        )
        predicate = spec.udf_predicates[0]
        assert predicate.udf_name == "classify"
        assert predicate.op == "="
        assert predicate.value == "sedan"

    def test_flipped_comparison_normalised(self):
        spec = _analyze("SELECT * FROM v WHERE class = 'car' AND 17.5 <= redness(content)")
        predicate = spec.udf_predicates[0]
        assert predicate.op == ">="
        assert predicate.value == pytest.approx(17.5)


class TestExactFallbackAndErrors:
    def test_select_star_no_predicates_is_exact(self):
        spec = _analyze("SELECT * FROM v")
        assert isinstance(spec, ExactQuerySpec)
        assert spec.kind == QueryKind.EXACT

    def test_unknown_column_raises(self):
        with pytest.raises(FrameQLAnalysisError):
            _analyze("SELECT speed FROM v WHERE class = 'car'")

    def test_or_in_where_rejected(self):
        with pytest.raises(FrameQLAnalysisError):
            _analyze("SELECT * FROM v WHERE class = 'car' OR class = 'bus'")

    def test_unsupported_timestamp_operator(self):
        with pytest.raises(FrameQLAnalysisError):
            _analyze("SELECT * FROM v WHERE class='car' AND timestamp != 5")

    def test_udf_with_two_args_rejected(self):
        with pytest.raises(FrameQLAnalysisError):
            _analyze("SELECT * FROM v WHERE class='car' AND dist(mask, content) > 5")
