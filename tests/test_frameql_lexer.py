"""Tests for the FrameQL tokenizer."""

import pytest

from repro.errors import FrameQLSyntaxError
from repro.frameql.lexer import TokenType, tokenize


class TestTokenize:
    def test_simple_select(self):
        tokens = tokenize("SELECT * FROM taipei")
        values = [(t.type, t.value) for t in tokens]
        assert values == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.OPERATOR, "*"),
            (TokenType.KEYWORD, "FROM"),
            (TokenType.IDENT, "taipei"),
            (TokenType.END, ""),
        ]

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select from where")
        assert all(t.type == TokenType.KEYWORD for t in tokens[:-1])
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_preserve_case(self):
        tokens = tokenize("SELECT redness FROM MyVideo")
        assert tokens[1].value == "redness"
        assert tokens[3].value == "MyVideo"

    def test_string_literal(self):
        tokens = tokenize("class = 'car'")
        assert tokens[2].type == TokenType.STRING
        assert tokens[2].value == "car"

    def test_unterminated_string_raises(self):
        with pytest.raises(FrameQLSyntaxError):
            tokenize("class = 'car")

    def test_numbers(self):
        tokens = tokenize("0.1 95 17.5")
        assert [t.value for t in tokens[:-1]] == ["0.1", "95", "17.5"]
        assert all(t.type == TokenType.NUMBER for t in tokens[:-1])

    def test_number_starting_with_dot(self):
        tokens = tokenize(".5")
        assert tokens[0].type == TokenType.NUMBER
        assert tokens[0].value == ".5"

    def test_two_char_operators(self):
        tokens = tokenize("a >= 1 AND b <= 2 AND c <> 3 AND d != 4")
        ops = [t.value for t in tokens if t.type == TokenType.OPERATOR]
        assert ops == [">=", "<=", "<>", "!="]

    def test_percent_token(self):
        tokens = tokenize("CONFIDENCE 95%")
        assert tokens[2].type == TokenType.OPERATOR
        assert tokens[2].value == "%"

    def test_punctuation(self):
        tokens = tokenize("FCOUNT(*), COUNT(x);")
        puncts = [t.value for t in tokens if t.type == TokenType.PUNCT]
        assert puncts == ["(", ")", ",", "(", ")", ";"]

    def test_unexpected_character_raises(self):
        with pytest.raises(FrameQLSyntaxError) as excinfo:
            tokenize("SELECT @ FROM x")
        assert excinfo.value.position == 7

    def test_positions_recorded(self):
        tokens = tokenize("SELECT timestamp")
        assert tokens[0].position == 0
        assert tokens[1].position == 7

    def test_whitespace_and_newlines_ignored(self):
        tokens = tokenize("SELECT\n\t *  \n FROM   taipei")
        assert len(tokens) == 5

    def test_is_keyword_helper(self):
        tokens = tokenize("GROUP BY")
        assert tokens[0].is_keyword("group")
        assert not tokens[0].is_keyword("by")

    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type == TokenType.END
