"""Tests for the simulated runtime ledger and standard operator costs."""

import pytest

from repro.metrics.runtime import OperatorCost, RuntimeLedger, StandardCosts


class TestOperatorCost:
    def test_from_fps(self):
        cost = OperatorCost.from_fps("x", 10.0)
        assert cost.seconds_per_call == pytest.approx(0.1)

    def test_from_fps_rejects_non_positive(self):
        with pytest.raises(ValueError):
            OperatorCost.from_fps("x", 0.0)
        with pytest.raises(ValueError):
            OperatorCost.from_fps("x", -5.0)

    def test_standard_costs_match_paper_throughputs(self):
        assert StandardCosts.MASK_RCNN.seconds_per_call == pytest.approx(1 / 3)
        assert StandardCosts.YOLOV2.seconds_per_call == pytest.approx(1 / 80)
        assert StandardCosts.SPECIALIZED_NN.seconds_per_call == pytest.approx(1e-4)
        assert StandardCosts.SIMPLE_FILTER.seconds_per_call == pytest.approx(1e-5)

    def test_detection_is_much_slower_than_specialized_nn(self):
        ratio = (
            StandardCosts.MASK_RCNN.seconds_per_call
            / StandardCosts.SPECIALIZED_NN.seconds_per_call
        )
        assert ratio > 1000

    def test_all_costs_returns_every_operator(self):
        costs = StandardCosts.all_costs()
        assert "mask_rcnn" in costs
        assert "specialized_nn" in costs
        assert "simple_filter" in costs


class TestRuntimeLedger:
    def test_empty_ledger_has_zero_runtime(self):
        assert RuntimeLedger().total_seconds == 0.0

    def test_charge_accumulates(self):
        ledger = RuntimeLedger()
        ledger.charge(StandardCosts.MASK_RCNN, 3)
        ledger.charge(StandardCosts.MASK_RCNN, 2)
        assert ledger.call_count("mask_rcnn") == 5
        assert ledger.total_seconds == pytest.approx(5 / 3)

    def test_charge_returns_seconds_added(self):
        ledger = RuntimeLedger()
        added = ledger.charge(StandardCosts.SPECIALIZED_NN, 100)
        assert added == pytest.approx(0.01)

    def test_charge_negative_count_rejected(self):
        with pytest.raises(ValueError):
            RuntimeLedger().charge(StandardCosts.MASK_RCNN, -1)

    def test_charge_seconds(self):
        ledger = RuntimeLedger()
        ledger.charge_seconds("custom", 2.5)
        assert ledger.seconds_for("custom") == pytest.approx(2.5)
        assert ledger.call_count("custom") == 1

    def test_charge_seconds_rejects_negative(self):
        with pytest.raises(ValueError):
            RuntimeLedger().charge_seconds("custom", -1.0)

    def test_breakdown_is_a_copy(self):
        ledger = RuntimeLedger()
        ledger.charge(StandardCosts.MASK_RCNN)
        breakdown = ledger.breakdown()
        breakdown["mask_rcnn"] = 0.0
        assert ledger.seconds_for("mask_rcnn") > 0.0

    def test_merge_combines_ledgers(self):
        a = RuntimeLedger()
        b = RuntimeLedger()
        a.charge(StandardCosts.MASK_RCNN, 3)
        b.charge(StandardCosts.MASK_RCNN, 2)
        b.charge(StandardCosts.SPECIALIZED_NN, 10)
        a.merge(b)
        assert a.call_count("mask_rcnn") == 5
        assert a.call_count("specialized_nn") == 10

    def test_reset_clears_everything(self):
        ledger = RuntimeLedger()
        ledger.charge(StandardCosts.MASK_RCNN, 10)
        ledger.reset()
        assert ledger.total_seconds == 0.0
        assert ledger.call_count("mask_rcnn") == 0

    def test_snapshot_is_independent(self):
        ledger = RuntimeLedger()
        ledger.charge(StandardCosts.MASK_RCNN, 1)
        snap = ledger.snapshot()
        ledger.charge(StandardCosts.MASK_RCNN, 1)
        assert snap.call_count("mask_rcnn") == 1
        assert ledger.call_count("mask_rcnn") == 2

    def test_unknown_operator_reads_as_zero(self):
        ledger = RuntimeLedger()
        assert ledger.call_count("nope") == 0
        assert ledger.seconds_for("nope") == 0.0


class TestLedgerThreadSafety:
    """Concurrency stress: no charge or cache mutation may ever be lost.

    Shard workers and the parallel driver can touch one ledger concurrently;
    ``charge``/``charge_seconds`` and the detection-cache mutators hold the
    per-ledger lock, so the totals below must be exact, not approximate.
    """

    THREADS = 8
    ITERATIONS = 2_000

    def test_concurrent_charges_lose_no_counts(self):
        import threading

        ledger = RuntimeLedger()

        def hammer():
            for _ in range(self.ITERATIONS):
                ledger.charge(StandardCosts.MASK_RCNN)
                ledger.charge_seconds("custom", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = self.THREADS * self.ITERATIONS
        assert ledger.call_count("mask_rcnn") == expected
        assert ledger.call_count("custom") == expected
        assert ledger.seconds_for("mask_rcnn") == pytest.approx(
            expected * StandardCosts.MASK_RCNN.seconds_per_call
        )

    def test_concurrent_detection_cache_mutation_is_exact(self):
        import threading

        from repro.detection.base import DetectionResult
        from repro.metrics.runtime import ExecutionLedger

        ledger = ExecutionLedger()

        def hammer(worker_id: int):
            base = worker_id * self.ITERATIONS
            for i in range(self.ITERATIONS):
                frame = base + i
                ledger.record_detection(
                    frame, DetectionResult(frame_index=frame, timestamp=0.0)
                )
                ledger.record_cache_hit()
                ledger.stash_detection(
                    frame, DetectionResult(frame_index=frame, timestamp=0.0)
                )

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = self.THREADS * self.ITERATIONS
        assert ledger.detector_calls == expected
        assert ledger.frames_decoded == expected
        assert ledger.detection_cache_hits == expected
        assert ledger.shared_cache_hits == expected
        assert len(ledger.seen_frames) == expected
