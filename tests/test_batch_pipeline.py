"""Scalar/batched equivalence tests for the vectorized execution pipeline.

The vectorized paths (columnar ``frame_features``, ``detect_many`` /
``detect_batch``, chunked plan execution) must be bit-for-bit identical to
the scalar reference implementations they replace, with the same per-frame
ledger accounting — these tests pin that contract, parametrized over batch
sizes and both engine modes (``batched_execution`` on and off).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.hints import QueryHints
from repro.core.config import BlazeItConfig
from repro.core.engine import BlazeIt
from repro.errors import ConfigurationError
from repro.metrics.runtime import ExecutionLedger, RuntimeLedger
from repro.scrubbing.importance import _respects_gap
from repro.specialization.trainer import TrainingConfig
from repro.video.frame_batch import FrameBatch
from repro.video.synthetic import SyntheticVideo

from conftest import make_video_spec


def assert_results_identical(left, right):
    """Field-for-field equality of two DetectionResult lists."""
    assert len(left) == len(right)
    for a, b in zip(left, right, strict=True):
        assert a.frame_index == b.frame_index
        assert a.timestamp == b.timestamp
        assert len(a.detections) == len(b.detections)
        for x, y in zip(a.detections, b.detections, strict=True):
            assert x.object_class == y.object_class
            assert x.confidence == y.confidence
            assert x.box.as_tuple() == y.box.as_tuple()
            assert x.color == y.color
            assert x.color_name == y.color_name
            if x.features is None:
                assert y.features is None
            else:
                assert np.array_equal(x.features, y.features)


# -- columnar features --------------------------------------------------------


class TestFrameFeaturesEquivalence:
    @pytest.fixture(scope="class")
    def dense_video(self) -> SyntheticVideo:
        return SyntheticVideo.generate(
            make_video_spec(name="dense", num_frames=500, seed=11, car_rate=0.08)
        )

    def test_full_video_bitwise_equal(self, dense_video):
        reference_video = SyntheticVideo.generate(dense_video.spec)
        vectorized = dense_video.frame_features(np.arange(500))
        reference = reference_video.frame_features_reference(np.arange(500))
        assert np.array_equal(vectorized, reference)

    @pytest.mark.parametrize(
        "indices",
        [
            [0],
            [499],
            [3, 1, 4, 1, 5, 9, 2, 6],  # out of order, with repeats
            list(range(0, 500, 7)),
        ],
    )
    def test_subsets_bitwise_equal(self, dense_video, indices):
        vectorized = dense_video.frame_features(indices)
        reference = dense_video.frame_features_reference(indices)
        assert np.array_equal(vectorized, reference)

    def test_memo_consistent_across_calls(self, dense_video):
        first = dense_video.frame_features([10, 20])
        second = dense_video.frame_features([20, 10])
        assert np.array_equal(first[0], second[1])
        assert np.array_equal(first[1], second[0])

    def test_returned_rows_are_copies(self, dense_video):
        row = dense_video.frame_features([42])
        row[:] = 0.0
        assert not np.array_equal(dense_video.frame_features([42]), row)

    def test_out_of_range_raises_like_reference(self, dense_video):
        with pytest.raises(IndexError):
            dense_video.frame_features([3, 500])
        with pytest.raises(IndexError):
            dense_video.frame_features([-1])

    def test_scalar_flag_uses_reference_path(self, dense_video):
        video = SyntheticVideo.generate(dense_video.spec)
        video.use_vectorized_features = False
        assert np.array_equal(
            video.frame_features([1, 2, 3]),
            dense_video.frame_features([1, 2, 3]),
        )

    def test_empty_request(self, dense_video):
        assert dense_video.frame_features([]).shape[0] == 0


class TestFrameObjectTable:
    def test_matches_objects_at(self):
        video = SyntheticVideo.generate(
            make_video_spec(name="table", num_frames=200, seed=13, car_rate=0.06)
        )
        frames = np.array([0, 17, 42, 17, 199])
        table = video.frame_object_table(frames)
        for row, frame_index in enumerate(frames):
            objects = video.objects_at(int(frame_index))
            lo, hi = table.offsets[row], table.offsets[row + 1]
            assert hi - lo == len(objects)
            for k, obj in zip(range(lo, hi), objects, strict=True):
                assert table.track_ids[k] == obj.track_id
                assert table.class_names[table.class_codes[k]] == obj.object_class
                assert table.color_names[table.color_codes[k]] == obj.color_name
                assert (
                    table.x_min[k], table.y_min[k], table.x_max[k], table.y_max[k]
                ) == obj.box.as_tuple()
                assert tuple(table.colors[k]) == obj.color


# -- batched detection --------------------------------------------------------


class TestDetectManyEquivalence:
    def test_simulated_detectors_bitwise_equal(self, tiny_video, detector):
        frames = list(range(0, 200))
        sequential = [detector.detect(tiny_video, i) for i in frames]
        batched = detector.detect_many(tiny_video, np.asarray(frames))
        assert_results_identical(sequential, batched)

    def test_fgfa_configuration(self, tiny_video):
        from repro.detection.simulated import SimulatedDetector

        fgfa = SimulatedDetector.fgfa()
        frames = list(range(0, 60))
        assert_results_identical(
            [fgfa.detect(tiny_video, i) for i in frames],
            fgfa.detect_many(tiny_video, frames),
        )

    def test_repeats_computed_once(self, tiny_video, detector):
        calls = []
        original = type(detector)._detect_batch

        def spying(self, video, frame_indices, ledger=None):
            calls.append(list(frame_indices))
            return original(self, video, frame_indices, ledger)

        type(detector)._detect_batch = spying
        try:
            results = detector.detect_many(tiny_video, [5, 5, 9, 5, 9])
        finally:
            type(detector)._detect_batch = original
        assert calls == [[5, 9]]
        assert_results_identical(
            [results[0], results[2]], [results[1], results[4]]
        )

    def test_plain_ledger_charges_unique_frames(self, tiny_video, detector):
        ledger = RuntimeLedger()
        detector.detect_many(tiny_video, [1, 1, 2], ledger)
        assert ledger.call_count(detector.cost.name) == 2

    def test_execution_ledger_cache_accounting(self, tiny_video, detector):
        ledger = ExecutionLedger()
        detector.detect_many(tiny_video, [3, 4], ledger)
        detector.detect_many(tiny_video, [4, 5, 4], ledger)
        assert ledger.detector_calls == 3
        assert ledger.frames_decoded == 3
        assert ledger.detection_cache_hits == 2
        assert ledger.call_count(detector.cost.name) == 3


class TestContextDetectBatchEquivalence:
    @pytest.fixture()
    def context(self, tiny_engine):
        return tiny_engine.execution_context("tiny")

    def test_results_and_accounting_match_sequential(self, context):
        frames = [7, 3, 7, 11, 3, 12]
        sequential_ledger = ExecutionLedger()
        sequential = [
            context.detect(i, sequential_ledger) for i in frames
        ]
        batched_ledger = ExecutionLedger()
        batched = context.detect_batch(frames, batched_ledger)
        assert_results_identical(sequential, batched)
        assert batched_ledger.detector_calls == sequential_ledger.detector_calls
        assert batched_ledger.frames_decoded == sequential_ledger.frames_decoded
        assert (
            batched_ledger.detection_cache_hits
            == sequential_ledger.detection_cache_hits
        )
        assert batched_ledger.calls == sequential_ledger.calls
        assert batched_ledger.total_seconds == pytest.approx(
            sequential_ledger.total_seconds
        )

    def test_cache_hits_across_batches(self, context):
        ledger = ExecutionLedger()
        context.detect_batch([1, 2, 3], ledger)
        context.detect_batch([2, 3, 4], ledger)
        assert ledger.detector_calls == 4
        assert ledger.detection_cache_hits == 2

    def test_cost_scale_applied_once_per_miss(self, context):
        ledger = ExecutionLedger()
        context.detect_batch([1, 2], ledger, cost_scale=0.5)
        expected = context.detector.cost.seconds_per_call * 0.5 * 2
        assert ledger.seconds_for(context.detector.cost.name) == pytest.approx(
            expected
        )

    def test_detect_counts_batch_matches_scalar(self, context):
        frames = np.array([0, 5, 5, 9, 300])
        scalar = context.detect_counts(frames, "car", ExecutionLedger())
        batched = context.detect_counts_batch(frames, "car", ExecutionLedger())
        assert np.array_equal(scalar, batched)

    def test_scalar_mode_falls_back(self, tiny_engine):
        context = tiny_engine.execution_context("tiny")
        context.config = BlazeItConfig(
            training=context.config.training,
            min_training_positives=context.config.min_training_positives,
            batched_execution=False,
            seed=context.config.seed,
        )
        ledger = ExecutionLedger()
        results = context.detect_batch([4, 4, 6], ledger)
        reference = [context.detect(i, ExecutionLedger()) for i in [4, 4, 6]]
        assert_results_identical(results, reference)
        assert ledger.detector_calls == 2
        assert ledger.detection_cache_hits == 1


# -- gap checking -------------------------------------------------------------


class TestRespectsGap:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(5)
        for _ in range(200):
            accepted = sorted(rng.choice(100, size=6, replace=False).tolist())
            frame = int(rng.integers(0, 100))
            gap = int(rng.integers(0, 12))
            brute = all(abs(frame - other) >= gap for other in accepted)
            assert _respects_gap(frame, accepted, gap) == brute

    def test_zero_gap_always_passes(self):
        assert _respects_gap(5, [5, 6], 0)

    def test_empty_accepted(self):
        assert _respects_gap(5, [], 3)


# -- end-to-end: all four query classes, batch sizes, scalar mode -------------


QUERIES = {
    "aggregate": (
        "SELECT FCOUNT(*) FROM batchy WHERE class = 'car' "
        "ERROR WITHIN 0.1 AT CONFIDENCE 95%"
    ),
    "scrubbing": (
        "SELECT timestamp FROM batchy GROUP BY timestamp "
        "HAVING COUNT(class = 'car') >= 1 LIMIT 5 GAP 10"
    ),
    "selection": "SELECT * FROM batchy WHERE class = 'car'",
    "exact": "SELECT * FROM batchy",
}


def result_fingerprint(kind: str, result) -> tuple:
    """The observable output of a query result, for cross-mode comparison."""
    if kind == "aggregate":
        return (result.value, result.samples_used, result.method)
    if kind == "scrubbing":
        return (tuple(result.frames), result.satisfied, result.method)
    if kind == "selection":
        return (
            tuple(result.matched_frames),
            tuple(
                (r.frame_index, r.object_class, r.trackid) for r in result.records
            ),
            result.method,
        )
    return (
        tuple((r.frame_index, r.object_class, r.trackid) for r in result.records),
        result.method,
    )


class TestQueryClassEquivalence:
    @pytest.fixture(scope="class")
    def engines(self):
        """A batched and a scalar-reference engine over identical data."""
        training = TrainingConfig(epochs=3, batch_size=32, min_examples=16)

        def build(batched: bool) -> BlazeIt:
            config = BlazeItConfig(
                training=training,
                min_training_positives=20,
                batched_execution=batched,
                seed=3,
            )
            test = SyntheticVideo.generate(
                make_video_spec(name="batchy", num_frames=400, seed=21)
            )
            train = SyntheticVideo.generate(
                make_video_spec(name="batchy-train", num_frames=400, seed=22)
            )
            heldout = SyntheticVideo.generate(
                make_video_spec(name="batchy-heldout", num_frames=400, seed=23)
            )
            if not batched:
                for video in (test, train, heldout):
                    video.use_vectorized_features = False
            engine = BlazeIt(config=config)
            engine.register_video(
                "batchy", test_video=test, train_video=train, heldout_video=heldout
            )
            engine.record_test_day("batchy")
            return engine

        return build(True), build(False)

    @pytest.mark.parametrize("kind", sorted(QUERIES))
    def test_identical_across_batch_sizes(self, engines, kind):
        batched_engine, _ = engines
        fingerprints = []
        for batch_size in (1, 7, 64):
            session = batched_engine.session(
                hints=QueryHints(batch_size=batch_size)
            )
            result = session.execute(QUERIES[kind], rng=np.random.default_rng(42))
            fingerprints.append(result_fingerprint(kind, result))
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]

    @pytest.mark.parametrize("kind", sorted(QUERIES))
    def test_batched_identical_to_scalar_reference(self, engines, kind):
        batched_engine, scalar_engine = engines
        batched = batched_engine.session().execute(
            QUERIES[kind], rng=np.random.default_rng(7)
        )
        scalar = scalar_engine.session().execute(
            QUERIES[kind], rng=np.random.default_rng(7)
        )
        assert result_fingerprint(kind, batched) == result_fingerprint(kind, scalar)


# -- FrameBatch ---------------------------------------------------------------


class TestFrameBatch:
    def test_lazy_features_shared_by_select(self, tiny_video):
        batch = FrameBatch(tiny_video, [1, 2, 3, 4])
        assert not batch.features_loaded
        features = batch.features
        narrowed = batch.select(np.array([True, False, True, False]))
        assert narrowed.features_loaded
        assert np.array_equal(narrowed.features, features[[0, 2]])
        assert np.array_equal(narrowed.indices, [1, 3])

    def test_restrict_to(self, tiny_video):
        batch = FrameBatch(tiny_video, np.arange(6))
        narrowed = batch.restrict_to(np.array([5, 1]))
        assert np.array_equal(narrowed.indices, [1, 5])

    def test_default_covers_whole_video(self, tiny_video):
        assert len(FrameBatch(tiny_video)) == tiny_video.num_frames

    def test_mismatched_features_rejected(self, tiny_video):
        with pytest.raises(ValueError):
            FrameBatch(tiny_video, [1, 2, 3], features=np.zeros((2, 4)))


class TestBatchSizeHint:
    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ConfigurationError):
            QueryHints(batch_size=0)
        with pytest.raises(ConfigurationError):
            QueryHints(batch_size=-3)

    def test_describe_mentions_batch_size(self):
        assert "batch_size=128" in QueryHints(batch_size=128).describe()

    def test_hint_reaches_execution_control(self, tiny_engine):
        session = tiny_engine.session(hints=QueryHints(batch_size=17))
        stream = session.stream("SELECT * FROM tiny WHERE class = 'car'")
        assert stream.control.batch_size == 17
        stream.close()
