"""Round-trip tests for the service wire codecs (events, results, hints).

The byte-identity contract of the query service rests on these codecs being
lossless: every event and result that crosses the wire must deserialize to
an object whose canonical form equals the original's.  Floats are the sharp
edge — ``json`` uses shortest-round-trip repr, so IEEE-754 doubles survive
exactly — and these tests pin that down with awkward values.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api.hints import QueryHints, StopConditions
from repro.core.events import (
    Completed,
    EstimateUpdate,
    Progress,
    ScrubbingHit,
    SelectionWindow,
    ShardProgress,
    event_wire_types,
)
from repro.core.results import (
    AggregateResult,
    ExactResult,
    QueryResult,
    ScrubbingQueryResult,
    SelectionResult,
)
from repro.errors import ConfigurationError
from repro.frameql.schema import FrameRecord
from repro.metrics.runtime import ExecutionLedger, RuntimeLedger
from repro.service.protocol import (
    event_from_json,
    event_to_json,
    hints_from_json,
    hints_to_json,
    ledger_from_json,
    ledger_to_json,
    result_fingerprint,
    result_from_json,
    result_to_json,
)
from repro.video.geometry import BoundingBox

#: Floats chosen to break any codec that goes through decimal rounding.
AWKWARD = [0.1, 1 / 3, 2**-45, 1e300, -1.5e-17, 123456789.000000001]


def make_ledger() -> ExecutionLedger:
    ledger = ExecutionLedger()
    ledger.detector_calls = 123
    ledger.frames_decoded = 456
    ledger.detection_cache_hits = 7
    ledger.shared_cache_hits = 8
    ledger.index_hits = 11
    ledger.index_skips = 12
    ledger.batches_emitted = 9
    ledger.events_emitted = 10
    ledger.wall_seconds = 1.234567890123
    ledger.charges = {"mask_rcnn": 0.1 * 123}
    ledger.calls = {"mask_rcnn": 123}
    return ledger


def make_record(features: bool = True) -> FrameRecord:
    return FrameRecord(
        timestamp=AWKWARD[0],
        frame_index=42,
        object_class="car",
        mask=BoundingBox(1.5, 2.25, 100.125, 200.0625),
        trackid=7,
        features=np.linspace(0.0, 1.0, 16) if features else None,
        confidence=AWKWARD[1],
        color=(12.5, 99.875, 3.0),
        color_name="white",
    )


class TestEventRoundTrip:
    def test_wire_registry_covers_all_events(self):
        names = event_wire_types()
        assert set(names) == {
            "progress",
            "shard_progress",
            "estimate_update",
            "scrubbing_hit",
            "selection_window",
            "completed",
        }

    @pytest.mark.parametrize(
        "event",
        [
            Progress(phase="detection_scan", frames_scanned=10, total_frames=100),
            ShardProgress(
                shard=2,
                start_frame=0,
                end_frame=50,
                frames_computed=5,
                shard_frames=50,
                done=False,
            ),
            EstimateUpdate(
                estimate=AWKWARD[2],
                half_width=AWKWARD[3],
                samples_used=77,
                confidence=0.95,
            ),
            ScrubbingHit(
                frame_index=9, timestamp=AWKWARD[4], hits_so_far=1, limit=10
            ),
            SelectionWindow(
                start_frame=3, end_frame=8, matched_frames=12, windows_so_far=2
            ),
        ],
        ids=lambda e: type(e).__name__,
    )
    def test_non_terminal_events_round_trip(self, event):
        payload = json.loads(json.dumps(event_to_json(event)))
        restored = event_from_json(payload)
        assert restored == event

    def test_completed_round_trips_with_result(self):
        result = AggregateResult(
            kind="aggregate",
            method="sampling",
            ledger=make_ledger(),
            detection_calls=123,
            plan_description="p",
            value=AWKWARD[1],
            error_tolerance=0.05,
            confidence=0.95,
            samples_used=321,
            half_width=AWKWARD[2],
            correlation=None,
            stop_reason=None,
        )
        event = Completed(result=result, stop_reason="ci_width")
        restored = event_from_json(json.loads(json.dumps(event_to_json(event))))
        assert isinstance(restored, Completed)
        assert restored.stop_reason == "ci_width"
        assert result_fingerprint(restored.result) == result_fingerprint(result)

    def test_unknown_event_rejected_typed(self):
        with pytest.raises(ConfigurationError):
            event_from_json({"v": 1, "event": "nonsense", "data": {}})


class TestLedgerRoundTrip:
    def test_execution_ledger_round_trips(self):
        ledger = make_ledger()
        restored = ledger_from_json(json.loads(json.dumps(ledger_to_json(ledger))))
        assert isinstance(restored, ExecutionLedger)
        assert restored == ledger  # wall_seconds is compare=False by design
        assert restored.wall_seconds == ledger.wall_seconds
        assert restored.detector_calls == ledger.detector_calls
        assert restored.index_hits == ledger.index_hits
        assert restored.index_skips == ledger.index_skips

    def test_pre_index_payload_defaults_counters_to_zero(self):
        # Payloads written before the index counters existed must still load.
        payload = ledger_to_json(make_ledger())
        del payload["index_hits"]
        del payload["index_skips"]
        restored = ledger_from_json(payload)
        assert isinstance(restored, ExecutionLedger)
        assert restored.index_hits == 0
        assert restored.index_skips == 0

    def test_plain_runtime_ledger_round_trips(self):
        ledger = RuntimeLedger()
        ledger.charge_seconds("yolo", 0.25)
        restored = ledger_from_json(json.loads(json.dumps(ledger_to_json(ledger))))
        assert not isinstance(restored, ExecutionLedger)
        assert restored.charges == ledger.charges
        assert restored.calls == ledger.calls


class TestResultRoundTrip:
    def test_aggregate_exact_floats(self):
        for value in AWKWARD:
            result = AggregateResult(
                kind="aggregate",
                method="sampling",
                ledger=make_ledger(),
                detection_calls=1,
                plan_description="p",
                value=value,
                error_tolerance=None,
                confidence=0.95,
                samples_used=5,
                half_width=value / 3 if value else 0.0,
                correlation=0.5,
            )
            restored = result_from_json(
                json.loads(json.dumps(result_to_json(result)))
            )
            assert isinstance(restored, AggregateResult)
            assert restored.value == value  # bitwise, not approx
            assert result_fingerprint(restored) == result_fingerprint(result)

    def test_scrubbing_round_trips(self):
        result = ScrubbingQueryResult(
            kind="scrubbing",
            method="importance",
            ledger=make_ledger(),
            detection_calls=9,
            plan_description="p",
            frames=[3, 99, 1024],
            timestamps=[0.1, 3.3, 34.133333333333333],
            limit=3,
            satisfied=True,
            stop_reason="limit",
        )
        restored = result_from_json(json.loads(json.dumps(result_to_json(result))))
        assert isinstance(restored, ScrubbingQueryResult)
        assert restored.frames == result.frames
        assert restored.timestamps == result.timestamps
        assert result_fingerprint(restored) == result_fingerprint(result)

    def test_selection_with_records_and_features(self):
        result = SelectionResult(
            kind="selection",
            method="filtered_scan",
            ledger=make_ledger(),
            detection_calls=9,
            plan_description="p",
            records=[make_record(True), make_record(False)],
            matched_frames=[42],
            frames_scanned=100,
            frames_after_filters=60,
        )
        restored = result_from_json(json.loads(json.dumps(result_to_json(result))))
        assert isinstance(restored, SelectionResult)
        first = restored.records[0]
        assert first.mask == make_record().mask
        np.testing.assert_array_equal(first.features, make_record().features)
        assert first.features.dtype == np.float64
        assert restored.records[1].features is None
        assert result_fingerprint(restored) == result_fingerprint(result)

    def test_exact_round_trips(self):
        result = ExactResult(
            kind="exact",
            method="full_scan",
            ledger=make_ledger(),
            detection_calls=400,
            plan_description="p",
            records=[make_record()],
            value=17.0,
        )
        restored = result_from_json(json.loads(json.dumps(result_to_json(result))))
        assert isinstance(restored, ExactResult)
        assert restored.value == 17.0
        assert result_fingerprint(restored) == result_fingerprint(result)

    def test_unknown_result_type_rejected(self):
        with pytest.raises(ConfigurationError):
            result_from_json({"type": "mystery"})

    def test_fingerprint_ignores_wall_seconds_only(self):
        def build(wall: float, calls: int) -> QueryResult:
            ledger = ExecutionLedger()
            ledger.wall_seconds = wall
            ledger.detector_calls = calls
            return QueryResult(
                kind="aggregate",
                method="m",
                ledger=ledger,
                detection_calls=calls,
                plan_description="p",
            )

        assert result_fingerprint(build(1.0, 5)) == result_fingerprint(build(2.0, 5))
        assert result_fingerprint(build(1.0, 5)) != result_fingerprint(build(1.0, 6))


class TestHintsRoundTrip:
    def test_full_hints_round_trip(self):
        hints = QueryHints(
            scrubbing_indexed=True,
            selection_filter_classes=frozenset({"label", "spatial"}),
            stop_conditions=StopConditions(
                limit=5, ci_width=0.125, max_detector_calls=99
            ),
            batch_size=64,
            parallelism=4,
            backend="processes",
            use_index=False,
        )
        assert hints_from_json(hints_to_json(hints)) == hints

    def test_defaults_and_none(self):
        assert hints_from_json(None) is None
        assert hints_from_json({}) == QueryHints()
        assert hints_to_json(QueryHints()) == {}

    def test_unknown_field_rejected_typed(self):
        with pytest.raises(ConfigurationError, match="unknown hint fields"):
            hints_from_json({"turbo": True})

    def test_invalid_values_rejected_typed(self):
        with pytest.raises(ConfigurationError):
            hints_from_json({"stop_conditions": {"limit": 0}})
        with pytest.raises(ConfigurationError):
            hints_from_json({"selection_filter_classes": "label"})
        with pytest.raises(ConfigurationError):
            hints_from_json({"stop_conditions": [1, 2]})
