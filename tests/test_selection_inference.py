"""Tests for filter inference from selection query specs."""

import numpy as np
import pytest

from repro.frameql.analyzer import analyze
from repro.frameql.parser import parse
from repro.selection.inference import FilterInferenceInputs, infer_selection_plan


def _selection_spec(text):
    return analyze(parse(text))


@pytest.fixture(scope="module")
def inference_inputs(tiny_labeled_set):
    """Inference inputs for a red-bus query over the tiny labeled set."""
    heldout = tiny_labeled_set.heldout_recorded
    positives = np.zeros(heldout.num_frames, dtype=bool)
    for frame in range(heldout.num_frames):
        for det in heldout.result(frame).detections:
            if det.object_class == "bus" and det.color_name == "red":
                positives[frame] = True
                break
    return FilterInferenceInputs(
        train_video=tiny_labeled_set.train_video,
        heldout_video=tiny_labeled_set.heldout_video,
        train_features=tiny_labeled_set.train_features,
        heldout_features=tiny_labeled_set.heldout_features,
        train_presence=tiny_labeled_set.train_presence("bus"),
        heldout_presence=tiny_labeled_set.heldout_presence("bus"),
        heldout_positive_mask=positives,
    )


class TestTemporalInference:
    def test_track_duration_implies_subsampling(self, tiny_video, inference_inputs, fast_training_config):
        spec = _selection_spec(
            "SELECT * FROM tiny WHERE class = 'bus' AND redness(content) >= 17.5 "
            "GROUP BY trackid HAVING COUNT(*) > 15"
        )
        plan = infer_selection_plan(
            spec, tiny_video, inference_inputs,
            training_config=fast_training_config,
            enabled_filter_classes={"temporal"},
        )
        assert plan.filter_classes() == ["temporal"]
        # min_track_frames is 16, so the subsample step is (16 - 1) // 2 = 7.
        assert plan.filters[0].subsample_step == 7

    def test_time_range_predicate(self, tiny_video, inference_inputs, fast_training_config):
        spec = _selection_spec(
            "SELECT * FROM tiny WHERE class = 'bus' AND timestamp >= 2 AND timestamp < 5"
        )
        plan = infer_selection_plan(
            spec, tiny_video, inference_inputs,
            training_config=fast_training_config,
            enabled_filter_classes={"temporal"},
        )
        temporal = plan.filters[0]
        assert temporal.start_frame == tiny_video.frame_of_timestamp(2.0)
        assert temporal.end_frame == tiny_video.frame_of_timestamp(5.0)

    def test_no_temporal_constraint_no_filter(self, tiny_video, inference_inputs, fast_training_config):
        spec = _selection_spec("SELECT * FROM tiny WHERE class = 'bus'")
        plan = infer_selection_plan(
            spec, tiny_video, inference_inputs,
            training_config=fast_training_config,
            enabled_filter_classes={"temporal"},
        )
        assert plan.filters == []


class TestSpatialInference:
    def test_xmax_constraint_reduces_cost(self, tiny_video, inference_inputs, fast_training_config):
        spec = _selection_spec("SELECT * FROM tiny WHERE class = 'bus' AND xmax(mask) < 640")
        plan = infer_selection_plan(
            spec, tiny_video, inference_inputs,
            training_config=fast_training_config,
            enabled_filter_classes={"spatial"},
        )
        assert plan.filter_classes() == ["spatial"]
        assert plan.detection_cost_scale == pytest.approx(0.5)

    def test_no_spatial_constraint_no_filter(self, tiny_video, inference_inputs, fast_training_config):
        spec = _selection_spec("SELECT * FROM tiny WHERE class = 'bus'")
        plan = infer_selection_plan(
            spec, tiny_video, inference_inputs,
            training_config=fast_training_config,
            enabled_filter_classes={"spatial"},
        )
        assert plan.filters == []


class TestContentAndLabelInference:
    def test_redness_predicate_yields_content_filter(
        self, tiny_video, inference_inputs, fast_training_config
    ):
        if not inference_inputs.heldout_positive_mask.any():
            pytest.skip("no red buses on the tiny held-out day")
        spec = _selection_spec(
            "SELECT * FROM tiny WHERE class = 'bus' AND redness(content) >= 17.5"
        )
        plan = infer_selection_plan(
            spec, tiny_video, inference_inputs,
            training_config=fast_training_config,
            enabled_filter_classes={"content"},
        )
        # A content filter is only kept when it discards held-out frames, so
        # either it is absent (not useful) or it must be calibrated sensibly.
        for filter_ in plan.filters:
            assert filter_.filter_class == "content"
            assert filter_.estimated_selectivity < 1.0

    def test_label_filter_trained_and_calibrated(
        self, tiny_video, inference_inputs, fast_training_config
    ):
        spec = _selection_spec(
            "SELECT * FROM tiny WHERE class = 'bus' AND redness(content) >= 17.5"
        )
        plan = infer_selection_plan(
            spec, tiny_video, inference_inputs,
            training_config=fast_training_config,
            enabled_filter_classes={"label"},
        )
        # The label filter is kept only when its no-false-negative threshold
        # actually discards frames on the tiny held-out day; either way the
        # plan may contain nothing but label filters, and any kept filter must
        # genuinely prune.
        assert set(plan.filter_classes()) <= {"label"}
        for filter_ in plan.filters:
            assert filter_.estimated_selectivity < 1.0
            assert filter_.model.is_trained

    def test_no_false_negatives_on_heldout(
        self, tiny_video, tiny_labeled_set, inference_inputs, fast_training_config
    ):
        """Filters calibrated for no false negatives must pass every held-out positive."""
        if not inference_inputs.heldout_positive_mask.any():
            pytest.skip("no red buses on the tiny held-out day")
        spec = _selection_spec(
            "SELECT * FROM tiny WHERE class = 'bus' AND redness(content) >= 17.5"
        )
        plan = infer_selection_plan(
            spec, tiny_video, inference_inputs,
            training_config=fast_training_config,
            enabled_filter_classes={"content", "label"},
        )
        positives = np.nonzero(inference_inputs.heldout_positive_mask)[0]
        survivors = plan.apply(tiny_labeled_set.heldout_video, np.arange(
            tiny_labeled_set.heldout_video.num_frames
        ))
        assert set(positives.tolist()) <= set(survivors.tolist())

    def test_full_inference_combines_filter_classes(
        self, tiny_video, inference_inputs, fast_training_config
    ):
        spec = _selection_spec(
            "SELECT * FROM tiny WHERE class = 'bus' AND redness(content) >= 17.5 "
            "AND area(mask) > 100000 GROUP BY trackid HAVING COUNT(*) > 15"
        )
        plan = infer_selection_plan(
            spec, tiny_video, inference_inputs, training_config=fast_training_config
        )
        classes = set(plan.filter_classes())
        # The duration constraint always yields a temporal filter; statistical
        # filters (content/label) are included only when they can discard
        # held-out frames without false negatives.
        assert "temporal" in classes
        assert classes <= {"temporal", "content", "label"}
