"""Tests for typed query hints: validation, propagation into plans, and the
deprecation shim over the historical loose keyword arguments."""

import warnings

import pytest

from repro.api import QueryHints
from repro.api.hints import NO_HINTS, coerce_hints
from repro.errors import ConfigurationError
from repro.optimizer.scrubbing import ScrubbingQueryPlan
from repro.optimizer.selection import SelectionQueryPlan

SCRUB_QUERY = (
    "SELECT timestamp FROM tiny GROUP BY timestamp "
    "HAVING SUM(class='car') >= 2 LIMIT 3"
)
SELECT_QUERY = "SELECT * FROM tiny WHERE class = 'bus' AND redness(content) >= 17.5"


class TestQueryHintsValidation:
    def test_defaults(self):
        hints = QueryHints()
        assert hints.scrubbing_indexed is False
        assert hints.selection_filter_classes is None
        assert hints.describe() == "none"

    def test_filter_classes_normalized_to_frozenset(self):
        hints = QueryHints(selection_filter_classes={"label", "temporal"})
        assert hints.selection_filter_classes == frozenset({"label", "temporal"})
        assert hints.enabled_filter_classes == {"label", "temporal"}

    def test_unknown_filter_class_rejected(self):
        with pytest.raises(ConfigurationError, match="wavelet"):
            QueryHints(selection_filter_classes={"wavelet"})

    def test_string_rejected_as_filter_classes(self):
        with pytest.raises(ConfigurationError):
            QueryHints(selection_filter_classes="label")

    def test_hashable_for_cache_keys(self):
        a = QueryHints(selection_filter_classes={"label"})
        b = QueryHints(selection_filter_classes={"label"})
        assert a == b
        assert hash(a) == hash(b)

    def test_describe_mentions_active_hints(self):
        text = QueryHints(
            scrubbing_indexed=True, selection_filter_classes={"label"}
        ).describe()
        assert "scrubbing_indexed" in text
        assert "label" in text

    def test_positional_bool_rejected_with_clear_error(self, tiny_engine):
        """Legacy positional calls (second arg used to be scrubbing_indexed)."""
        with pytest.raises(TypeError, match="QueryHints"):
            tiny_engine.plan(SCRUB_QUERY, True)
        spec = tiny_engine.analyze(SCRUB_QUERY)
        with pytest.raises(TypeError, match="QueryHints"):
            tiny_engine.optimizer.plan(spec, True)
        with pytest.raises(TypeError, match="QueryHints"):
            tiny_engine.session().prepare(SCRUB_QUERY, hints=True)

    def test_coerce_hints_legacy_overrides(self):
        merged = coerce_hints(NO_HINTS, True, {"spatial"})
        assert merged.scrubbing_indexed is True
        assert merged.selection_filter_classes == frozenset({"spatial"})
        assert coerce_hints(None) is NO_HINTS


class TestHintPropagation:
    def test_scrubbing_indexed_reaches_plan(self, tiny_engine):
        _, plan = tiny_engine.plan(SCRUB_QUERY, hints=QueryHints(scrubbing_indexed=True))
        assert isinstance(plan, ScrubbingQueryPlan)
        assert plan.indexed is True
        _, default_plan = tiny_engine.plan(SCRUB_QUERY)
        assert default_plan.indexed is False

    def test_selection_filter_classes_reach_plan(self, tiny_engine):
        hints = QueryHints(selection_filter_classes={"label"})
        _, plan = tiny_engine.plan(SELECT_QUERY, hints=hints)
        assert isinstance(plan, SelectionQueryPlan)
        assert plan.enabled_filter_classes == {"label"}
        assert plan.hints is hints

    def test_empty_filter_set_disables_filters_end_to_end(self, tiny_engine):
        result = tiny_engine.session().execute(
            SELECT_QUERY, hints=QueryHints(selection_filter_classes=frozenset())
        )
        assert result.method == "exhaustive"

    def test_indexed_scrubbing_is_no_slower(self, tiny_engine):
        session = tiny_engine.session()
        normal = session.execute(SCRUB_QUERY)
        indexed = session.execute(SCRUB_QUERY, hints=QueryHints(scrubbing_indexed=True))
        assert indexed.runtime_seconds <= normal.runtime_seconds

    def test_hints_visible_in_explanation(self, tiny_engine):
        explanation = tiny_engine.session().explain(
            SELECT_QUERY, hints=QueryHints(selection_filter_classes={"label"})
        )
        assert "label" in explanation.hints_applied


class TestDeprecationShim:
    def test_engine_query_legacy_kwargs_warn(self, tiny_engine):
        with pytest.warns(DeprecationWarning, match="QueryHints"):
            tiny_engine.query(SCRUB_QUERY, scrubbing_indexed=True)
        with pytest.warns(DeprecationWarning, match="QueryHints"):
            tiny_engine.query(SELECT_QUERY, selection_filter_classes={"label"})

    def test_engine_plan_legacy_kwargs_warn_and_propagate(self, tiny_engine):
        with pytest.warns(DeprecationWarning):
            _, plan = tiny_engine.plan(SCRUB_QUERY, scrubbing_indexed=True)
        assert plan.indexed is True

    def test_optimizer_plan_legacy_kwargs_warn(self, tiny_engine):
        spec = tiny_engine.analyze(SELECT_QUERY)
        with pytest.warns(DeprecationWarning):
            plan = tiny_engine.optimizer.plan(spec, selection_filter_classes={"label"})
        assert plan.enabled_filter_classes == {"label"}

    def test_legacy_and_typed_paths_agree(self, tiny_engine):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = tiny_engine.query(SELECT_QUERY, selection_filter_classes=set())
        typed = tiny_engine.query(
            SELECT_QUERY, hints=QueryHints(selection_filter_classes=frozenset())
        )
        assert legacy.method == typed.method == "exhaustive"

    def test_modern_paths_do_not_warn(self, tiny_engine):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            tiny_engine.query(SCRUB_QUERY)
            tiny_engine.plan(SCRUB_QUERY, hints=QueryHints(scrubbing_indexed=True))
            tiny_engine.session().execute(SCRUB_QUERY)
