"""Tests for typed query hints: validation, propagation into plans, and the
``force_plan`` escape hatch over the cost-based optimizer."""

import warnings

import pytest

from repro.api import QueryHints
from repro.errors import ConfigurationError, PlanningError
from repro.optimizer.scrubbing import ScrubbingQueryPlan
from repro.optimizer.selection import SelectionQueryPlan

SCRUB_QUERY = (
    "SELECT timestamp FROM tiny GROUP BY timestamp "
    "HAVING SUM(class='car') >= 2 LIMIT 3"
)
SELECT_QUERY = "SELECT * FROM tiny WHERE class = 'bus' AND redness(content) >= 17.5"


class TestQueryHintsValidation:
    def test_defaults(self):
        hints = QueryHints()
        assert hints.scrubbing_indexed is False
        assert hints.selection_filter_classes is None
        assert hints.force_plan is None
        assert hints.describe() == "none"

    def test_filter_classes_normalized_to_frozenset(self):
        hints = QueryHints(selection_filter_classes={"label", "temporal"})
        assert hints.selection_filter_classes == frozenset({"label", "temporal"})
        assert hints.enabled_filter_classes == {"label", "temporal"}

    def test_unknown_filter_class_rejected(self):
        with pytest.raises(ConfigurationError, match="wavelet"):
            QueryHints(selection_filter_classes={"wavelet"})

    def test_string_rejected_as_filter_classes(self):
        with pytest.raises(ConfigurationError):
            QueryHints(selection_filter_classes="label")

    def test_empty_force_plan_rejected(self):
        with pytest.raises(ConfigurationError, match="force_plan"):
            QueryHints(force_plan="")
        with pytest.raises(ConfigurationError, match="force_plan"):
            QueryHints(force_plan=True)

    def test_hashable_for_cache_keys(self):
        a = QueryHints(selection_filter_classes={"label"}, force_plan="filtered")
        b = QueryHints(selection_filter_classes={"label"}, force_plan="filtered")
        assert a == b
        assert hash(a) == hash(b)

    def test_describe_mentions_active_hints(self):
        text = QueryHints(
            scrubbing_indexed=True,
            selection_filter_classes={"label"},
            force_plan="importance",
        ).describe()
        assert "scrubbing_indexed" in text
        assert "label" in text
        assert "force_plan=importance" in text

    def test_positional_bool_rejected_with_clear_error(self, tiny_engine):
        """Legacy positional calls (second arg used to be scrubbing_indexed)."""
        with pytest.raises(TypeError, match="QueryHints"):
            tiny_engine.plan(SCRUB_QUERY, True)
        spec = tiny_engine.analyze(SCRUB_QUERY)
        with pytest.raises(TypeError, match="QueryHints"):
            tiny_engine.optimizer.plan(spec, True)
        with pytest.raises(TypeError, match="QueryHints"):
            tiny_engine.session().prepare(SCRUB_QUERY, hints=True)

    def test_legacy_keyword_arguments_removed(self, tiny_engine):
        """The deprecated kwarg shims are gone, not silently ignored."""
        with pytest.raises(TypeError):
            tiny_engine.query(SCRUB_QUERY, scrubbing_indexed=True)
        with pytest.raises(TypeError):
            tiny_engine.query(SELECT_QUERY, selection_filter_classes={"label"})
        with pytest.raises(TypeError):
            tiny_engine.plan(SCRUB_QUERY, scrubbing_indexed=True)
        spec = tiny_engine.analyze(SELECT_QUERY)
        with pytest.raises(TypeError):
            tiny_engine.optimizer.plan(spec, selection_filter_classes={"label"})


class TestHintPropagation:
    def test_scrubbing_indexed_reaches_plan(self, tiny_engine):
        _, plan = tiny_engine.plan(SCRUB_QUERY, hints=QueryHints(scrubbing_indexed=True))
        assert isinstance(plan, ScrubbingQueryPlan)
        assert plan.indexed is True
        _, default_plan = tiny_engine.plan(SCRUB_QUERY)
        assert default_plan.indexed is False

    def test_selection_filter_classes_reach_plan(self, tiny_engine):
        hints = QueryHints(selection_filter_classes={"label"})
        _, plan = tiny_engine.plan(SELECT_QUERY, hints=hints)
        assert isinstance(plan, SelectionQueryPlan)
        assert plan.enabled_filter_classes == {"label"}
        assert plan.hints is hints

    def test_empty_filter_set_disables_filters_end_to_end(self, tiny_engine):
        result = tiny_engine.session().execute(
            SELECT_QUERY, hints=QueryHints(selection_filter_classes=frozenset())
        )
        assert result.method == "exhaustive"

    def test_indexed_scrubbing_is_no_slower(self, tiny_engine):
        session = tiny_engine.session()
        normal = session.execute(SCRUB_QUERY)
        indexed = session.execute(SCRUB_QUERY, hints=QueryHints(scrubbing_indexed=True))
        assert indexed.runtime_seconds <= normal.runtime_seconds

    def test_hints_visible_in_explanation(self, tiny_engine):
        explanation = tiny_engine.session().explain(
            SELECT_QUERY, hints=QueryHints(selection_filter_classes={"label"})
        )
        assert "label" in explanation.hints_applied

    def test_modern_paths_do_not_warn(self, tiny_engine):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            tiny_engine.query(SCRUB_QUERY)
            tiny_engine.plan(SCRUB_QUERY, hints=QueryHints(scrubbing_indexed=True))
            tiny_engine.session().execute(SCRUB_QUERY)


class TestForcePlan:
    def test_force_plan_selects_named_candidate(self, tiny_engine):
        _, plan = tiny_engine.plan(
            SCRUB_QUERY, hints=QueryHints(force_plan="exhaustive")
        )
        assert isinstance(plan, ScrubbingQueryPlan)
        assert plan.strategy == "exhaustive"

    def test_force_plan_unknown_candidate_raises(self, tiny_engine):
        with pytest.raises(PlanningError, match="force_plan"):
            tiny_engine.plan(SCRUB_QUERY, hints=QueryHints(force_plan="warp-drive"))

    def test_forced_exhaustive_scrubbing_matches_fallback_semantics(self, tiny_engine):
        forced = tiny_engine.query(
            SCRUB_QUERY, hints=QueryHints(force_plan="exhaustive")
        )
        assert forced.method == "exhaustive"
        counts = tiny_engine._recorded["tiny"].counts("car")
        assert all(counts[f] >= 2 for f in forced.frames)

    def test_forced_selection_exhaustive(self, tiny_engine):
        result = tiny_engine.query(
            SELECT_QUERY, hints=QueryHints(force_plan="exhaustive")
        )
        assert result.method == "exhaustive"

    def test_force_plan_visible_in_explanation(self, tiny_engine):
        explanation = tiny_engine.session().explain(
            SCRUB_QUERY, hints=QueryHints(force_plan="exhaustive")
        )
        assert "force_plan=exhaustive" in explanation.hints_applied
        chosen = [c for c in explanation.candidates if c.chosen]
        assert [c.name for c in chosen] == ["exhaustive"]
