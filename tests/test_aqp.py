"""Tests for the AQP substrate: estimators, adaptive sampling, control variates."""

import numpy as np
import pytest

from repro.aqp.control_variates import control_variate_estimate, optimal_coefficient
from repro.aqp.estimators import (
    clt_half_width,
    epsilon_net_minimum_samples,
    finite_population_correction,
    sample_standard_deviation,
)
from repro.aqp.sampling import AdaptiveSamplingConfig, adaptive_sample


class TestEstimators:
    def test_sample_std_matches_numpy(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        assert sample_standard_deviation(values) == pytest.approx(np.std(values, ddof=1))

    def test_sample_std_small_samples(self):
        assert sample_standard_deviation(np.array([])) == 0.0
        assert sample_standard_deviation(np.array([5.0])) == 0.0

    def test_finite_population_correction_bounds(self):
        assert finite_population_correction(1, 1000) == pytest.approx(1.0, abs=1e-3)
        assert finite_population_correction(1000, 1000) == 0.0
        assert finite_population_correction(500, 1000) < 1.0

    def test_clt_half_width_shrinks_with_samples(self):
        wide = clt_half_width(1.0, 100, 0.95)
        narrow = clt_half_width(1.0, 10000, 0.95)
        assert narrow < wide

    def test_clt_half_width_grows_with_confidence(self):
        assert clt_half_width(1.0, 100, 0.99) > clt_half_width(1.0, 100, 0.9)

    def test_clt_half_width_invalid_confidence(self):
        with pytest.raises(ValueError):
            clt_half_width(1.0, 100, 1.5)

    def test_clt_half_width_zero_samples_is_infinite(self):
        assert clt_half_width(1.0, 0, 0.95) == float("inf")

    def test_epsilon_net_minimum(self):
        assert epsilon_net_minimum_samples(value_range=8.0, error_tolerance=0.1) == 80
        assert epsilon_net_minimum_samples(value_range=0.0, error_tolerance=0.1) == 1

    def test_epsilon_net_invalid_tolerance(self):
        with pytest.raises(ValueError):
            epsilon_net_minimum_samples(1.0, 0.0)


class TestAdaptiveSampling:
    def _population(self, n=20000, seed=0):
        rng = np.random.default_rng(seed)
        return rng.poisson(1.5, size=n).astype(float)

    def test_estimate_within_tolerance(self, rng):
        population = self._population()
        result = adaptive_sample(
            sample_fn=lambda idx: population[idx],
            population_size=population.size,
            error_tolerance=0.05,
            confidence=0.95,
            value_range=float(population.max() + 1),
            rng=rng,
        )
        assert result.converged
        assert abs(result.estimate - population.mean()) < 0.1

    def test_uses_fewer_samples_than_population(self, rng):
        population = self._population()
        result = adaptive_sample(
            sample_fn=lambda idx: population[idx],
            population_size=population.size,
            error_tolerance=0.1,
            confidence=0.95,
            value_range=float(population.max() + 1),
            rng=rng,
        )
        assert result.samples_used < population.size / 10

    def test_tighter_tolerance_needs_more_samples(self):
        population = self._population()
        results = {}
        for tolerance in (0.1, 0.01):
            results[tolerance] = adaptive_sample(
                sample_fn=lambda idx: population[idx],
                population_size=population.size,
                error_tolerance=tolerance,
                confidence=0.95,
                value_range=float(population.max() + 1),
                rng=np.random.default_rng(0),
            )
        assert results[0.01].samples_used > results[0.1].samples_used

    def test_constant_population_converges_immediately(self, rng):
        population = np.full(5000, 3.0)
        result = adaptive_sample(
            sample_fn=lambda idx: population[idx],
            population_size=population.size,
            error_tolerance=0.05,
            confidence=0.95,
            value_range=4.0,
            rng=rng,
        )
        assert result.converged
        assert result.estimate == pytest.approx(3.0)
        assert result.rounds == 1

    def test_census_of_population_is_exact(self, rng):
        # Sampling the entire (tiny) population: the finite population
        # correction certifies the exact answer.
        population = np.array([0.0, 100.0] * 25)
        result = adaptive_sample(
            sample_fn=lambda idx: population[idx],
            population_size=population.size,
            error_tolerance=0.001,
            confidence=0.95,
            value_range=101.0,
            rng=rng,
        )
        assert result.converged
        assert result.samples_used == population.size
        assert result.estimate == pytest.approx(population.mean())

    def test_sample_cap_prevents_convergence(self, rng):
        population = np.array([0.0, 100.0] * 500)
        result = adaptive_sample(
            sample_fn=lambda idx: population[idx],
            population_size=population.size,
            error_tolerance=0.001,
            confidence=0.95,
            value_range=101.0,
            rng=rng,
            config=AdaptiveSamplingConfig(max_samples=50),
        )
        assert not result.converged
        assert result.samples_used == 50

    def test_sample_indices_unique(self, rng):
        population = self._population(n=2000)
        result = adaptive_sample(
            sample_fn=lambda idx: population[idx],
            population_size=population.size,
            error_tolerance=0.05,
            confidence=0.95,
            value_range=float(population.max() + 1),
            rng=rng,
        )
        assert len(np.unique(result.sampled_indices)) == result.samples_used

    def test_invalid_arguments(self, rng):
        with pytest.raises(ValueError):
            adaptive_sample(lambda i: i, 0, 0.1, 0.95, 1.0, rng)
        with pytest.raises(ValueError):
            adaptive_sample(lambda i: i, 10, -0.1, 0.95, 1.0, rng)
        with pytest.raises(ValueError):
            AdaptiveSamplingConfig(growth_fraction=0.0)
        with pytest.raises(ValueError):
            AdaptiveSamplingConfig(min_batch=0)


class TestControlVariates:
    def _correlated_data(self, n=20000, correlation_noise=0.3, seed=0):
        rng = np.random.default_rng(seed)
        truth = rng.poisson(1.5, size=n).astype(float)
        auxiliary = truth + rng.normal(0.0, correlation_noise, size=n)
        return truth, auxiliary

    def test_optimal_coefficient_for_identical_variable(self):
        values = np.random.default_rng(0).normal(size=500)
        assert optimal_coefficient(values, values) == pytest.approx(-1.0)

    def test_optimal_coefficient_uncorrelated_is_near_zero(self):
        rng = np.random.default_rng(0)
        m = rng.normal(size=5000)
        t = rng.normal(size=5000)
        assert abs(optimal_coefficient(m, t)) < 0.1

    def test_optimal_coefficient_degenerate_inputs(self):
        assert optimal_coefficient(np.array([1.0]), np.array([2.0])) == 0.0
        assert optimal_coefficient(np.ones(10), np.ones(10)) == 0.0

    def test_optimal_coefficient_length_mismatch(self):
        with pytest.raises(ValueError):
            optimal_coefficient(np.ones(3), np.ones(4))

    def test_estimate_is_accurate(self, rng):
        truth, auxiliary = self._correlated_data()
        result = control_variate_estimate(
            sample_fn=lambda idx: truth[idx],
            auxiliary_values=auxiliary,
            error_tolerance=0.05,
            confidence=0.95,
            value_range=float(truth.max() + 1),
            rng=rng,
        )
        assert result.converged
        assert abs(result.estimate - truth.mean()) < 0.1

    def test_control_variates_beat_plain_sampling(self):
        """The headline claim of Section 6.3: fewer samples for the same bound."""
        truth, auxiliary = self._correlated_data(correlation_noise=0.2)
        plain_samples = []
        cv_samples = []
        for seed in range(5):
            plain = adaptive_sample(
                sample_fn=lambda idx: truth[idx],
                population_size=truth.size,
                error_tolerance=0.03,
                confidence=0.95,
                value_range=float(truth.max() + 1),
                rng=np.random.default_rng(seed),
            )
            cv = control_variate_estimate(
                sample_fn=lambda idx: truth[idx],
                auxiliary_values=auxiliary,
                error_tolerance=0.03,
                confidence=0.95,
                value_range=float(truth.max() + 1),
                rng=np.random.default_rng(seed),
            )
            plain_samples.append(plain.samples_used)
            cv_samples.append(cv.samples_used)
        assert np.mean(cv_samples) < np.mean(plain_samples)

    def test_correlation_reported(self, rng):
        truth, auxiliary = self._correlated_data(correlation_noise=0.2)
        result = control_variate_estimate(
            sample_fn=lambda idx: truth[idx],
            auxiliary_values=auxiliary,
            error_tolerance=0.05,
            confidence=0.95,
            value_range=float(truth.max() + 1),
            rng=rng,
        )
        assert result.correlation > 0.8

    def test_fixed_coefficient_mode(self, rng):
        truth, auxiliary = self._correlated_data()
        result = control_variate_estimate(
            sample_fn=lambda idx: truth[idx],
            auxiliary_values=auxiliary,
            error_tolerance=0.05,
            confidence=0.95,
            value_range=float(truth.max() + 1),
            rng=rng,
            fixed_coefficient=-1.0,
        )
        assert result.coefficient == -1.0
        assert abs(result.estimate - truth.mean()) < 0.1

    def test_useless_auxiliary_still_unbiased(self, rng):
        rng_data = np.random.default_rng(0)
        truth = rng_data.poisson(2.0, size=10000).astype(float)
        auxiliary = rng_data.normal(size=10000)  # uncorrelated
        result = control_variate_estimate(
            sample_fn=lambda idx: truth[idx],
            auxiliary_values=auxiliary,
            error_tolerance=0.05,
            confidence=0.95,
            value_range=float(truth.max() + 1),
            rng=rng,
        )
        assert abs(result.estimate - truth.mean()) < 0.15

    def test_invalid_arguments(self, rng):
        with pytest.raises(ValueError):
            control_variate_estimate(
                sample_fn=lambda idx: idx,
                auxiliary_values=np.array([]),
                error_tolerance=0.1,
                confidence=0.95,
                value_range=1.0,
                rng=rng,
            )
        with pytest.raises(ValueError):
            control_variate_estimate(
                sample_fn=lambda idx: idx,
                auxiliary_values=np.ones(10),
                error_tolerance=0.0,
                confidence=0.95,
                value_range=1.0,
                rng=rng,
            )
