"""Tests for the physical plans and the rule-based optimizer."""

import numpy as np
import pytest

from repro.core.config import AggregateMethod, BlazeItConfig
from repro.core.context import ExecutionContext
from repro.core.results import (
    AggregateResult,
    ExactResult,
    ScrubbingQueryResult,
    SelectionResult,
)
from repro.errors import PlanningError, UnknownUDFError
from repro.frameql.analyzer import analyze
from repro.frameql.parser import parse
from repro.optimizer.aggregates import AggregateQueryPlan
from repro.optimizer.exact import ExactQueryPlan
from repro.optimizer.rules import RuleBasedOptimizer
from repro.optimizer.scrubbing import ScrubbingQueryPlan
from repro.optimizer.selection import SelectionQueryPlan
from repro.udf.registry import default_udf_registry


def _spec(text):
    return analyze(parse(text))


@pytest.fixture()
def context(tiny_video, tiny_labeled_set, tiny_recorded, detector, engine_config):
    return ExecutionContext(
        video=tiny_video,
        detector=detector,
        udf_registry=default_udf_registry(),
        config=engine_config,
        labeled_set=tiny_labeled_set,
        recorded=tiny_recorded,
        rng=np.random.default_rng(0),
    )


class TestExecutionContext:
    def test_detect_charges_cost(self, context, detector):
        from repro.metrics.runtime import RuntimeLedger

        ledger = RuntimeLedger()
        context.detect(0, ledger)
        assert ledger.total_seconds == pytest.approx(detector.cost.seconds_per_call)

    def test_detect_cost_scale(self, context, detector):
        from repro.metrics.runtime import RuntimeLedger

        ledger = RuntimeLedger()
        context.detect(0, ledger, cost_scale=0.5)
        assert ledger.total_seconds == pytest.approx(
            detector.cost.seconds_per_call * 0.5
        )

    def test_detect_counts_match_recording(self, context, tiny_recorded):
        counts = context.detect_counts(np.array([0, 1, 2]), "car")
        np.testing.assert_array_equal(counts, tiny_recorded.counts("car")[:3])

    def test_test_features_cached(self, context):
        assert context.test_features() is context.test_features()

    def test_require_labeled_set_raises_without_one(self, tiny_video, detector, engine_config):
        bare = ExecutionContext(
            video=tiny_video,
            detector=detector,
            udf_registry=default_udf_registry(),
            config=engine_config,
        )
        with pytest.raises(RuntimeError):
            bare.require_labeled_set()


class TestAggregatePlan:
    def test_auto_mode_is_accurate(self, context, tiny_recorded):
        plan = AggregateQueryPlan(
            _spec("SELECT FCOUNT(*) FROM tiny WHERE class='car' ERROR WITHIN 0.1")
        )
        result = plan.execute(context)
        assert isinstance(result, AggregateResult)
        truth = tiny_recorded.mean_count("car")
        assert abs(result.value - truth) <= 0.25
        assert result.method in ("specialized_rewrite", "control_variates", "naive_aqp")

    def test_exact_mode(self, context, tiny_recorded, tiny_video, engine_config):
        context.config = BlazeItConfig(
            training=engine_config.training,
            aggregate_method=AggregateMethod.EXACT,
            min_training_positives=engine_config.min_training_positives,
        )
        plan = AggregateQueryPlan(
            _spec("SELECT FCOUNT(*) FROM tiny WHERE class='car' ERROR WITHIN 0.1")
        )
        result = plan.execute(context)
        assert result.method == "exact"
        assert result.detection_calls == tiny_video.num_frames
        assert result.value == pytest.approx(tiny_recorded.mean_count("car"))

    def test_no_error_bound_falls_back_to_exact(self, context, tiny_video):
        plan = AggregateQueryPlan(_spec("SELECT FCOUNT(*) FROM tiny WHERE class='car'"))
        result = plan.execute(context)
        assert result.method == "exact"
        assert result.detection_calls == tiny_video.num_frames

    def test_forced_aqp(self, context, engine_config):
        context.config = BlazeItConfig(
            training=engine_config.training,
            aggregate_method=AggregateMethod.NAIVE_AQP,
            min_training_positives=engine_config.min_training_positives,
        )
        plan = AggregateQueryPlan(
            _spec("SELECT FCOUNT(*) FROM tiny WHERE class='car' ERROR WITHIN 0.2")
        )
        result = plan.execute(context)
        assert result.method == "naive_aqp"
        assert 0 < result.detection_calls <= context.video.num_frames

    def test_forced_rewrite_uses_no_detection(self, context, engine_config):
        context.config = BlazeItConfig(
            training=engine_config.training,
            aggregate_method=AggregateMethod.SPECIALIZED_REWRITE,
            min_training_positives=engine_config.min_training_positives,
        )
        plan = AggregateQueryPlan(
            _spec("SELECT FCOUNT(*) FROM tiny WHERE class='car' ERROR WITHIN 0.1")
        )
        result = plan.execute(context)
        assert result.method == "specialized_rewrite"
        assert result.detection_calls == 0
        assert result.ledger.call_count("specialized_nn") >= context.video.num_frames

    def test_forced_control_variates(self, context, engine_config):
        context.config = BlazeItConfig(
            training=engine_config.training,
            aggregate_method=AggregateMethod.CONTROL_VARIATES,
            min_training_positives=engine_config.min_training_positives,
        )
        plan = AggregateQueryPlan(
            _spec("SELECT FCOUNT(*) FROM tiny WHERE class='car' ERROR WITHIN 0.1")
        )
        result = plan.execute(context)
        assert result.method == "control_variates"
        assert result.correlation is not None
        assert 0 < result.detection_calls < context.video.num_frames

    def test_optimized_is_cheaper_than_exact(self, context, engine_config):
        optimized = AggregateQueryPlan(
            _spec("SELECT FCOUNT(*) FROM tiny WHERE class='car' ERROR WITHIN 0.1")
        ).execute(context)
        context.config = BlazeItConfig(
            training=engine_config.training,
            aggregate_method=AggregateMethod.EXACT,
            min_training_positives=engine_config.min_training_positives,
        )
        exact = AggregateQueryPlan(
            _spec("SELECT FCOUNT(*) FROM tiny WHERE class='car' ERROR WITHIN 0.1")
        ).execute(context)
        assert optimized.runtime_seconds < exact.runtime_seconds

    def test_count_aggregate_scales_by_frames(self, context, tiny_video, engine_config):
        context.config = BlazeItConfig(
            training=engine_config.training,
            aggregate_method=AggregateMethod.EXACT,
            min_training_positives=engine_config.min_training_positives,
        )
        fcount = AggregateQueryPlan(
            _spec("SELECT FCOUNT(*) FROM tiny WHERE class='car' ERROR WITHIN 0.1")
        ).execute(context)
        count = AggregateQueryPlan(
            _spec("SELECT COUNT(*) FROM tiny WHERE class='car' ERROR WITHIN 0.1")
        ).execute(context)
        assert count.value == pytest.approx(fcount.value * tiny_video.num_frames)

    def test_count_distinct_uses_tracker(self, context, tiny_video):
        plan = AggregateQueryPlan(
            _spec("SELECT COUNT(DISTINCT trackid) FROM tiny WHERE class='car'")
        )
        result = plan.execute(context)
        assert result.method == "exact"
        true_distinct = tiny_video.distinct_count("car")
        assert 0 < result.value <= 3 * true_distinct + 5

    def test_missing_class_predicate_rejected(self):
        with pytest.raises(PlanningError):
            AggregateQueryPlan(_spec("SELECT FCOUNT(*) FROM tiny ERROR WITHIN 0.1"))

    def test_unknown_class_falls_back_to_aqp(self, context):
        plan = AggregateQueryPlan(
            _spec("SELECT FCOUNT(*) FROM tiny WHERE class='bear' ERROR WITHIN 0.1")
        )
        result = plan.execute(context)
        # No bears in the training data: the paper's rule is to default to AQP.
        assert result.method == "naive_aqp"
        assert result.value == pytest.approx(0.0, abs=0.05)


class TestScrubbingPlan:
    def test_finds_requested_events(self, context, tiny_recorded):
        plan = ScrubbingQueryPlan(
            _spec(
                "SELECT timestamp FROM tiny GROUP BY timestamp "
                "HAVING SUM(class='car') >= 2 LIMIT 3"
            )
        )
        result = plan.execute(context)
        assert isinstance(result, ScrubbingQueryResult)
        counts = tiny_recorded.counts("car")
        for frame in result.frames:
            assert counts[frame] >= 2

    def test_respects_limit_and_gap(self, context):
        plan = ScrubbingQueryPlan(
            _spec(
                "SELECT timestamp FROM tiny GROUP BY timestamp "
                "HAVING SUM(class='car') >= 1 LIMIT 4 GAP 50"
            )
        )
        result = plan.execute(context)
        assert len(result.frames) <= 4
        frames = sorted(result.frames)
        assert all(b - a >= 50 for a, b in zip(frames, frames[1:], strict=False))

    def test_timestamps_match_frames(self, context, tiny_video):
        plan = ScrubbingQueryPlan(
            _spec(
                "SELECT timestamp FROM tiny GROUP BY timestamp "
                "HAVING SUM(class='car') >= 1 LIMIT 2"
            )
        )
        result = plan.execute(context)
        for frame, timestamp in zip(result.frames, result.timestamps, strict=True):
            assert timestamp == pytest.approx(frame / tiny_video.fps)

    def test_indexed_mode_is_cheaper(self, context):
        spec_text = (
            "SELECT timestamp FROM tiny GROUP BY timestamp "
            "HAVING SUM(class='car') >= 2 LIMIT 3"
        )
        normal = ScrubbingQueryPlan(_spec(spec_text), indexed=False).execute(context)
        indexed = ScrubbingQueryPlan(_spec(spec_text), indexed=True).execute(context)
        assert indexed.runtime_seconds < normal.runtime_seconds
        assert set(indexed.frames) == set(normal.frames)

    def test_no_training_instances_falls_back_to_exhaustive(self, context):
        plan = ScrubbingQueryPlan(
            _spec(
                "SELECT timestamp FROM tiny GROUP BY timestamp "
                "HAVING SUM(class='car') >= 50 LIMIT 1"
            )
        )
        result = plan.execute(context)
        assert result.method == "exhaustive"
        assert result.frames == []
        assert not result.satisfied

    def test_invalid_spec_rejected(self):
        spec = _spec(
            "SELECT timestamp FROM tiny GROUP BY timestamp "
            "HAVING SUM(class='car') >= 1 LIMIT 5"
        )
        spec.limit = 0
        with pytest.raises(PlanningError):
            ScrubbingQueryPlan(spec)


class TestSelectionPlan:
    def test_red_bus_query_returns_matching_records(self, context):
        plan = SelectionQueryPlan(
            _spec(
                "SELECT * FROM tiny WHERE class = 'bus' AND redness(content) >= 17.5"
            )
        )
        result = plan.execute(context)
        assert isinstance(result, SelectionResult)
        for record in result.records:
            assert record.object_class == "bus"
            assert record.color_name == "red"
            assert record.trackid is not None

    def test_filtered_plan_cheaper_than_exhaustive(self, context):
        # A selection for large buses: the positives are clearly visible, so
        # the inferred label filter prunes most frames before detection.
        text = "SELECT timestamp FROM tiny WHERE class = 'bus' AND area(mask) > 100000"
        filtered = SelectionQueryPlan(_spec(text)).execute(context)
        exhaustive = SelectionQueryPlan(
            _spec(text), enabled_filter_classes=set()
        ).execute(context)
        assert filtered.runtime_seconds < exhaustive.runtime_seconds
        assert exhaustive.method == "exhaustive"
        # The filtered plan may only lose frames to filter false negatives,
        # never gain spurious ones.
        assert set(filtered.matched_frames) <= set(exhaustive.matched_frames)

    def test_no_false_positives(self, context, tiny_recorded):
        """Every returned frame must truly contain a matching detection."""
        text = "SELECT * FROM tiny WHERE class = 'bus' AND redness(content) >= 17.5"
        result = SelectionQueryPlan(_spec(text)).execute(context)
        for frame in result.matched_frames:
            detections = tiny_recorded.result(frame).detections
            assert any(
                d.object_class == "bus" and d.color_name == "red" for d in detections
            )

    def test_min_area_respected(self, context):
        result = SelectionQueryPlan(
            _spec("SELECT * FROM tiny WHERE class = 'bus' AND area(mask) > 200000")
        ).execute(context)
        for record in result.records:
            assert record.mask.area > 200000

    def test_invalid_spec_rejected(self):
        spec = _spec("SELECT timestamp FROM tiny WHERE class = 'car'")
        spec.object_class = None
        with pytest.raises(PlanningError):
            SelectionQueryPlan(spec)


class TestExactPlanAndRules:
    def test_exact_plan_materialises_records(self, context):
        plan = ExactQueryPlan(_spec("SELECT * FROM tiny"))
        result = plan.execute(context)
        assert isinstance(result, ExactResult)
        assert result.detection_calls == context.video.num_frames
        assert result.records, "expected at least one record in the tiny video"
        assert all(r.trackid is not None for r in result.records)

    def test_rules_map_spec_to_plan(self):
        optimizer = RuleBasedOptimizer(default_udf_registry())
        assert isinstance(
            optimizer.plan(_spec("SELECT FCOUNT(*) FROM v WHERE class='car' ERROR WITHIN 0.1")),
            AggregateQueryPlan,
        )
        assert isinstance(
            optimizer.plan(
                _spec(
                    "SELECT timestamp FROM v GROUP BY timestamp "
                    "HAVING SUM(class='car')>=1 LIMIT 5"
                )
            ),
            ScrubbingQueryPlan,
        )
        assert isinstance(
            optimizer.plan(_spec("SELECT * FROM v WHERE class='bus' AND redness(content) >= 10")),
            SelectionQueryPlan,
        )
        assert isinstance(optimizer.plan(_spec("SELECT * FROM v")), ExactQueryPlan)

    def test_rules_reject_unknown_udf(self):
        optimizer = RuleBasedOptimizer(default_udf_registry())
        with pytest.raises(UnknownUDFError):
            optimizer.plan(
                _spec("SELECT * FROM v WHERE class='car' AND squareness(content) > 3")
            )

    def test_plan_descriptions_are_informative(self):
        optimizer = RuleBasedOptimizer(default_udf_registry())
        plan = optimizer.plan(
            _spec("SELECT FCOUNT(*) FROM v WHERE class='car' ERROR WITHIN 0.1")
        )
        assert "car" in plan.describe()
