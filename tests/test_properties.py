"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aqp.control_variates import optimal_coefficient
from repro.aqp.estimators import clt_half_width, epsilon_net_minimum_samples
from repro.aqp.sampling import adaptive_sample
from repro.detection.base import Detection
from repro.detection.nms import non_max_suppression
from repro.frameql.lexer import tokenize
from repro.frameql.parser import parse
from repro.metrics.accuracy import false_negative_rate, precision_recall
from repro.metrics.runtime import OperatorCost, RuntimeLedger
from repro.specialization.calibration import calibrate_no_false_negative_threshold
from repro.video.geometry import BoundingBox


# -- geometry -----------------------------------------------------------------------

box_strategy = st.builds(
    lambda x, y, w, h: BoundingBox(x, y, x + w, y + h),
    st.floats(-1000, 1000, allow_nan=False),
    st.floats(-1000, 1000, allow_nan=False),
    st.floats(0, 500, allow_nan=False),
    st.floats(0, 500, allow_nan=False),
)


class TestGeometryProperties:
    @given(box_strategy, box_strategy)
    def test_iou_symmetric_and_bounded(self, a, b):
        iou_ab = a.iou(b)
        iou_ba = b.iou(a)
        assert iou_ab == pytest.approx(iou_ba, abs=1e-9)
        assert 0.0 <= iou_ab <= 1.0 + 1e-9

    @given(box_strategy)
    def test_iou_with_self_is_one_or_degenerate(self, box):
        if box.area > 0:
            assert box.iou(box) == pytest.approx(1.0)
        else:
            assert box.iou(box) == 0.0

    @given(box_strategy, box_strategy)
    def test_intersection_no_larger_than_either_area(self, a, b):
        inter = a.intersection(b)
        assert inter <= a.area + 1e-9
        assert inter <= b.area + 1e-9

    @given(box_strategy, st.floats(-200, 200), st.floats(-200, 200))
    def test_translation_preserves_area_and_iou(self, box, dx, dy):
        moved = box.translate(dx, dy)
        assert moved.area == pytest.approx(box.area, rel=1e-9, abs=1e-6)

    @given(box_strategy, st.floats(0, 100))
    def test_expand_never_shrinks(self, box, margin):
        assert box.expand(margin).area >= box.area - 1e-9


# -- NMS ---------------------------------------------------------------------------------


detection_strategy = st.builds(
    lambda x, y, w, h, conf: Detection(
        frame_index=0,
        timestamp=0.0,
        object_class="car",
        box=BoundingBox(x, y, x + w, y + h),
        confidence=conf,
    ),
    st.floats(0, 500, allow_nan=False),
    st.floats(0, 500, allow_nan=False),
    st.floats(1, 100, allow_nan=False),
    st.floats(1, 100, allow_nan=False),
    st.floats(0.01, 0.99, allow_nan=False),
)


class TestNMSProperties:
    @given(st.lists(detection_strategy, max_size=15))
    def test_output_is_subset_and_no_larger(self, detections):
        kept = non_max_suppression(detections, iou_threshold=0.5)
        assert len(kept) <= len(detections)
        assert all(k in detections for k in kept)

    @given(st.lists(detection_strategy, max_size=15))
    def test_kept_detections_mutually_compatible(self, detections):
        kept = non_max_suppression(detections, iou_threshold=0.5)
        for i, a in enumerate(kept):
            for b in kept[i + 1 :]:
                assert a.box.iou(b.box) <= 0.5 + 1e-9

    @given(st.lists(detection_strategy, max_size=10))
    def test_idempotent(self, detections):
        once = non_max_suppression(detections, iou_threshold=0.5)
        twice = non_max_suppression(once, iou_threshold=0.5)
        assert once == twice


# -- runtime ledger ----------------------------------------------------------------------------


class TestLedgerProperties:
    @given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 50)), max_size=30))
    def test_total_equals_sum_of_breakdown(self, charges):
        ledger = RuntimeLedger()
        cost = {name: OperatorCost(name, 0.25) for name in "abc"}
        for name, count in charges:
            ledger.charge(cost[name], count)
        assert ledger.total_seconds == pytest.approx(sum(ledger.breakdown().values()))
        expected_calls = sum(count for _, count in charges)
        assert sum(ledger.calls.values()) == expected_calls


# -- FrameQL -----------------------------------------------------------------------------------


identifier = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: s.upper()
    not in {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "LIMIT", "GAP",
        "ERROR", "WITHIN", "AT", "CONFIDENCE", "FPR", "FNR", "AND", "OR",
        "NOT", "AS", "DISTINCT",
    }
)


class TestFrameQLProperties:
    @given(
        identifier,
        st.sampled_from(["car", "bus", "boat", "person"]),
        st.floats(0.01, 0.5, allow_nan=False),
        st.sampled_from([0.9, 0.95, 0.99]),
    )
    def test_aggregate_query_round_trip(self, video, object_class, error, confidence):
        text = (
            f"SELECT FCOUNT(*) FROM {video} WHERE class = '{object_class}' "
            f"ERROR WITHIN {error} AT CONFIDENCE {confidence * 100:g}%"
        )
        query = parse(text)
        assert query.video == video
        assert query.error_within == pytest.approx(error)
        assert query.confidence == pytest.approx(confidence)
        # str() must itself re-parse to an equivalent query.
        reparsed = parse(str(query))
        assert reparsed.video == query.video
        assert reparsed.error_within == pytest.approx(query.error_within)

    @given(st.text(alphabet="SELECT*FROMWHERE ()=<>'0123456789abc", max_size=60))
    def test_parser_never_crashes_unexpectedly(self, text):
        """Arbitrary input either parses or raises the library's own error."""
        from repro.errors import BlazeItError

        try:
            parse(text)
        except BlazeItError:
            pass

    @given(st.text(max_size=60))
    def test_lexer_never_raises_foreign_exceptions(self, text):
        from repro.errors import BlazeItError

        try:
            tokenize(text)
        except BlazeItError:
            pass


# -- statistics -------------------------------------------------------------------------------------


class TestStatisticsProperties:
    @given(st.floats(0.1, 10.0), st.integers(2, 10_000), st.sampled_from([0.9, 0.95, 0.99]))
    def test_half_width_positive_and_decreasing_in_samples(self, std, n, confidence):
        wide = clt_half_width(std, n, confidence)
        narrower = clt_half_width(std, n * 4, confidence)
        assert wide >= 0
        assert narrower <= wide + 1e-12

    @given(st.floats(0.5, 20.0), st.floats(0.01, 1.0))
    def test_epsilon_net_min_samples_monotone(self, value_range, error):
        assert epsilon_net_minimum_samples(value_range, error) >= (
            epsilon_net_minimum_samples(value_range, error * 2)
        )

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_adaptive_sampling_estimate_within_tolerance(self, seed):
        """The CLT stopping rule should hit its error bound for Poisson data."""
        rng = np.random.default_rng(seed)
        population = rng.poisson(1.0, size=5000).astype(float)
        result = adaptive_sample(
            sample_fn=lambda idx: population[idx],
            population_size=population.size,
            error_tolerance=0.15,
            confidence=0.95,
            value_range=float(population.max() + 1),
            rng=np.random.default_rng(seed + 1),
        )
        # A 95% bound can fail occasionally, but never wildly: allow 3x slack.
        assert abs(result.estimate - population.mean()) < 0.45

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_control_variate_coefficient_reduces_variance(self, seed):
        rng = np.random.default_rng(seed)
        m = rng.poisson(2.0, size=2000).astype(float)
        t = m + rng.normal(0, 0.5, size=2000)
        c = optimal_coefficient(m, t)
        adjusted = m + c * (t - t.mean())
        assert adjusted.var() <= m.var() + 1e-9

    @given(
        st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=200),
        st.data(),
    )
    def test_calibration_never_has_false_negatives(self, scores, data):
        scores = np.asarray(scores)
        positives = np.asarray(
            data.draw(
                st.lists(st.booleans(), min_size=len(scores), max_size=len(scores))
            )
        )
        calibration = calibrate_no_false_negative_threshold(scores, positives)
        passed = scores >= calibration.threshold
        assert np.all(passed[positives])
        assert calibration.false_negatives == 0


# -- accuracy metrics ------------------------------------------------------------------------------------


class TestAccuracyMetricProperties:
    @given(
        st.sets(st.integers(0, 100), max_size=40),
        st.sets(st.integers(0, 100), max_size=40),
    )
    def test_rates_bounded(self, returned, relevant):
        fnr = false_negative_rate(returned, relevant)
        precision, recall = precision_recall(returned, relevant)
        assert 0.0 <= fnr <= 1.0
        assert 0.0 <= precision <= 1.0
        assert 0.0 <= recall <= 1.0
        if relevant:
            assert recall == pytest.approx(1.0 - fnr)

    @given(st.sets(st.integers(0, 100), max_size=40))
    def test_perfect_retrieval(self, relevant):
        assert false_negative_rate(relevant, relevant) == 0.0
        precision, recall = precision_recall(relevant, relevant)
        assert precision == 1.0
        assert recall == 1.0
