"""Crash-safety of on-disk persistence: saves are atomic, never truncated.

A long-running query service periodically saves the shared detection cache
and the statistics catalog while queries are in flight.  These tests simulate
a process killed at the worst possible moments — mid-write of the payload and
mid-rename — and assert the previous snapshot on disk stays loadable.
"""

from __future__ import annotations

import json
import os

import pytest

import repro.persist as persist
from repro.catalog.statistics import StatisticsCatalog
from repro.core.labeled_set import LabeledSet
from repro.detection.base import DetectionResult
from repro.detection.simulated import SimulatedDetector
from repro.errors import ConfigurationError
from repro.parallel.cache import SharedDetectionCache
from repro.persist import atomic_write_bytes, atomic_write_text
from repro.video.synthetic import SyntheticVideo

from conftest import make_video_spec


class _DiesMidWrite(Exception):
    """Stands in for SIGKILL arriving while the payload is being written."""


def _crash_during_write(monkeypatch):
    """Make the temp-file write die halfway through the payload."""
    real_fdopen = os.fdopen

    def exploding_fdopen(fd, *args, **kwargs):
        handle = real_fdopen(fd, *args, **kwargs)
        real_write = handle.write

        def write(text):
            real_write(text[: max(1, len(text) // 2)])
            raise _DiesMidWrite()

        handle.write = write
        return handle

    monkeypatch.setattr(persist.os, "fdopen", exploding_fdopen)


def _crash_during_replace(monkeypatch):
    """Make the final rename fail (payload fully written, swap never lands)."""

    def exploding_replace(src, dst):
        raise _DiesMidWrite()

    monkeypatch.setattr(persist.os, "replace", exploding_replace)


def _populated_cache() -> SharedDetectionCache:
    video = SyntheticVideo.generate(make_video_spec(num_frames=32))
    detector = SimulatedDetector.mask_rcnn()
    cache = SharedDetectionCache(capacity_bytes=64 << 20)
    for frame in range(8):
        cache.put("v|test", frame, detector.detect(video, frame))
    return cache


def _populated_catalog() -> StatisticsCatalog:
    train = SyntheticVideo.generate(make_video_spec(name="train", num_frames=64))
    heldout = SyntheticVideo.generate(
        make_video_spec(name="heldout", num_frames=64, seed=11)
    )
    labeled = LabeledSet.build(train, heldout, SimulatedDetector.mask_rcnn())
    catalog = StatisticsCatalog()
    catalog.register_from_labeled_set("v", 64, labeled, 1 / 3.0)
    return catalog


class TestAtomicWriteText:
    def test_round_trip(self, tmp_path):
        target = tmp_path / "payload.json"
        atomic_write_text(target, '{"ok": true}')
        assert json.loads(target.read_text()) == {"ok": True}

    def test_overwrite_survives_crash_mid_write(self, tmp_path, monkeypatch):
        target = tmp_path / "payload.json"
        target.write_text('{"generation": 1}')
        _crash_during_write(monkeypatch)
        with pytest.raises(_DiesMidWrite):
            atomic_write_text(target, '{"generation": 2}')
        assert json.loads(target.read_text()) == {"generation": 1}

    def test_no_temp_file_left_behind_on_crash(self, tmp_path, monkeypatch):
        target = tmp_path / "payload.json"
        _crash_during_write(monkeypatch)
        with pytest.raises(_DiesMidWrite):
            atomic_write_text(target, "x" * 4096)
        assert list(tmp_path.iterdir()) == []


class TestAtomicWriteBytes:
    def test_round_trip(self, tmp_path):
        target = tmp_path / "payload.npz"
        atomic_write_bytes(target, b"PK\x03\x04binary payload")
        assert target.read_bytes() == b"PK\x03\x04binary payload"

    def test_overwrite_survives_crash_mid_write(self, tmp_path, monkeypatch):
        target = tmp_path / "payload.npz"
        target.write_bytes(b"generation-1")
        _crash_during_write(monkeypatch)
        with pytest.raises(_DiesMidWrite):
            atomic_write_bytes(target, b"generation-2" * 512)
        assert target.read_bytes() == b"generation-1"
        assert list(tmp_path.iterdir()) == [target]

    def test_binary_cache_snapshot_survives_crash(self, tmp_path, monkeypatch):
        cache = _populated_cache()
        path = tmp_path / "cache.npz"
        cache.save(path, format="npz")
        good = path.read_bytes()
        _crash_during_write(monkeypatch)
        with pytest.raises(_DiesMidWrite):
            cache.save(path, format="npz")
        assert path.read_bytes() == good
        reloaded = SharedDetectionCache.load(path)
        assert len(reloaded) == len(cache)
        for frame in range(8):
            assert isinstance(reloaded.get("v|test", frame), DetectionResult)

    def test_crash_during_rename_keeps_old_snapshot(self, tmp_path, monkeypatch):
        target = tmp_path / "payload.json"
        target.write_text('{"generation": 1}')
        _crash_during_replace(monkeypatch)
        with pytest.raises(_DiesMidWrite):
            atomic_write_text(target, '{"generation": 2}')
        assert json.loads(target.read_text()) == {"generation": 1}
        assert list(tmp_path.iterdir()) == [target]


class TestSharedCacheCrashSafety:
    def test_killed_save_never_truncates_previous_snapshot(
        self, tmp_path, monkeypatch
    ):
        cache = _populated_cache()
        path = tmp_path / "cache.json"
        cache.save(path)
        good = path.read_text()

        _crash_during_write(monkeypatch)
        with pytest.raises(_DiesMidWrite):
            cache.save(path)
        # The snapshot on disk is byte-identical to the last good save and
        # still loads — a truncated write would fail json parsing here.
        assert path.read_text() == good
        reloaded = SharedDetectionCache.load(path)
        assert len(reloaded) == len(cache)
        for frame in range(8):
            hit = reloaded.get("v|test", frame)
            assert isinstance(hit, DetectionResult)

    def test_save_to_fresh_path_cleans_up_on_crash(self, tmp_path, monkeypatch):
        cache = _populated_cache()
        path = tmp_path / "cache.json"
        _crash_during_write(monkeypatch)
        with pytest.raises(_DiesMidWrite):
            cache.save(path)
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []
        with pytest.raises(FileNotFoundError):
            SharedDetectionCache.load(path)


class TestCatalogCrashSafety:
    def test_killed_save_never_truncates_previous_snapshot(
        self, tmp_path, monkeypatch
    ):
        catalog = _populated_catalog()
        path = tmp_path / "catalog.json"
        catalog.save(path)
        good = path.read_text()

        _crash_during_write(monkeypatch)
        with pytest.raises(_DiesMidWrite):
            catalog.save(path)
        assert path.read_text() == good
        reloaded = StatisticsCatalog.load(path)
        assert reloaded.names() == catalog.names()

    def test_crash_during_rename_keeps_loadable_catalog(
        self, tmp_path, monkeypatch
    ):
        catalog = _populated_catalog()
        path = tmp_path / "catalog.json"
        catalog.save(path)
        _crash_during_replace(monkeypatch)
        with pytest.raises(_DiesMidWrite):
            catalog.save(path)
        assert StatisticsCatalog.load(path).names() == catalog.names()

    def test_garbage_file_still_rejected_with_typed_error(self, tmp_path):
        path = tmp_path / "catalog.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ConfigurationError):
            StatisticsCatalog.load(path)


class TestBenchmarkReportsAreAtomic:
    """BENCH_*.json reports must go through the atomic writer.

    CI reads these files after a benchmark run; a run killed mid-write (job
    timeout, runner eviction) must leave either the previous report or the
    new one, never a truncated JSON.  This is a source-level guard: every
    benchmark that writes a report imports and calls ``atomic_write_text``,
    and none uses a bare ``Path.write_text`` for it.
    """

    BENCH_SCRIPTS = [
        "bench_index.py",
        "bench_parallel.py",
        "bench_perf_suite.py",
        "bench_service.py",
    ]

    def test_bench_reports_use_atomic_write(self):
        import ast
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        for script in self.BENCH_SCRIPTS:
            tree = ast.parse((bench_dir / script).read_text())
            calls = [
                ast.unparse(node.func)
                for node in ast.walk(tree)
                if isinstance(node, ast.Call)
            ]
            assert "atomic_write_text" in calls, script
            bare_writes = [c for c in calls if c.endswith(".write_text")]
            assert bare_writes == [], (script, bare_writes)
