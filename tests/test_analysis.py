"""Tests for the static invariant analyzer (``repro.analysis``).

Each checker gets fixture-driven coverage: a synthetic mini-project is
written under ``tmp_path``, the project model is built over it, and the
checker must produce at least one true positive — plus a
pragma-suppressed variant proving ``# repro: allow[RULE]`` works.  The
framework pieces (pragmas, baseline, runner, CLI, formatting) are tested
directly, and a final test asserts the analyzer runs clean over the real
``src/repro`` tree with the committed baseline.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    Baseline,
    Diagnostic,
    ProjectModel,
    Severity,
    format_diagnostics,
    run_analysis,
)
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.checkers import (
    AsyncHygieneChecker,
    DeterminismChecker,
    ForkSafetyChecker,
    LedgerAccountingChecker,
    LockDisciplineChecker,
    ObservabilityHygieneChecker,
    PersistenceHygieneChecker,
    WireExhaustivenessChecker,
)
from repro.analysis.pragmas import parse_pragmas, pragma_allows

PKG = "proj"


def build_project(tmp_path: Path, files: dict[str, str]) -> ProjectModel:
    root = tmp_path / PKG
    root.mkdir(exist_ok=True)
    (root / "__init__.py").write_text("")
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content))
    return ProjectModel.build(root, PKG)


def rules_of(diagnostics: list[Diagnostic]) -> set[str]:
    return {d.rule for d in diagnostics}


# -- project model --------------------------------------------------------------------


class TestProjectModel:
    def test_import_resolution(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "a.py": """
                    import numpy as np
                    from proj.b import Base as B
                    from . import c
                """,
                "b.py": "class Base: pass\n",
                "c.py": "",
            },
        )
        info = project.modules[f"{PKG}.a"]
        assert info.resolve("np.random.default_rng") == "numpy.random.default_rng"
        assert info.resolve("B") == f"{PKG}.b.Base"
        assert info.resolve("c") == f"{PKG}.c"

    def test_class_hierarchy_across_modules(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "base.py": "class Root: pass\n",
                "mid.py": """
                    from proj.base import Root
                    class Middle(Root): pass
                """,
                "leaf.py": """
                    from proj.mid import Middle
                    class Leaf(Middle): pass
                """,
            },
        )
        leaf = project.find_class("Leaf")
        assert leaf is not None
        assert project.is_subclass(leaf, "Root")
        assert project.is_subclass(leaf, "Middle")
        assert not project.is_subclass(leaf, "Unrelated")
        names = {c.name for c in project.subclasses_of("Root")}
        assert names == {"Middle", "Leaf"}

    def test_attribute_types_from_init(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "m.py": """
                    class Engine: pass
                    class App:
                        def __init__(self, engine: Engine):
                            self.engine = engine
                            self.own = Engine()
                """,
            },
        )
        app = project.find_class("App")
        assert app is not None
        types = project.attribute_types(app)
        assert types["engine"].name == "Engine"
        assert types["own"].name == "Engine"


# -- pragmas --------------------------------------------------------------------------


class TestPragmas:
    def test_same_line_and_line_above(self) -> None:
        pragmas = parse_pragmas(
            [
                "x = clock()  # repro: allow[RPR001]: sanctioned",
                "# repro: allow[RPR003, RPR004]",
                "y = mutate()",
            ]
        )
        assert pragma_allows(pragmas, 1, "RPR001")
        assert not pragma_allows(pragmas, 1, "RPR002")
        assert pragma_allows(pragmas, 3, "RPR003")
        assert pragma_allows(pragmas, 3, "RPR004")

    def test_star_allows_everything(self) -> None:
        pragmas = parse_pragmas(["z = anything()  # repro: allow[*]"])
        assert pragma_allows(pragmas, 1, "RPR005")


# -- RPR001 determinism ---------------------------------------------------------------


class TestDeterminismChecker:
    def test_true_positives(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "engine.py": """
                    import random
                    import time
                    import numpy as np

                    def sample():
                        rng = np.random.default_rng()
                        return random.random(), time.time(), rng
                """,
            },
        )
        findings = list(DeterminismChecker().check(project))
        messages = "\n".join(d.message for d in findings)
        assert len(findings) == 3
        assert "unseeded" in messages
        assert "random.random" in messages
        assert "wall-clock read `time.time`" in messages

    def test_seeded_rng_and_local_shadow_ok(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "engine.py": """
                    import random
                    import numpy as np

                    def seeded(seed):
                        return np.random.default_rng(seed)

                    def shadowed(random):
                        # symtable: `random` is a parameter, not the module
                        return random.random()
                """,
            },
        )
        assert list(DeterminismChecker().check(project)) == []

    def test_service_plumbing_excluded(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "service/app.py": """
                    import time

                    def heartbeat():
                        return time.monotonic()
                """,
            },
        )
        assert list(DeterminismChecker().check(project)) == []

    def test_pragma_suppressed(self, tmp_path: Path) -> None:
        build_project(
            tmp_path,
            {
                "engine.py": """
                    import time

                    def stamp():
                        return time.perf_counter()  # repro: allow[RPR001]: ledger wall clock
                """,
            },
        )
        report = run_analysis(tmp_path / PKG, package=PKG)
        assert not [d for d in report.findings if d.rule == "RPR001"]
        assert [d for d in report.suppressed if d.rule == "RPR001"]


# -- RPR002 ledger accounting ---------------------------------------------------------


class TestLedgerAccountingChecker:
    def test_direct_detector_call_flagged(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "plans.py": """
                    class Runner:
                        def run(self, ctx):
                            a = ctx.detector.detect(ctx.video, 0)
                            b = ctx.detector.detect_many(ctx.video, [1, 2])
                            return a, b
                """,
            },
        )
        findings = list(LedgerAccountingChecker().check(project))
        assert len(findings) == 2
        assert all(f.rule == "RPR002" for f in findings)

    def test_core_and_detector_subclasses_allowed(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "core/context.py": """
                    class ExecutionContext:
                        def detect(self, frame):
                            return self.detector.detect(self.video, frame)
                """,
                "detection/base.py": """
                    class ObjectDetector:
                        def _detect_batch(self, video, frames):
                            raise NotImplementedError
                """,
                "custom.py": """
                    from proj.detection.base import ObjectDetector

                    class Paced(ObjectDetector):
                        def _detect_batch(self, video, frames):
                            return super()._detect_batch(video, frames)
                """,
            },
        )
        assert list(LedgerAccountingChecker().check(project)) == []

    def test_pragma_suppressed(self, tmp_path: Path) -> None:
        build_project(
            tmp_path,
            {
                "plans.py": """
                    class Prefetcher:
                        def compute(self, ctx, frames):
                            # repro: allow[RPR002]: speculative, charged on consumption
                            return ctx.detector.detect_many(ctx.video, frames)
                """,
            },
        )
        report = run_analysis(tmp_path / PKG, package=PKG)
        assert not [d for d in report.findings if d.rule == "RPR002"]
        assert [d for d in report.suppressed if d.rule == "RPR002"]


# -- RPR003 lock discipline -----------------------------------------------------------

_STORE = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self.items = []

        def add(self, x):
            with self._lock:
                self.items.append(x)

        def bad_add(self, x):
            self.items.append(x)

        def clear_locked(self):
            self.items.clear()
"""


class TestLockDisciplineChecker:
    def test_unlocked_self_mutation_flagged(self, tmp_path: Path) -> None:
        project = build_project(tmp_path, {"store.py": _STORE})
        findings = list(LockDisciplineChecker().check(project))
        assert len(findings) == 1
        assert "bad_add" in findings[0].message
        assert "outside the class lock" in findings[0].message

    def test_locked_suffix_and_init_exempt(self, tmp_path: Path) -> None:
        project = build_project(tmp_path, {"store.py": _STORE})
        contexts = {d.context for d in LockDisciplineChecker().check(project)}
        assert not any("clear_locked" in c for c in contexts)
        assert not any("__init__" in c for c in contexts)

    def test_external_store_to_guarded_attr(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "store.py": _STORE,
                "other.py": """
                    def poke(store):
                        store.items = []
                """,
            },
        )
        findings = [
            d
            for d in LockDisciplineChecker().check(project)
            if "external mutation" in d.message
        ]
        assert len(findings) == 1
        assert "`items`" in findings[0].message
        assert "Store" in findings[0].message

    def test_thread_safe_attrs_exempt(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "worker.py": """
                    import queue
                    import threading

                    class Worker:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self.results = queue.SimpleQueue()

                        def push(self, item):
                            self.results.put(item)
                """,
            },
        )
        assert list(LockDisciplineChecker().check(project)) == []

    def test_lock_order_cycle(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "ab.py": """
                    import threading

                    class Alpha:
                        def __init__(self, beta):
                            self._lock = threading.Lock()
                            self.beta = beta
                            self.count = 0

                        def poke_beta(self):
                            with self._lock:
                                self.count += 1
                                return self.beta.poke_back()

                        def poke_back_alpha(self):
                            with self._lock:
                                return self.count

                    class Beta:
                        def __init__(self, alpha):
                            self._lock = threading.Lock()
                            self.alpha = alpha
                            self.total = 0

                        def poke_back(self):
                            with self._lock:
                                return self.total

                        def poke_alpha(self):
                            with self._lock:
                                self.total += 1
                                return self.alpha.poke_back_alpha()
                """,
            },
        )
        findings = [
            d
            for d in LockDisciplineChecker().check(project)
            if "lock-order cycle" in d.message
        ]
        assert len(findings) == 2  # one per edge of the Alpha<->Beta cycle

    def test_self_deadlock(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "c.py": """
                    import threading

                    class Counter:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self.n = 0

                        def bump(self):
                            with self._lock:
                                self.n += 1
                                return self.read()

                        def read(self):
                            with self._lock:
                                return self.n
                """,
            },
        )
        findings = [
            d
            for d in LockDisciplineChecker().check(project)
            if "non-reentrant" in d.message
        ]
        assert len(findings) == 1

    def test_pragma_suppressed(self, tmp_path: Path) -> None:
        build_project(
            tmp_path,
            {
                "store.py": """
                    import threading

                    class Flag:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self.armed = False

                        def lock_me(self):
                            with self._lock:
                                self.armed = True

                        def arm(self):
                            self.armed = True  # repro: allow[RPR003]: driver-thread-only
                """,
            },
        )
        report = run_analysis(tmp_path / PKG, package=PKG)
        assert not [d for d in report.findings if d.rule == "RPR003"]
        assert [d for d in report.suppressed if d.rule == "RPR003"]


# -- RPR004 async hygiene -------------------------------------------------------------


class TestAsyncHygieneChecker:
    def test_blocking_primitives_in_async_def(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "service/app.py": """
                    import time

                    async def handler(event):
                        time.sleep(0.1)
                        event.wait()
                """,
            },
        )
        findings = list(AsyncHygieneChecker().check(project))
        assert len(findings) == 2
        messages = "\n".join(d.message for d in findings)
        assert "time.sleep" in messages
        assert ".wait(" in messages

    def test_awaited_calls_are_fine(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "service/app.py": """
                    import asyncio

                    async def handler(event):
                        await asyncio.sleep(0.1)
                        await event.wait()
                """,
            },
        )
        assert list(AsyncHygieneChecker().check(project)) == []

    def test_blocking_project_method_via_typed_attr(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "service/mgr.py": """
                    import threading

                    class Manager:
                        def __init__(self):
                            self._lock = threading.Lock()
                            self.jobs = []

                        def submit(self, job):
                            with self._lock:
                                self.jobs.append(job)
                """,
                "service/app.py": """
                    import asyncio
                    from proj.service.mgr import Manager

                    class App:
                        def __init__(self, manager: Manager):
                            self.manager = manager

                        async def bad(self, job):
                            self.manager.submit(job)

                        async def good(self, job):
                            loop = asyncio.get_running_loop()
                            await loop.run_in_executor(
                                None, self.manager.submit, job
                            )
                """,
            },
        )
        findings = list(AsyncHygieneChecker().check(project))
        assert len(findings) == 1
        assert "Manager.submit" in findings[0].message
        assert findings[0].context.endswith("App.bad")

    def test_await_under_sync_lock(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "service/app.py": """
                    import asyncio
                    import threading

                    class App:
                        def __init__(self):
                            self._lock = threading.Lock()

                        async def bad(self):
                            with self._lock:
                                await asyncio.sleep(0)
                """,
            },
        )
        findings = list(AsyncHygieneChecker().check(project))
        assert any("holding a sync lock" in d.message for d in findings)

    def test_pragma_suppressed(self, tmp_path: Path) -> None:
        build_project(
            tmp_path,
            {
                "service/app.py": """
                    import time

                    async def handler():
                        time.sleep(0.01)  # repro: allow[RPR004]: test-only pacing
                """,
            },
        )
        report = run_analysis(tmp_path / PKG, package=PKG)
        assert not [d for d in report.findings if d.rule == "RPR004"]
        assert [d for d in report.suppressed if d.rule == "RPR004"]


# -- RPR005 wire exhaustiveness -------------------------------------------------------

_EVENTS = """
    class ExecutionEvent:
        wire_name = "base"

    class GoodEvent(ExecutionEvent):
        wire_name = "good"

    class BadEvent(ExecutionEvent):
        pass

    def event_wire_types():
        return {cls.wire_name: cls for cls in (GoodEvent,)}
"""

_RESULTS = {
    "results.py": """
        class QueryResult:
            pass

        class CoveredResult(QueryResult):
            pass

        class MissingResult(QueryResult):
            pass
    """,
    "service/protocol.py": """
        from proj.results import CoveredResult

        _RESULT_TYPES = {"covered": CoveredResult}

        def result_to_json(result):
            return {"kind": "covered" if isinstance(result, CoveredResult) else "?"}

        def result_from_json(payload):
            return _RESULT_TYPES[payload["kind"]]()
    """,
}


class TestWireExhaustivenessChecker:
    def test_missing_wire_name_and_registration(self, tmp_path: Path) -> None:
        project = build_project(tmp_path, {"events.py": _EVENTS})
        findings = list(WireExhaustivenessChecker().check(project))
        messages = "\n".join(d.message for d in findings)
        assert "defines no `wire_name`" in messages
        assert "not registered in `event_wire_types()`" in messages
        assert all("BadEvent" in d.message for d in findings)

    def test_duplicate_wire_tag(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "events.py": """
                    class ExecutionEvent:
                        wire_name = "base"

                    class One(ExecutionEvent):
                        wire_name = "dup"

                    class Two(ExecutionEvent):
                        wire_name = "dup"

                    def event_wire_types():
                        return {c.wire_name: c for c in (One, Two)}
                """,
            },
        )
        findings = list(WireExhaustivenessChecker().check(project))
        assert any("reuses wire tag" in d.message for d in findings)

    def test_result_without_codec(self, tmp_path: Path) -> None:
        project = build_project(tmp_path, dict(_RESULTS))
        findings = list(WireExhaustivenessChecker().check(project))
        assert len(findings) == 1
        assert "MissingResult" in findings[0].message
        assert "result_fingerprint" in findings[0].message

    def test_pragma_suppressed(self, tmp_path: Path) -> None:
        files = dict(_RESULTS)
        files["results.py"] = """
            class QueryResult:
                pass

            class CoveredResult(QueryResult):
                pass

            # repro: allow[RPR005]: internal-only result, never serialized
            class MissingResult(QueryResult):
                pass
        """
        build_project(tmp_path, files)
        report = run_analysis(tmp_path / PKG, package=PKG)
        assert not [d for d in report.findings if d.rule == "RPR005"]
        assert [d for d in report.suppressed if d.rule == "RPR005"]


# -- RPR006 fork safety ---------------------------------------------------------------


_FORKER = """
    import multiprocessing
    import threading

    class Holder:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0

    def launch():
        holder = Holder()
        proc = multiprocessing.Process(target=work, args=(holder, 3))
        proc.start()
        return proc

    def work(holder, n):
        pass
"""


class TestForkSafetyChecker:
    def test_lock_holder_in_args_flagged(self, tmp_path: Path) -> None:
        project = build_project(tmp_path, {"forker.py": _FORKER})
        findings = list(ForkSafetyChecker().check(project))
        assert len(findings) == 1
        assert "Holder" in findings[0].message
        assert "_lock" in findings[0].message
        assert "threading.Lock" in findings[0].message

    def test_bound_method_target_captures_self(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "svc.py": """
                    import multiprocessing
                    import queue

                    class Service:
                        def __init__(self):
                            self.inbox = queue.SimpleQueue()

                        def run(self):
                            pass

                        def start(self):
                            return multiprocessing.Process(target=self.run)
                """,
            },
        )
        findings = list(ForkSafetyChecker().check(project))
        assert len(findings) == 1
        assert "via target=" in findings[0].message
        assert "inbox" in findings[0].message

    def test_context_process_and_spawn_spec_clean(self, tmp_path: Path) -> None:
        """A plain-data spec through a context's ``.Process`` passes, and
        mp primitives in args never resolve to a risky type."""
        project = build_project(
            tmp_path,
            {
                "exec.py": """
                    import multiprocessing
                    from dataclasses import dataclass

                    @dataclass(frozen=True)
                    class WorkerSpec:
                        shard_id: int
                        frames: tuple

                    def worker_main(spec, ready, stop):
                        pass

                    def start(mp_context):
                        spec = WorkerSpec(shard_id=0, frames=(1, 2))
                        ready = mp_context.Queue()
                        stop = mp_context.Event()
                        return mp_context.Process(
                            target=worker_main, args=(spec, ready, stop)
                        )
                """,
            },
        )
        assert list(ForkSafetyChecker().check(project)) == []

    def test_unpicklable_lambda_attr_flagged(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "lam.py": """
                    import multiprocessing

                    class Config:
                        def __init__(self):
                            self.transform = lambda x: x + 1

                    def go():
                        config = Config()
                        return multiprocessing.Process(target=run, args=(config,))

                    def run(config):
                        pass
                """,
            },
        )
        findings = list(ForkSafetyChecker().check(project))
        assert len(findings) == 1
        assert "lambda" in findings[0].message

    def test_pragma_suppressed(self, tmp_path: Path) -> None:
        build_project(tmp_path, {"forker.py": _FORKER.replace(
            "proc = multiprocessing.Process(target=work, args=(holder, 3))",
            "proc = multiprocessing.Process(  # repro: allow[RPR006]: fork start method, state shared deliberately\n"
            "            target=work, args=(holder, 3))",
        )})
        report = run_analysis(tmp_path / PKG, package=PKG)
        assert not [d for d in report.findings if d.rule == "RPR006"]
        assert [d for d in report.suppressed if d.rule == "RPR006"]


# -- RPR007 persistence hygiene -------------------------------------------------------


class TestPersistenceHygieneChecker:
    def test_bare_write_text_flagged(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "report.py": """
                    import json
                    from pathlib import Path

                    def dump(path: Path, payload: dict):
                        path.write_text(json.dumps(payload))
                """,
            },
        )
        findings = list(PersistenceHygieneChecker().check(project))
        assert len(findings) == 1
        assert "write_text" in findings[0].message
        assert "atomic_write" in findings[0].hint

    def test_open_write_mode_flagged_read_mode_clean(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "io_mod.py": """
                    def write(path):
                        with open(path, "w") as handle:
                            handle.write("x")

                    def read(path):
                        with open(path) as handle:
                            return handle.read()

                    def read_binary(path):
                        with open(path, "rb") as handle:
                            return handle.read()
                """,
            },
        )
        findings = list(PersistenceHygieneChecker().check(project))
        assert len(findings) == 1
        assert findings[0].context.endswith(".write")
        assert "'w'" in findings[0].message

    def test_numpy_save_to_path_flagged_buffer_clean(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "arrays.py": """
                    import io
                    import numpy as np

                    def bad(path, values):
                        np.save(path, values)

                    def bad_savez(path, values):
                        np.savez_compressed(path, values=values)

                    def good(values):
                        buffer = io.BytesIO()
                        np.savez_compressed(buffer, values=values)
                        return buffer.getvalue()

                    def good_walrus(values):
                        np.save(buffer := io.BytesIO(), values)
                        return buffer.getvalue()
                """,
            },
        )
        findings = list(PersistenceHygieneChecker().check(project))
        assert len(findings) == 2
        assert {f.context.rsplit(".", 1)[-1] for f in findings} == {
            "bad",
            "bad_savez",
        }

    def test_unlink_with_open_mmap_flagged(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "mm.py": """
                    import os
                    import numpy as np

                    def leaky(path):
                        values = np.load(path, mmap_mode="r")
                        total = values.sum()
                        os.unlink(path)
                        return total

                    def disciplined(path):
                        values = np.load(path, mmap_mode="r")
                        total = values.sum()
                        values._mmap.close()
                        os.unlink(path)
                        return total

                    def no_mmap(path):
                        os.unlink(path)
                """,
            },
        )
        findings = list(PersistenceHygieneChecker().check(project))
        assert len(findings) == 1
        assert findings[0].context.endswith(".leaky")
        assert "mmap_mode" in findings[0].message

    def test_persist_module_is_exempt(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "persist.py": """
                    import os

                    def atomic_write_text(path, text):
                        fd, tmp = (0, str(path) + ".tmp")
                        with os.fdopen(fd, "w") as handle:
                            handle.write(text)
                        os.unlink(tmp)
                """,
            },
        )
        assert list(PersistenceHygieneChecker().check(project)) == []

    def test_pragma_suppressed(self, tmp_path: Path) -> None:
        build_project(
            tmp_path,
            {
                "report.py": """
                    def dump(path):
                        path.write_text("x")  # repro: allow[RPR007]: scratch file, no reader
                """,
            },
        )
        report = run_analysis(tmp_path / PKG, package=PKG)
        assert not [d for d in report.findings if d.rule == "RPR007"]
        assert [d for d in report.suppressed if d.rule == "RPR007"]


class TestObservabilityHygieneChecker:
    def test_wall_field_read_outside_obs_flagged(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "optimizer/cost.py": """
                    def estimate(span):
                        return span.wall_duration * 2.0
                """,
                "obs/report.py": """
                    def render(span):
                        return f"{span.wall_duration:.3f}s"
                """,
                "service/status.py": """
                    def row(span):
                        return {"wall": span.wall_duration}
                """,
            },
        )
        findings = list(ObservabilityHygieneChecker().check(project))
        assert len(findings) == 1
        assert findings[0].context == f"{PKG}.optimizer.cost.estimate"
        assert "wall_duration" in findings[0].message

    def test_dict_key_literals_are_clean(self, tmp_path: Path) -> None:
        # The worker span payloads in parallel/ carry the wall fields as
        # dict *keys*; only attribute loads leak values into expressions.
        project = build_project(
            tmp_path,
            {
                "parallel/worker.py": """
                    def payload(elapsed):
                        return {"wall_duration": elapsed, "wall_start": 0.0}
                """,
            },
        )
        assert list(ObservabilityHygieneChecker().check(project)) == []

    def test_render_prometheus_outside_service_flagged(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "core/engine.py": """
                    def status(registry):
                        return registry.render_prometheus()
                """,
                "service/app.py": """
                    def metrics(registry):
                        return registry.render_prometheus()
                """,
            },
        )
        findings = list(ObservabilityHygieneChecker().check(project))
        assert len(findings) == 1
        assert findings[0].context == f"{PKG}.core.engine.status"
        assert "render_prometheus" in findings[0].message

    def test_span_held_in_variable_flagged(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "core/run.py": """
                    def leaky(tracer):
                        s = tracer.span("execute")
                        s.__enter__()
                        return s

                    def passed_along(tracer, consume):
                        consume(tracer.span("execute"))
                """,
            },
        )
        findings = list(ObservabilityHygieneChecker().check(project))
        assert {f.context.rsplit(".", 1)[-1] for f in findings} == {
            "leaky",
            "passed_along",
        }
        assert all("with" in f.message for f in findings)

    def test_with_item_and_factory_return_are_clean(self, tmp_path: Path) -> None:
        project = build_project(
            tmp_path,
            {
                "core/run.py": """
                    def traced(tracer, ledger):
                        with tracer.span("execute"):
                            with tracer.operator_span("FullScan", ledger):
                                pass

                    def scope(context, name):
                        return maybe_span(context.tracer, name)

                    def op_scope(context, name, ledger):
                        return operator_scope(context, name, ledger)
                """,
            },
        )
        assert list(ObservabilityHygieneChecker().check(project)) == []

    def test_pragma_suppressed(self, tmp_path: Path) -> None:
        build_project(
            tmp_path,
            {
                "core/run.py": """
                    def probe(span):
                        return span.wall_duration  # repro: allow[RPR008]: debug probe
                """,
            },
        )
        report = run_analysis(tmp_path / PKG, package=PKG)
        assert not [d for d in report.findings if d.rule == "RPR008"]
        assert [d for d in report.suppressed if d.rule == "RPR008"]


# -- baseline + runner ----------------------------------------------------------------


class TestBaselineWorkflow:
    def test_baseline_accepts_and_goes_stale(self, tmp_path: Path) -> None:
        root = build_project(
            tmp_path,
            {
                "engine.py": """
                    import random

                    def draw():
                        return random.random()
                """,
            },
        ).root
        report = run_analysis(root, package=PKG)
        assert len(report.findings) == 1

        baseline_path = tmp_path / "analysis-baseline.json"
        Baseline().write(baseline_path, report.findings)
        baseline = Baseline.load(baseline_path)
        clean = run_analysis(root, package=PKG, baseline=baseline)
        assert clean.ok
        assert len(clean.baselined) == 1

        # Fix the code: the baseline entry is now stale.
        (root / "engine.py").write_text("def draw():\n    return 4\n")
        fixed = run_analysis(root, package=PKG, baseline=baseline)
        assert fixed.ok
        assert len(fixed.stale_baseline) == 1

    def test_baseline_preserves_justifications(self, tmp_path: Path) -> None:
        diag = Diagnostic(
            path="proj/x.py", line=1, col=0, rule="RPR001", message="m"
        )
        path = tmp_path / "b.json"
        Baseline().write(path, [diag])
        payload = json.loads(path.read_text())
        payload["findings"][0]["justification"] = "because reasons"
        path.write_text(json.dumps(payload))
        loaded = Baseline.load(path)
        loaded.write(path, [diag])
        again = json.loads(path.read_text())
        assert again["findings"][0]["justification"] == "because reasons"


class TestCliAndFormats:
    def _violating_root(self, tmp_path: Path) -> Path:
        return build_project(
            tmp_path,
            {
                "engine.py": """
                    import random

                    def draw():
                        return random.random()
                """,
            },
        ).root

    def test_cli_exit_codes_and_json(self, tmp_path: Path, capsys) -> None:
        root = self._violating_root(tmp_path)
        rc = analysis_main(
            ["--root", str(root), "--package", PKG, "--format", "json", "--quiet"]
        )
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "RPR001"

        rc = analysis_main(
            ["--root", str(root), "--package", PKG, "--write-baseline",
             "--baseline", str(tmp_path / "bl.json"), "--quiet"]
        )
        assert rc == 0
        rc = analysis_main(
            ["--root", str(root), "--package", PKG,
             "--baseline", str(tmp_path / "bl.json"), "--quiet"]
        )
        assert rc == 0

    def test_github_format_escapes(self) -> None:
        diag = Diagnostic(
            path="p.py", line=3, col=1, rule="RPR001",
            message="bad%\nthing", severity=Severity.WARNING,
        )
        out = format_diagnostics([diag], "github")
        assert out.startswith("::warning file=p.py,line=3,col=1,title=RPR001::")
        assert "%25" in out and "%0A" in out and "\n" not in out.split("::")[2]

    def test_unknown_format_raises(self) -> None:
        with pytest.raises(ValueError, match="unknown format"):
            format_diagnostics([], "yaml")


# -- the real tree --------------------------------------------------------------------


class TestRealTree:
    def test_src_repro_is_clean_with_committed_baseline(self) -> None:
        root = Path(repro.__file__).resolve().parent
        baseline_path = root.parent.parent / "analysis-baseline.json"
        if not baseline_path.exists():
            pytest.skip("committed baseline not present in this layout")
        report = run_analysis(root, baseline=Baseline.load(baseline_path))
        assert report.ok, format_diagnostics(report.findings)
        # The grandfathered set must not silently grow or rot.
        assert report.stale_baseline == []
        assert report.modules_scanned > 100
