"""Tests for the accuracy metrics used by the evaluation harness."""

import pytest

from repro.metrics.accuracy import (
    absolute_error,
    false_negative_rate,
    false_positive_rate,
    mean_absolute_error,
    precision_recall,
    relative_error,
)


class TestScalarErrors:
    def test_absolute_error(self):
        assert absolute_error(1.5, 1.0) == pytest.approx(0.5)
        assert absolute_error(1.0, 1.5) == pytest.approx(0.5)

    def test_relative_error(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)

    def test_relative_error_zero_truth(self):
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == float("inf")

    def test_mean_absolute_error(self):
        assert mean_absolute_error([1.0, 2.0], [0.0, 4.0]) == pytest.approx(1.5)

    def test_mean_absolute_error_empty(self):
        assert mean_absolute_error([], []) == 0.0

    def test_mean_absolute_error_length_mismatch(self):
        with pytest.raises(ValueError):
            mean_absolute_error([1.0], [1.0, 2.0])


class TestSetMetrics:
    def test_false_negative_rate_none_missed(self):
        assert false_negative_rate([1, 2, 3], [1, 2, 3]) == 0.0

    def test_false_negative_rate_half_missed(self):
        assert false_negative_rate([1], [1, 2]) == pytest.approx(0.5)

    def test_false_negative_rate_empty_relevant(self):
        assert false_negative_rate([1, 2], []) == 0.0

    def test_false_negative_rate_extra_returned_is_fine(self):
        assert false_negative_rate([1, 2, 3, 99], [1, 2]) == 0.0

    def test_false_positive_rate(self):
        # Universe of 10, 2 relevant, returned 3 of which 1 irrelevant.
        assert false_positive_rate([1, 2, 5], [1, 2], 10) == pytest.approx(1 / 8)

    def test_false_positive_rate_all_relevant_universe(self):
        assert false_positive_rate([1, 2], [1, 2], 2) == 0.0

    def test_precision_recall_perfect(self):
        precision, recall = precision_recall([1, 2], [1, 2])
        assert precision == 1.0
        assert recall == 1.0

    def test_precision_recall_partial(self):
        precision, recall = precision_recall([1, 2, 3, 4], [1, 2])
        assert precision == pytest.approx(0.5)
        assert recall == pytest.approx(1.0)

    def test_precision_recall_empty_returned(self):
        precision, recall = precision_recall([], [1, 2])
        assert precision == 1.0
        assert recall == 0.0
