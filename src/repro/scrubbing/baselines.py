"""Baseline scrubbing strategies (Section 10.3).

* **Naive** — run the object detector over frames in sequential (or random)
  order until the requested number of matching frames is found.
* **NoScope oracle** — restrict the scan to frames the oracle says contain the
  object class(es) of interest, then verify with the detector.  The oracle is
  free to query, making this baseline strictly stronger than real NoScope.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.scrubbing.importance import ScrubbingResult, scrub_ordered


def sequential_scrub(
    num_frames: int,
    verify_fn: Callable[[int], bool],
    limit: int,
    gap: int = 0,
) -> ScrubbingResult:
    """Scan frames in order 0, 1, 2, ... verifying each with the detector."""
    return scrub_ordered(np.arange(num_frames), verify_fn, limit, gap)


def random_scrub(
    num_frames: int,
    verify_fn: Callable[[int], bool],
    limit: int,
    gap: int = 0,
    rng: np.random.Generator | None = None,
) -> ScrubbingResult:
    """Scan frames in uniformly random order, verifying each with the detector."""
    # A deterministic default keeps results a pure function of the inputs
    # even when the caller supplies no generator (RPR001).
    rng = rng or np.random.default_rng(0)
    return scrub_ordered(rng.permutation(num_frames), verify_fn, limit, gap)


def noscope_oracle_scrub(
    presence_mask: np.ndarray,
    verify_fn: Callable[[int], bool],
    limit: int,
    gap: int = 0,
) -> ScrubbingResult:
    """Scan only frames where the oracle reports the class(es) present.

    Parameters
    ----------
    presence_mask:
        Boolean array over all frames: ``True`` where every queried object
        class has at least one instance according to the (free) oracle.
    """
    presence_mask = np.asarray(presence_mask, dtype=bool)
    candidates = np.nonzero(presence_mask)[0]
    return scrub_ordered(candidates, verify_fn, limit, gap)
