"""Importance-sampling scrubbing using specialized-NN confidences.

The planner of Section 7.1: label every frame with the specialized NN
(cheap), rank frames by the conjunction score, and run the object detector
down the ranking until the requested number of *verified* frames is found.
Only true positives are ever returned because every candidate is verified by
the full detector; the ``GAP`` constraint is enforced on the verified frames.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

import numpy as np


@dataclass
class ScrubbingResult:
    """Result of a scrubbing run.

    Attributes
    ----------
    frames:
        Frame indices returned to the user (all verified true positives).
    detection_calls:
        Number of full object-detection invocations spent.
    frames_examined:
        Number of candidate frames considered (same as ``detection_calls`` for
        detector-verified strategies).
    satisfied:
        Whether the requested limit was reached before candidates ran out.
    """

    frames: list[int] = field(default_factory=list)
    detection_calls: int = 0
    frames_examined: int = 0
    satisfied: bool = False


def _respects_gap(frame: int, accepted: list[int], gap: int) -> bool:
    if gap <= 0:
        return True
    return all(abs(frame - other) >= gap for other in accepted)


@dataclass(frozen=True)
class ScrubStep:
    """One examined candidate frame, for streaming consumers.

    ``hits_so_far`` counts the accepted (verified, gap-respecting) frames
    including this one when ``verified`` is true.
    """

    frame: int
    verified: bool
    hits_so_far: int


def iter_scrub_ordered(
    candidate_order: np.ndarray | list[int],
    verify_fn: Callable[[int], bool],
    limit: int,
    gap: int = 0,
    result: ScrubbingResult | None = None,
) -> Iterator[ScrubStep]:
    """Walk candidate frames in order, yielding one :class:`ScrubStep` each.

    The generator core behind :func:`scrub_ordered` (which drains it) and the
    streaming scrubbing plan.  State accumulates in ``result`` — pass the same
    :class:`ScrubbingResult` to a second call to *resume* a scrub over a
    different candidate order (e.g. an exhaustive fallback sweep after an
    importance scan) with the accepted frames and counters carried over.
    """
    if limit < 1:
        raise ValueError(f"limit must be >= 1, got {limit}")
    if result is None:
        result = ScrubbingResult()
    for frame in candidate_order:
        frame = int(frame)
        if frame in result.frames or not _respects_gap(frame, result.frames, gap):
            continue
        result.detection_calls += 1
        result.frames_examined += 1
        verified = verify_fn(frame)
        if verified:
            result.frames.append(frame)
            if len(result.frames) >= limit:
                result.satisfied = True
        yield ScrubStep(
            frame=frame, verified=verified, hits_so_far=len(result.frames)
        )
        if result.satisfied:
            return


def scrub_ordered(
    candidate_order: np.ndarray | list[int],
    verify_fn: Callable[[int], bool],
    limit: int,
    gap: int = 0,
) -> ScrubbingResult:
    """Walk candidate frames in the given order, verifying each with the detector.

    This is the shared engine behind the importance-ranked strategy and all
    baselines; they differ only in the order of ``candidate_order``.
    """
    result = ScrubbingResult()
    for _ in iter_scrub_ordered(candidate_order, verify_fn, limit, gap, result):
        pass
    return result


def importance_scrub(
    scores: np.ndarray,
    verify_fn: Callable[[int], bool],
    limit: int,
    gap: int = 0,
) -> ScrubbingResult:
    """Scrub by descending specialized-NN score.

    Parameters
    ----------
    scores:
        Per-frame conjunction scores from the specialized NN (higher means
        more likely to satisfy the predicate).
    verify_fn:
        Runs the full detector on one frame and returns whether the frame
        truly satisfies the predicate.
    limit:
        Number of verified frames requested (``LIMIT``).
    gap:
        Minimum distance between returned frames (``GAP``).
    """
    scores = np.asarray(scores, dtype=np.float64)
    order = np.argsort(-scores, kind="stable")
    return scrub_ordered(order, verify_fn, limit, gap)
