"""Importance-sampling scrubbing using specialized-NN confidences.

The planner of Section 7.1: label every frame with the specialized NN
(cheap), rank frames by the conjunction score, and run the object detector
down the ranking until the requested number of *verified* frames is found.
Only true positives are ever returned because every candidate is verified by
the full detector; the ``GAP`` constraint is enforced on the verified frames.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

import numpy as np


@dataclass
class ScrubbingResult:
    """Result of a scrubbing run.

    Attributes
    ----------
    frames:
        Frame indices returned to the user (all verified true positives).
    detection_calls:
        Number of full object-detection invocations spent.
    frames_examined:
        Number of candidate frames considered (same as ``detection_calls`` for
        detector-verified strategies).
    satisfied:
        Whether the requested limit was reached before candidates ran out.
    """

    frames: list[int] = field(default_factory=list)
    detection_calls: int = 0
    frames_examined: int = 0
    satisfied: bool = False


def _respects_gap(frame: int, accepted_sorted: list[int], gap: int) -> bool:
    """Whether ``frame`` is at least ``gap`` away from every accepted frame.

    ``accepted_sorted`` must be kept sorted; only the two neighbours of the
    insertion point can violate the gap, so the check is O(log n) instead of
    O(n) per candidate.
    """
    if gap <= 0:
        return True
    position = bisect_left(accepted_sorted, frame)
    if position > 0 and frame - accepted_sorted[position - 1] < gap:
        return False
    if (
        position < len(accepted_sorted)
        and accepted_sorted[position] - frame < gap
    ):
        return False
    return True


class ScrubState:
    """The accept/gap/limit bookkeeping of one scrubbing run.

    The single home of the acceptance semantics, shared by the scalar
    :func:`iter_scrub_ordered` walk and the scrubbing plan's chunked
    verifier: candidates are :meth:`eligible` while not yet accepted and at
    least ``gap`` away from every accepted frame (checked in O(log n)
    against a sorted accepted list), and :meth:`examine` records one
    verified/rejected candidate into the underlying
    :class:`ScrubbingResult`, flipping ``satisfied`` when the limit is
    reached.  State carries over when resuming a run (e.g. an exhaustive
    fallback sweep after an importance scan) by rebuilding from the result's
    accepted frames.
    """

    def __init__(self, result: ScrubbingResult, limit: int, gap: int) -> None:
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.result = result
        self.limit = limit
        self.gap = gap
        self._accepted = set(result.frames)
        self._accepted_sorted = sorted(result.frames)

    @property
    def satisfied(self) -> bool:
        """Whether the limit has been reached."""
        return self.result.satisfied

    @property
    def hits(self) -> int:
        """Number of accepted frames so far."""
        return len(self.result.frames)

    def eligible(self, frame: int) -> bool:
        """Whether a candidate is worth verifying (free check, no detector)."""
        return frame not in self._accepted and _respects_gap(
            frame, self._accepted_sorted, self.gap
        )

    def examine(self, frame: int, verified: bool) -> bool:
        """Record one examined candidate; returns whether it was accepted."""
        self.result.detection_calls += 1
        self.result.frames_examined += 1
        if verified:
            self.result.frames.append(frame)
            self._accepted.add(frame)
            insort(self._accepted_sorted, frame)
            if len(self.result.frames) >= self.limit:
                self.result.satisfied = True
        return verified


@dataclass(frozen=True)
class ScrubStep:
    """One examined candidate frame, for streaming consumers.

    ``hits_so_far`` counts the accepted (verified, gap-respecting) frames
    including this one when ``verified`` is true.
    """

    frame: int
    verified: bool
    hits_so_far: int


def iter_scrub_ordered(
    candidate_order: np.ndarray | list[int],
    verify_fn: Callable[[int], bool],
    limit: int,
    gap: int = 0,
    result: ScrubbingResult | None = None,
) -> Iterator[ScrubStep]:
    """Walk candidate frames in order, yielding one :class:`ScrubStep` each.

    The generator core behind :func:`scrub_ordered` (which drains it) and the
    streaming scrubbing plan.  State accumulates in ``result`` — pass the same
    :class:`ScrubbingResult` to a second call to *resume* a scrub over a
    different candidate order (e.g. an exhaustive fallback sweep after an
    importance scan) with the accepted frames and counters carried over.
    """
    if result is None:
        result = ScrubbingResult()
    state = ScrubState(result, limit=limit, gap=gap)
    for frame in candidate_order:
        frame = int(frame)
        if not state.eligible(frame):
            continue
        verified = state.examine(frame, verify_fn(frame))
        yield ScrubStep(
            frame=frame, verified=verified, hits_so_far=state.hits
        )
        if state.satisfied:
            return


def scrub_ordered(
    candidate_order: np.ndarray | list[int],
    verify_fn: Callable[[int], bool],
    limit: int,
    gap: int = 0,
) -> ScrubbingResult:
    """Walk candidate frames in the given order, verifying each with the detector.

    This is the shared engine behind the importance-ranked strategy and all
    baselines; they differ only in the order of ``candidate_order``.
    """
    result = ScrubbingResult()
    for _ in iter_scrub_ordered(candidate_order, verify_fn, limit, gap, result):
        pass
    return result


def importance_scrub(
    scores: np.ndarray,
    verify_fn: Callable[[int], bool],
    limit: int,
    gap: int = 0,
) -> ScrubbingResult:
    """Scrub by descending specialized-NN score.

    Parameters
    ----------
    scores:
        Per-frame conjunction scores from the specialized NN (higher means
        more likely to satisfy the predicate).
    verify_fn:
        Runs the full detector on one frame and returns whether the frame
        truly satisfies the predicate.
    limit:
        Number of verified frames requested (``LIMIT``).
    gap:
        Minimum distance between returned frames (``GAP``).
    """
    scores = np.asarray(scores, dtype=np.float64)
    order = np.argsort(-scores, kind="stable")
    return scrub_ordered(order, verify_fn, limit, gap)
