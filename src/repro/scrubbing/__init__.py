"""Cardinality-limited scrubbing (Section 7).

Scrubbing queries ask for a fixed number of frames matching a predicate
(typically a rare joint event such as "at least one bus and at least five
cars").  The optimization ranks frames by a specialized-NN confidence signal
and runs the full detector down the ranking until the requested number of
verified frames is found, which is an importance-sampling-style bias towards
regions likely to contain the event.
"""

from repro.scrubbing.importance import ScrubbingResult, importance_scrub
from repro.scrubbing.baselines import (
    noscope_oracle_scrub,
    random_scrub,
    sequential_scrub,
)

__all__ = [
    "ScrubbingResult",
    "importance_scrub",
    "sequential_scrub",
    "random_scrub",
    "noscope_oracle_scrub",
]
