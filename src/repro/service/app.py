"""Asyncio HTTP + SSE front-end for the query service (stdlib only).

A deliberately small HTTP/1.1 server on ``asyncio`` streams — no web
framework, no new dependencies — that exposes the
:class:`~repro.service.manager.ServiceManager` over the wire:

====================================  =============================================
``GET  /healthz``                     service status summary (+ metrics snapshot)
``GET  /metrics``                     Prometheus text exposition of the registry
``POST /tenants``                     ``{"name", "quota": {...}}``
``POST /sessions``                    ``{"tenant", "video"?, "hints"?}``
``DELETE /sessions/{id}``             close a session
``POST /sessions/{id}/prepare``       ``{"query", "hints"?}`` -> prepared id + plan
``POST /queries``                     submit; blocking unless ``"wait": false``
``GET  /queries/{id}``                status (+ serialized result when done)
``GET  /queries/{id}/events``         SSE stream of execution events
``DELETE /queries/{id}``              cancel
====================================  =============================================

The SSE stream emits each :class:`~repro.core.events.ExecutionEvent` as::

    id: <index>
    event: <wire_name>
    data: <json payload>

Events are indexed from zero, so a dropped client resumes with
``?from=<n+1>`` or the standard ``Last-Event-ID`` header and misses
nothing.  While the query runs, keep-alive comment lines are written every
``heartbeat_seconds`` — they are how the server notices a vanished client
between events.  By default a client disconnect cancels the query
(cooperatively: the cancellation token reaches every shard worker, the plan
finalises a partial result, and the drainer closes the stream — after which
no detector call can happen).  Pass ``?cancel_on_disconnect=0`` to watch a
query without owning its lifetime, e.g. when resuming.

Manager calls that block (waiting on a result, waiting for the next event)
are pushed onto the default thread-pool executor so the event loop — and
with it every other client's heartbeat — never stalls behind a query.
"""

from __future__ import annotations

import asyncio
import functools
import json
import threading
from dataclasses import dataclass
from typing import Any, Callable, TypeVar
from urllib.parse import parse_qs, urlsplit

from repro.errors import BlazeItError
from repro.obs.metrics import get_registry
from repro.service.manager import ServiceError, ServiceManager

_MAX_BODY_BYTES = 8 << 20
#: How long a blocking POST /queries waits before returning 504.
_BLOCKING_TIMEOUT = 600.0

_T = TypeVar("_T")


class _HttpError(Exception):
    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass(frozen=True)
class _TextResponse:
    """A non-JSON route response (the Prometheus exposition endpoint)."""

    status: int
    body: str
    content_type: str = "text/plain; version=0.0.4; charset=utf-8"


def _error_payload(exc: BlazeItError) -> tuple[int, dict[str, Any]]:
    """Map library errors to (status, body): service rejections keep their
    HTTP status, anything else the caller sent us is a 400."""
    if isinstance(exc, ServiceError):
        return exc.http_status, {"error": exc.code, "message": str(exc)}
    return 400, {"error": type(exc).__name__, "message": str(exc)}


class QueryServiceApp:
    """HTTP adapter over a :class:`ServiceManager`."""

    def __init__(self, manager: ServiceManager) -> None:
        self.manager = manager

    async def _call(self, fn: Callable[..., _T], *args: Any) -> _T:
        """Run a lock-taking manager call on the default executor.

        Every ``ServiceManager`` entry point acquires the manager lock (and
        ``submit`` additionally plans the query), so none of them may run
        on the event loop directly (RPR004) — a contended lock there would
        stall every client's heartbeat.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, fn, *args)

    # -- server lifecycle ----------------------------------------------------------

    async def serve(self, host: str = "127.0.0.1", port: int = 8765) -> None:
        """Run until cancelled; prints the bound address on stdout."""
        server = await asyncio.start_server(self._handle_connection, host, port)
        addr = server.sockets[0].getsockname()
        print(f"query service listening on http://{addr[0]}:{addr[1]}", flush=True)
        async with server:
            await server.serve_forever()

    # -- connection handling -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    return
                method, target, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                try:
                    handled = await self._dispatch(
                        method, target, headers, body, writer
                    )
                except _HttpError as exc:
                    await self._write_json(
                        writer,
                        exc.status,
                        {"error": exc.code, "message": str(exc)},
                        keep_alive,
                    )
                    continue
                except BlazeItError as exc:
                    status, payload = _error_payload(exc)
                    await self._write_json(writer, status, payload, keep_alive)
                    continue
                if handled == "streamed":
                    return  # SSE responses own the connection and close it
                if isinstance(handled, _TextResponse):
                    await self._write_text(writer, handled, keep_alive)
                    if not keep_alive:
                        return
                    continue
                status, payload = handled
                await self._write_json(writer, status, payload, keep_alive)
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise _HttpError(
                400, "bad_request", f"malformed request line {lines[0]!r}"
            ) from None
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise _HttpError(413, "payload_too_large", f"body of {length} bytes")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    # -- routing -------------------------------------------------------------------

    async def _dispatch(
        self,
        method: str,
        target: str,
        headers: dict[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> tuple[int, dict[str, Any]] | _TextResponse | str:
        url = urlsplit(target)
        parts = [p for p in url.path.split("/") if p]
        query_params = parse_qs(url.query)
        payload = self._parse_body(body)

        if parts == ["healthz"] and method == "GET":
            return 200, await self._call(self.manager.status)
        if parts == ["metrics"] and method == "GET":
            # The registry has its own lock (no manager lock, no planning),
            # so rendering inline on the loop is safe and fast.
            return _TextResponse(200, get_registry().render_prometheus())
        if parts == ["tenants"] and method == "POST":
            return 200, await self._create_tenant(payload)
        if parts == ["sessions"] and method == "POST":
            return 200, await self._create_session(payload)
        if len(parts) == 2 and parts[0] == "sessions" and method == "DELETE":
            await self._call(self.manager.close_session, parts[1])
            return 200, {"session_id": parts[1], "closed": True}
        if (
            len(parts) == 3
            and parts[0] == "sessions"
            and parts[2] == "prepare"
            and method == "POST"
        ):
            return 200, await self._call(
                self.manager.prepare,
                parts[1],
                self._required(payload, "query"),
                payload.get("hints"),
            )
        if parts == ["queries"] and method == "POST":
            return await self._submit_query(payload)
        if len(parts) == 2 and parts[0] == "queries":
            if method == "GET":
                record = await self._call(self.manager.query, parts[1])
                return 200, await self._call(record.status)
            if method == "DELETE":
                return 200, await self._call(self.manager.cancel, parts[1])
        if (
            len(parts) == 3
            and parts[0] == "queries"
            and parts[2] == "events"
            and method == "GET"
        ):
            await self._stream_events(writer, parts[1], query_params, headers)
            return "streamed"
        raise _HttpError(
            405 if parts else 404, "no_route", f"no route for {method} {url.path}"
        )

    def _parse_body(self, body: bytes) -> dict[str, Any]:
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise _HttpError(400, "bad_json", f"request body is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise _HttpError(400, "bad_json", "request body must be a JSON object")
        return payload

    @staticmethod
    def _required(payload: dict[str, Any], key: str) -> Any:
        if key not in payload:
            raise _HttpError(400, "missing_field", f"request needs {key!r}")
        return payload[key]

    # -- handlers ------------------------------------------------------------------

    async def _create_tenant(self, payload: dict[str, Any]) -> dict[str, Any]:
        from repro.service.manager import TenantQuota

        quota_payload = payload.get("quota") or {}
        if not isinstance(quota_payload, dict):
            raise _HttpError(400, "bad_quota", "quota must be a JSON object")
        quota = TenantQuota(
            max_detector_calls=quota_payload.get("max_detector_calls"),
            max_active_queries=quota_payload.get("max_active_queries"),
        )
        return await self._call(
            self.manager.create_tenant, self._required(payload, "name"), quota
        )

    async def _create_session(self, payload: dict[str, Any]) -> dict[str, Any]:
        from repro.service.protocol import hints_from_json

        session_id = await self._call(
            functools.partial(
                self.manager.create_session,
                self._required(payload, "tenant"),
                video=payload.get("video"),
                hints=hints_from_json(payload.get("hints")),
            )
        )
        return {"session_id": session_id}

    async def _submit_query(
        self, payload: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        from repro.api.hints import StopConditions

        stop_payload = payload.get("stop")
        stop = None
        if stop_payload is not None:
            if not isinstance(stop_payload, dict):
                raise _HttpError(400, "bad_stop", "stop must be a JSON object")
            stop = StopConditions(
                limit=stop_payload.get("limit"),
                ci_width=stop_payload.get("ci_width"),
                max_detector_calls=stop_payload.get("max_detector_calls"),
            )
        record = await self._call(
            functools.partial(
                self.manager.submit,
                self._required(payload, "session"),
                query=payload.get("query"),
                prepared_id=payload.get("prepared"),
                hints=payload.get("hints"),
                stop=stop,
                params=payload.get("params"),
            )
        )
        if payload.get("wait", True):
            loop = asyncio.get_running_loop()
            finished = await loop.run_in_executor(
                None, record.done.wait, _BLOCKING_TIMEOUT
            )
            if not finished:
                return 504, {
                    "error": "timeout",
                    "query_id": record.query_id,
                    "message": "query still running; poll GET /queries/{id}",
                }
            return 200, record.status()
        return 202, record.status()

    # -- SSE -----------------------------------------------------------------------

    async def _stream_events(
        self,
        writer: asyncio.StreamWriter,
        query_id: str,
        query_params: dict[str, list[str]],
        headers: dict[str, str],
    ) -> None:
        # NotFoundError propagates to the dispatcher and becomes a 404.
        record = await self._call(self.manager.query, query_id)
        start = 0
        if "last-event-id" in headers:
            start = int(headers["last-event-id"]) + 1
        if "from" in query_params:
            start = int(query_params["from"][0])
        cancel_on_disconnect = query_params.get("cancel_on_disconnect", ["1"])[
            0
        ] not in ("0", "false")

        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()

        loop = asyncio.get_running_loop()
        heartbeat = self.manager.config.heartbeat_seconds
        index = start
        try:
            while True:
                payload = await loop.run_in_executor(
                    None, record.log.wait_for, index, heartbeat
                )
                if payload is not None:
                    data = json.dumps(payload)
                    writer.write(
                        f"id: {index}\nevent: {payload['event']}\n"
                        f"data: {data}\n\n".encode()
                    )
                    await writer.drain()
                    index += 1
                    continue
                if record.log.closed and len(record.log) <= index:
                    # Terminal: tell the client why the stream ended.
                    final = json.dumps({"state": record.state})
                    writer.write(f"event: end\ndata: {final}\n\n".encode())
                    await writer.drain()
                    return
                # No event inside the heartbeat window: write a keep-alive
                # comment.  A vanished client surfaces here as a connection
                # error, which is our disconnect signal.
                writer.write(b": keep-alive\n\n")
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            if cancel_on_disconnect and not record.done.is_set():
                # Propagate the disconnect down to the execution: token set,
                # plan finalises, drainer closes the stream.
                await loop.run_in_executor(None, self.manager.cancel, query_id)
            raise

    # -- responses -----------------------------------------------------------------

    async def _write_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n\r\n"
        ).encode()
        writer.write(head + body)
        await writer.drain()

    async def _write_text(
        self,
        writer: asyncio.StreamWriter,
        response: _TextResponse,
        keep_alive: bool,
    ) -> None:
        body = response.body.encode()
        head = (
            f"HTTP/1.1 {response.status} "
            f"{_STATUS_TEXT.get(response.status, 'Unknown')}\r\n"
            f"Content-Type: {response.content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n\r\n"
        ).encode()
        writer.write(head + body)
        await writer.drain()


# -- embedding helpers -----------------------------------------------------------------


class ServiceThread:
    """Run a :class:`QueryServiceApp` on a background thread (tests, demos).

    ``with ServiceThread(manager) as svc:`` binds an ephemeral port, serves
    until the block exits, then stops the loop and shuts the manager down.
    The bound port is available as ``svc.port`` once ``__enter__`` returns.
    """

    def __init__(
        self, manager: ServiceManager, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()

    def __enter__(self) -> ServiceThread:
        self._thread = threading.Thread(
            target=self._run, name="query-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(10.0):
            raise RuntimeError("query service failed to start within 10s")
        return self

    def _run(self) -> None:
        app = QueryServiceApp(self.manager)
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def _main() -> None:
            server = await asyncio.start_server(
                app._handle_connection, self.host, self.port
            )
            self.port = server.sockets[0].getsockname()[1]
            self._started.set()
            async with server:
                await server.serve_forever()

        try:
            loop.run_until_complete(_main())
        except asyncio.CancelledError:
            pass
        finally:
            # Let cancelled connection handlers unwind before the loop dies.
            pending = asyncio.all_tasks(loop)
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def __exit__(self, *exc_info: object) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(
                lambda: [t.cancel() for t in asyncio.all_tasks(self._loop)]
            )
        if self._thread is not None:
            self._thread.join(10.0)
        self.manager.shutdown()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"


__all__ = ["QueryServiceApp", "ServiceThread"]
