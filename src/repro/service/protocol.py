"""Wire codecs for the query service: events, results, hints <-> JSON.

Everything the service puts on the wire round-trips losslessly through these
functions — the acceptance bar is that a result streamed over HTTP/SSE is
*byte-identical* (in canonical serialized form) to the result the same
session would have produced in process.  Two properties make that hold:

* floats are serialized by :mod:`json` with ``repr`` semantics (shortest
  round-trip), so every IEEE-754 double survives exactly;
* numpy arrays (detection features) are converted to ``float64`` lists and
  rebuilt as ``float64`` arrays, bit-for-bit.

The event taxonomy is *not* hard-coded here: codecs key off
:func:`repro.core.events.event_wire_types` (each event class carries its
stable ``wire_name`` tag), so new event types serialize automatically as long
as their fields are JSON-representable.

Ledger note: ``wall_seconds`` is real wall-clock time and can never match
across the wire; it is carried for observability but excluded from
:func:`result_fingerprint`, mirroring ``ExecutionLedger``'s own equality
semantics (``compare=False``).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

import numpy as np

from repro.api.hints import QueryHints, StopConditions
from repro.core.events import Completed, ExecutionEvent, event_wire_types
from repro.core.results import (
    AggregateResult,
    ExactResult,
    QueryResult,
    ScrubbingQueryResult,
    SelectionResult,
)
from repro.errors import ConfigurationError
from repro.frameql.schema import FrameRecord
from repro.metrics.runtime import ExecutionLedger, RuntimeLedger
from repro.video.geometry import BoundingBox

#: Wire-format version tag stamped onto every serialized event envelope.
PROTOCOL_VERSION = 1

_RESULT_TYPES: dict[str, type[QueryResult]] = {
    "aggregate": AggregateResult,
    "scrubbing": ScrubbingQueryResult,
    "selection": SelectionResult,
    "exact": ExactResult,
    "base": QueryResult,
}


def _result_wire_type(result: QueryResult) -> str:
    for name, cls in _RESULT_TYPES.items():
        if type(result) is cls:
            return name
    raise ConfigurationError(
        f"cannot serialize result type {type(result).__name__}"
    )


# -- ledgers ------------------------------------------------------------------------


def ledger_to_json(ledger: RuntimeLedger) -> dict[str, Any]:
    """JSON form of a ledger (execution counters included when present)."""
    payload: dict[str, Any] = {
        "execution": isinstance(ledger, ExecutionLedger),
        "charges": dict(ledger.charges),
        "calls": dict(ledger.calls),
    }
    if isinstance(ledger, ExecutionLedger):
        payload.update(
            detector_calls=ledger.detector_calls,
            frames_decoded=ledger.frames_decoded,
            detection_cache_hits=ledger.detection_cache_hits,
            shared_cache_hits=ledger.shared_cache_hits,
            index_hits=ledger.index_hits,
            index_skips=ledger.index_skips,
            batches_emitted=ledger.batches_emitted,
            events_emitted=ledger.events_emitted,
            wall_seconds=ledger.wall_seconds,
        )
    return payload


def ledger_from_json(payload: dict[str, Any]) -> RuntimeLedger:
    """Inverse of :func:`ledger_to_json`."""
    ledger: RuntimeLedger
    if payload.get("execution"):
        execution = ExecutionLedger()
        execution.restore_execution_counters(payload)
        ledger = execution
    else:
        ledger = RuntimeLedger()
    ledger.restore_charges(payload["charges"], payload["calls"])
    return ledger


# -- records ------------------------------------------------------------------------


def _record_to_json(record: FrameRecord) -> dict[str, Any]:
    return {
        "timestamp": record.timestamp,
        "frame_index": record.frame_index,
        "object_class": record.object_class,
        "mask": [
            record.mask.x_min,
            record.mask.y_min,
            record.mask.x_max,
            record.mask.y_max,
        ],
        "trackid": record.trackid,
        "features": (
            None
            if record.features is None
            else np.asarray(record.features, dtype=np.float64).tolist()
        ),
        "confidence": record.confidence,
        "color": None if record.color is None else list(record.color),
        "color_name": record.color_name,
    }


def _record_from_json(payload: dict[str, Any]) -> FrameRecord:
    return FrameRecord(
        timestamp=float(payload["timestamp"]),
        frame_index=int(payload["frame_index"]),
        object_class=str(payload["object_class"]),
        mask=BoundingBox(*payload["mask"]),
        trackid=payload["trackid"],
        features=(
            None
            if payload["features"] is None
            else np.asarray(payload["features"], dtype=np.float64)
        ),
        confidence=float(payload["confidence"]),
        color=None if payload["color"] is None else tuple(payload["color"]),
        color_name=payload["color_name"],
    )


# -- results ------------------------------------------------------------------------


def result_to_json(result: QueryResult) -> dict[str, Any]:
    """JSON form of any query result (all four classes plus the base)."""
    payload: dict[str, Any] = {
        "type": _result_wire_type(result),
        "kind": result.kind,
        "method": result.method,
        "ledger": ledger_to_json(result.ledger),
        "detection_calls": result.detection_calls,
        "plan_description": result.plan_description,
        "stop_reason": result.stop_reason,
    }
    if result.profile is not None:
        payload["profile"] = result.profile.to_json()
    if isinstance(result, AggregateResult):
        payload.update(
            value=result.value,
            error_tolerance=result.error_tolerance,
            confidence=result.confidence,
            samples_used=result.samples_used,
            half_width=result.half_width,
            correlation=result.correlation,
        )
    elif isinstance(result, ScrubbingQueryResult):
        payload.update(
            frames=[int(f) for f in result.frames],
            timestamps=[float(t) for t in result.timestamps],
            limit=result.limit,
            satisfied=result.satisfied,
        )
    elif isinstance(result, SelectionResult):
        payload.update(
            records=[_record_to_json(r) for r in result.records],
            matched_frames=[int(f) for f in result.matched_frames],
            frames_scanned=result.frames_scanned,
            frames_after_filters=result.frames_after_filters,
        )
    elif isinstance(result, ExactResult):
        payload.update(
            records=[_record_to_json(r) for r in result.records],
            value=result.value,
        )
    return payload


def result_from_json(payload: dict[str, Any]) -> QueryResult:
    """Inverse of :func:`result_to_json`."""
    try:
        cls = _RESULT_TYPES[payload["type"]]
    except KeyError:
        raise ConfigurationError(
            f"unknown result type {payload.get('type')!r} on the wire"
        ) from None
    common = dict(
        kind=payload["kind"],
        method=payload["method"],
        ledger=ledger_from_json(payload["ledger"]),
        detection_calls=int(payload["detection_calls"]),
        plan_description=payload["plan_description"],
        stop_reason=payload["stop_reason"],
    )
    if payload.get("profile") is not None:
        from repro.obs.profile import ExecutionProfile

        common["profile"] = ExecutionProfile.from_json(payload["profile"])
    if cls is AggregateResult:
        return AggregateResult(
            **common,
            value=float(payload["value"]),
            error_tolerance=(
                None
                if payload["error_tolerance"] is None
                else float(payload["error_tolerance"])
            ),
            confidence=float(payload["confidence"]),
            samples_used=int(payload["samples_used"]),
            half_width=float(payload["half_width"]),
            correlation=(
                None
                if payload["correlation"] is None
                else float(payload["correlation"])
            ),
        )
    if cls is ScrubbingQueryResult:
        return ScrubbingQueryResult(
            **common,
            frames=[int(f) for f in payload["frames"]],
            timestamps=[float(t) for t in payload["timestamps"]],
            limit=int(payload["limit"]),
            satisfied=bool(payload["satisfied"]),
        )
    if cls is SelectionResult:
        return SelectionResult(
            **common,
            records=[_record_from_json(r) for r in payload["records"]],
            matched_frames=[int(f) for f in payload["matched_frames"]],
            frames_scanned=int(payload["frames_scanned"]),
            frames_after_filters=int(payload["frames_after_filters"]),
        )
    if cls is ExactResult:
        return ExactResult(
            **common,
            records=[_record_from_json(r) for r in payload["records"]],
            value=None if payload["value"] is None else float(payload["value"]),
        )
    return QueryResult(**common)


def result_fingerprint(result: QueryResult) -> str:
    """Canonical serialized form of a result, for byte-identity comparisons.

    Wall-clock time (``ledger.wall_seconds``) is zeroed — it measures the
    machine, not the query — matching ``ExecutionLedger``'s own equality
    semantics.  The execution profile is likewise excluded: its span wall
    times are display-only observability, never part of the result proper,
    which is what makes a traced run byte-identical to an untraced one.
    Two results are "byte-identical over the wire" exactly when their
    fingerprints are equal strings.
    """
    payload = result_to_json(result)
    payload["ledger"].pop("wall_seconds", None)
    payload.pop("profile", None)
    return json.dumps(payload, sort_keys=True)


# -- events -------------------------------------------------------------------------


def event_to_json(event: ExecutionEvent) -> dict[str, Any]:
    """Envelope form of one execution event: ``{"v", "event", "data"}``."""
    if isinstance(event, Completed):
        data: dict[str, Any] = {
            "result": result_to_json(event.result),
            "stop_reason": event.stop_reason,
        }
    else:
        data = dataclasses.asdict(event)
        for key, value in data.items():
            if isinstance(value, (np.integer,)):
                data[key] = int(value)
            elif isinstance(value, (np.floating,)):
                data[key] = float(value)
    return {"v": PROTOCOL_VERSION, "event": event.wire_name, "data": data}


def event_from_json(payload: dict[str, Any]) -> ExecutionEvent:
    """Inverse of :func:`event_to_json`."""
    types = event_wire_types()
    name = payload.get("event")
    cls = types.get(str(name))
    if cls is None:
        raise ConfigurationError(f"unknown event type {name!r} on the wire")
    data = payload["data"]
    if cls is Completed:
        return Completed(
            result=result_from_json(data["result"]),
            stop_reason=data["stop_reason"],
        )
    return cls(**data)


# -- hints and stop conditions ------------------------------------------------------


def hints_to_json(hints: QueryHints) -> dict[str, Any]:
    """JSON form of a hint set (only non-default fields are emitted)."""
    payload: dict[str, Any] = {}
    if hints.scrubbing_indexed:
        payload["scrubbing_indexed"] = True
    if hints.selection_filter_classes is not None:
        payload["selection_filter_classes"] = sorted(hints.selection_filter_classes)
    if hints.stop_conditions is not None:
        stop = hints.stop_conditions
        payload["stop_conditions"] = {
            "limit": stop.limit,
            "ci_width": stop.ci_width,
            "max_detector_calls": stop.max_detector_calls,
        }
    if hints.batch_size is not None:
        payload["batch_size"] = hints.batch_size
    if hints.parallelism is not None:
        payload["parallelism"] = hints.parallelism
    if hints.backend is not None:
        payload["backend"] = hints.backend
    if hints.force_plan is not None:
        payload["force_plan"] = hints.force_plan
    if hints.use_index is not None:
        payload["use_index"] = hints.use_index
    if hints.trace is not None:
        payload["trace"] = hints.trace
    return payload


def hints_from_json(payload: dict[str, Any] | None) -> QueryHints | None:
    """Build :class:`QueryHints` from a request body (``None`` -> no hints).

    Validation is delegated to the ``QueryHints`` constructor, so a malformed
    hint raises :class:`~repro.errors.ConfigurationError` exactly as it would
    in process; unknown keys are rejected up front with the same error type.
    """
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise ConfigurationError(f"hints must be a JSON object, got {payload!r}")
    known = {
        "scrubbing_indexed",
        "selection_filter_classes",
        "stop_conditions",
        "batch_size",
        "parallelism",
        "backend",
        "force_plan",
        "use_index",
        "trace",
    }
    unknown = set(payload) - known
    if unknown:
        raise ConfigurationError(
            f"unknown hint fields {sorted(unknown)}; valid fields: {sorted(known)}"
        )
    kwargs: dict[str, Any] = {
        k: v for k, v in payload.items() if k != "stop_conditions"
    }
    if "selection_filter_classes" in kwargs and kwargs[
        "selection_filter_classes"
    ] is not None:
        classes = kwargs["selection_filter_classes"]
        if isinstance(classes, str) or not isinstance(classes, list):
            raise ConfigurationError(
                "selection_filter_classes must be a JSON list of class names, "
                f"got {classes!r}"
            )
        kwargs["selection_filter_classes"] = frozenset(classes)
    stop_payload = payload.get("stop_conditions")
    if stop_payload is not None:
        if not isinstance(stop_payload, dict):
            raise ConfigurationError(
                f"stop_conditions must be a JSON object, got {stop_payload!r}"
            )
        kwargs["stop_conditions"] = StopConditions(
            limit=stop_payload.get("limit"),
            ci_width=stop_payload.get("ci_width"),
            max_detector_calls=stop_payload.get("max_detector_calls"),
        )
    return QueryHints(**kwargs)


__all__ = [
    "PROTOCOL_VERSION",
    "event_to_json",
    "event_from_json",
    "result_to_json",
    "result_from_json",
    "result_fingerprint",
    "ledger_to_json",
    "ledger_from_json",
    "hints_to_json",
    "hints_from_json",
]
