"""Blocking HTTP client for the query service (stdlib ``http.client`` only).

The client mirrors the in-process session API one-to-one::

    with ServiceClient("127.0.0.1", 8765) as client:
        client.create_tenant("acme", max_detector_calls=100_000)
        session = client.create_session("acme")
        result = client.execute(session, "SELECT FCOUNT(*) FROM v WHERE class = 'car'")
        for index, event in client.stream(session, "SELECT * FROM v LIMIT 5"):
            ...

``execute`` returns a fully deserialized
:class:`~repro.core.results.QueryResult` — under a fixed engine seed it is
byte-identical (via :func:`~repro.service.protocol.result_fingerprint`) to
what the same call sequence produces in process.  ``stream`` yields
``(index, ExecutionEvent)`` pairs straight off the SSE wire and supports
resuming from any index after a dropped connection.
"""

from __future__ import annotations

import http.client
import json
from collections.abc import Iterator
from typing import Any

from repro.core.events import ExecutionEvent
from repro.core.results import QueryResult
from repro.errors import BlazeItError
from repro.service.protocol import event_from_json, result_from_json


class ServiceClientError(BlazeItError):
    """An error response from the service, with its HTTP status and code."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code


class ServiceClient:
    """Thin, dependency-free client for one query service."""

    def __init__(self, host: str, port: int, timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def __enter__(self) -> ServiceClient:
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    # -- plumbing ------------------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None if payload is None else json.dumps(payload)
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = json.loads(response.read() or b"{}")
            data: dict[str, Any] = raw if isinstance(raw, dict) else {"value": raw}
            if response.status >= 400:
                raise ServiceClientError(
                    response.status,
                    str(data.get("error", "error")),
                    str(data.get("message", "")),
                )
            return data
        finally:
            connection.close()

    # -- tenants / sessions ---------------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """The service's Prometheus text exposition (``GET /metrics``), raw."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            body = response.read().decode("utf-8")
            if response.status >= 400:
                raise ServiceClientError(response.status, "metrics", body)
            return body
        finally:
            connection.close()

    def create_tenant(
        self,
        name: str,
        max_detector_calls: int | None = None,
        max_active_queries: int | None = None,
    ) -> dict[str, Any]:
        return self._request(
            "POST",
            "/tenants",
            {
                "name": name,
                "quota": {
                    "max_detector_calls": max_detector_calls,
                    "max_active_queries": max_active_queries,
                },
            },
        )

    def create_session(
        self,
        tenant: str,
        video: str | None = None,
        hints: dict[str, Any] | None = None,
    ) -> str:
        payload: dict[str, Any] = {"tenant": tenant}
        if video is not None:
            payload["video"] = video
        if hints is not None:
            payload["hints"] = hints
        return str(self._request("POST", "/sessions", payload)["session_id"])

    def close_session(self, session_id: str) -> None:
        self._request("DELETE", f"/sessions/{session_id}")

    def prepare(
        self,
        session_id: str,
        query: str,
        hints: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {"query": query}
        if hints is not None:
            payload["hints"] = hints
        return self._request("POST", f"/sessions/{session_id}/prepare", payload)

    # -- queries -------------------------------------------------------------------

    def submit(
        self,
        session_id: str,
        query: str | None = None,
        prepared_id: str | None = None,
        hints: dict[str, Any] | None = None,
        stop: dict[str, Any] | None = None,
        params: dict[str, Any] | None = None,
        wait: bool = False,
    ) -> dict[str, Any]:
        """Submit a query; ``wait=False`` returns as soon as it is admitted."""
        payload: dict[str, Any] = {"session": session_id, "wait": wait}
        if query is not None:
            payload["query"] = query
        if prepared_id is not None:
            payload["prepared"] = prepared_id
        if hints is not None:
            payload["hints"] = hints
        if stop is not None:
            payload["stop"] = stop
        if params is not None:
            payload["params"] = params
        return self._request("POST", "/queries", payload)

    def execute(
        self,
        session_id: str,
        query: str | None = None,
        prepared_id: str | None = None,
        hints: dict[str, Any] | None = None,
        stop: dict[str, Any] | None = None,
        params: dict[str, Any] | None = None,
    ) -> QueryResult:
        """Blocking execution over the wire; returns the deserialized result."""
        status = self.submit(
            session_id,
            query=query,
            prepared_id=prepared_id,
            hints=hints,
            stop=stop,
            params=params,
            wait=True,
        )
        if status.get("state") != "completed" or "result" not in status:
            raise ServiceClientError(
                500,
                str(status.get("state", "unknown")),
                status.get("error") or f"query {status.get('query_id')} did not complete",
            )
        return result_from_json(status["result"])

    def query_status(self, query_id: str) -> dict[str, Any]:
        return self._request("GET", f"/queries/{query_id}")

    def cancel(self, query_id: str) -> dict[str, Any]:
        return self._request("DELETE", f"/queries/{query_id}")

    # -- SSE -----------------------------------------------------------------------

    def events(
        self,
        query_id: str,
        start: int = 0,
        cancel_on_disconnect: bool = True,
        decode: bool = True,
    ) -> Iterator[tuple[int, ExecutionEvent | dict[str, Any]]]:
        """Stream a query's events over SSE, yielding ``(index, event)``.

        Iteration ends when the server sends its terminal ``end`` marker.
        Abandoning the iterator mid-stream closes the socket, which (unless
        ``cancel_on_disconnect=False``) the server treats as a disconnect
        and cancels the query; to resume a watch instead, pass the last
        seen index + 1 as ``start`` on the next call.
        """
        suffix = "" if cancel_on_disconnect else "&cancel_on_disconnect=0"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                "GET", f"/queries/{query_id}/events?from={start}{suffix}"
            )
            response = connection.getresponse()
            if response.status >= 400:
                data = json.loads(response.read() or b"{}")
                raise ServiceClientError(
                    response.status,
                    str(data.get("error", "error")),
                    str(data.get("message", "")),
                )
            yield from self._parse_sse(response, decode)
        finally:
            connection.close()

    def stream(
        self, session_id: str, query: str, **submit_kwargs: Any
    ) -> Iterator[tuple[int, ExecutionEvent | dict[str, Any]]]:
        """Submit and stream in one call (the wire analogue of ``prepared.stream``)."""
        status = self.submit(session_id, query=query, wait=False, **submit_kwargs)
        return self.events(str(status["query_id"]))

    def _parse_sse(
        self, response: http.client.HTTPResponse, decode: bool
    ) -> Iterator[tuple[int, ExecutionEvent | dict[str, Any]]]:
        index: int | None = None
        event_name: str | None = None
        data_lines: list[str] = []
        for raw in response:
            line = raw.decode("utf-8").rstrip("\r\n")
            if line.startswith(":"):
                continue  # heartbeat comment
            if line.startswith("id:"):
                index = int(line[3:].strip())
            elif line.startswith("event:"):
                event_name = line[6:].strip()
            elif line.startswith("data:"):
                data_lines.append(line[5:].strip())
            elif line == "":
                if event_name == "end":
                    return
                if data_lines:
                    payload = json.loads("\n".join(data_lines))
                    assert index is not None, "server sent an event without an id"
                    yield (
                        index,
                        event_from_json(payload) if decode else payload,
                    )
                index, event_name, data_lines = None, None, []


__all__ = ["ServiceClient", "ServiceClientError"]
