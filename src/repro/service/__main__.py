"""CLI entry point: boot a query service over a simulated-video engine.

::

    PYTHONPATH=src python -m repro.service --scenario rialto --frames 2000 \\
        --seed 7 --port 8765 --slots 4

Registers the scenario's three splits (train / held-out / test) under the
video name ``v`` — so importance-ranked scrubbing and specialized-NN plans
are fully available — and serves until interrupted.  ``--detector-latency``
adds a simulated per-frame inference latency (seconds) to the detector,
standing in for the accelerator time a real detector spends; it is what
makes concurrency visible in wall-clock terms (the pure-Python noise model
is GIL-bound).
"""

from __future__ import annotations

import argparse
import asyncio
import time

from repro.core.config import BlazeItConfig
from repro.core.engine import BlazeIt
from repro.detection.base import DetectionResult
from repro.detection.simulated import SimulatedDetector
from repro.metrics.runtime import RuntimeLedger
from repro.video.synthetic import SyntheticVideo
from repro.service.app import QueryServiceApp
from repro.service.manager import ServiceConfig, ServiceManager, TenantQuota


class PacedSimulatedDetector(SimulatedDetector):
    """Simulated detector with a per-frame inference latency (releases the GIL)."""

    def __init__(self, seconds_per_frame: float) -> None:
        base = SimulatedDetector.mask_rcnn()
        super().__init__(
            name=base.name,
            cost=base.cost,
            noise=base.noise,
            confidence_threshold=base.confidence_threshold,
            supported=base._supported,
            seed=base.seed,
        )
        self.seconds_per_frame = seconds_per_frame

    def detect(
        self,
        video: SyntheticVideo,
        frame_index: int,
        ledger: RuntimeLedger | None = None,
    ) -> DetectionResult:
        time.sleep(self.seconds_per_frame)
        return super().detect(video, frame_index, ledger)

    def _detect_batch(
        self,
        video: SyntheticVideo,
        frame_indices: list[int],
        ledger: RuntimeLedger | None = None,
    ) -> list[DetectionResult]:
        time.sleep(self.seconds_per_frame * len(frame_indices))
        return super()._detect_batch(video, frame_indices, ledger)


def build_manager(args: argparse.Namespace) -> ServiceManager:
    detector = (
        PacedSimulatedDetector(args.detector_latency)
        if args.detector_latency > 0
        else SimulatedDetector.mask_rcnn()
    )
    engine = BlazeIt(detector=detector, config=BlazeItConfig(seed=args.seed))
    engine.register_scenario(args.scenario, name="v", num_frames=args.frames)
    config = ServiceConfig(
        slots=args.slots,
        max_queue_depth=args.queue_depth,
        default_quota=TenantQuota(max_detector_calls=args.default_budget),
        heartbeat_seconds=args.heartbeat,
    )
    return ServiceManager(engine, config)


def main() -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service", description=__doc__
    )
    parser.add_argument("--scenario", default="rialto", help="built-in scenario name")
    parser.add_argument("--frames", type=int, default=1000, help="frames per split")
    parser.add_argument("--seed", type=int, default=0, help="engine seed")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument("--slots", type=int, default=4, help="executor slots")
    parser.add_argument("--queue-depth", type=int, default=16)
    parser.add_argument(
        "--default-budget",
        type=int,
        default=None,
        help="default tenant detector-call budget (unlimited if omitted)",
    )
    parser.add_argument(
        "--detector-latency",
        type=float,
        default=0.0,
        help="simulated per-frame detector latency in seconds",
    )
    parser.add_argument("--heartbeat", type=float, default=2.0)
    args = parser.parse_args()

    manager = build_manager(args)
    app = QueryServiceApp(manager)
    try:
        asyncio.run(app.serve(args.host, args.port))
    except KeyboardInterrupt:
        pass
    finally:
        manager.shutdown()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
