"""Tenant, session and query registries for the query service.

The :class:`ServiceManager` is the transport-free heart of the service: it
owns one :class:`~repro.core.engine.BlazeIt` engine and exposes the whole
multi-tenant lifecycle — create tenants with detector-call quotas, open
engine sessions for them, prepare queries, submit executions through
admission control to the fair scheduler, stream serialized events out of an
:class:`EventLog`, cancel, and collect results.  The HTTP layer
(:mod:`repro.service.app`) is a thin shell over this class; every behaviour
worth testing is testable here without sockets.

Determinism contract: submitting a query draws its RNG stream *at admission
time* (``PreparedQuery.stream`` draws the seed eagerly and works lazily), so
for a fixed engine seed the results a client observes over the wire are
byte-identical to what the same sequence of ``session()`` / ``prepare()`` /
``execute()`` calls produces in process — regardless of how the scheduler
interleaves the actual work.

Quota contract: each tenant carries a cumulative detector-call budget.
Usage is charged from the terminal result's ``ExecutionLedger`` (the same
accounting every in-process caller sees), and enforcement happens at
admission: a tenant at or over budget gets a typed
:class:`QuotaExceededError` while other tenants are untouched.  Budgets are
deliberately *not* translated into per-query stop conditions — that would
change query results, breaking the byte-identity contract.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.core.events import Completed, ExecutionStream
from repro.errors import BlazeItError
from repro.obs.metrics import get_registry
from repro.service.protocol import event_to_json, hints_from_json, result_to_json
from repro.service.scheduler import FairScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.hints import QueryHints, StopConditions
    from repro.api.session import PreparedQuery, QuerySession
    from repro.core.engine import BlazeIt
    from repro.core.results import QueryResult


class ServiceError(BlazeItError):
    """Base class for service-layer rejections (carries an HTTP status)."""

    http_status = 500
    code = "service_error"


class QuotaExceededError(ServiceError):
    """The tenant's cumulative detector-call budget is exhausted (HTTP 429)."""

    http_status = 429
    code = "quota_exceeded"


class AdmissionRejectedError(ServiceError):
    """The service's bounded queue (or tenant concurrency cap) is full (HTTP 503)."""

    http_status = 503
    code = "admission_rejected"


class NotFoundError(ServiceError):
    """The referenced tenant/session/query does not exist (HTTP 404)."""

    http_status = 404
    code = "not_found"


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource limits.

    ``max_detector_calls`` bounds the *cumulative* charged detector
    invocations across all of the tenant's completed queries;
    ``max_active_queries`` bounds how many of the tenant's queries may be
    queued or running at once.  ``None`` means unlimited.
    """

    max_detector_calls: int | None = None
    max_active_queries: int | None = None


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for the service: executor capacity, admission bounds, defaults."""

    #: Executor slot count.  A query consumes ``max(1, parallelism)`` slots
    #: (clamped to the total), so the scheduler respects
    #: ``QueryHints.parallelism`` as genuine capacity demand.
    slots: int = 4
    #: Bound on queries waiting for a slot, across all tenants.  Submissions
    #: beyond it get a typed :class:`AdmissionRejectedError`.
    max_queue_depth: int = 16
    #: Quota applied to tenants created without an explicit one.
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    #: SSE keep-alive comment interval (used by the HTTP layer; heartbeats
    #: are how client disconnects are detected between events).
    heartbeat_seconds: float = 2.0
    #: Warm-start the engine's shared detection cache and statistics catalog
    #: from the persistent index store at boot (a no-op when the engine was
    #: built without ``index_dir``): a freshly started service answers hot
    #: queries with zero detector calls.
    warm_start_index: bool = True


class EventLog:
    """Append-only, index-addressed log of one query's serialized events.

    SSE streaming and resume are built on this: every appended payload gets
    the next integer index, :meth:`wait_for` blocks until a given index
    exists (or the log closes, or a timeout elapses — the timeout is what
    lets the HTTP layer interleave heartbeats), and a client that
    reconnects with ``Last-Event-ID: n`` simply starts reading at ``n + 1``.
    """

    def __init__(self) -> None:
        self._events: list[dict[str, Any]] = []
        self._cond = threading.Condition()
        self._closed = False

    def append(self, payload: dict[str, Any]) -> int:
        """Append one serialized event; returns its index."""
        with self._cond:
            self._events.append(payload)
            self._cond.notify_all()
            return len(self._events) - 1

    def close(self) -> None:
        """Mark the log complete; blocked readers wake up and drain."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._events)

    def snapshot(self, start: int = 0) -> list[dict[str, Any]]:
        """Every event at index >= ``start`` that exists right now."""
        with self._cond:
            return self._events[start:]

    def wait_for(
        self, index: int, timeout: float | None = None
    ) -> dict[str, Any] | None:
        """Block until event ``index`` exists and return it.

        Returns ``None`` if the log closed before the index was written, or
        on timeout while the log is still open (callers distinguish the two
        via :attr:`closed`).
        """
        with self._cond:
            self._cond.wait_for(
                lambda: len(self._events) > index or self._closed, timeout
            )
            if len(self._events) > index:
                return self._events[index]
            return None


#: Query lifecycle states, in order of progression.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
CANCELLED = "cancelled"
FAILED = "failed"


class QueryRecord:
    """One submitted query: its stream, event log, state and terminal result."""

    def __init__(
        self,
        query_id: str,
        tenant_name: str,
        session_id: str,
        text: str,
        stream: ExecutionStream,
        slots: int,
    ) -> None:
        self.query_id = query_id
        self.tenant_name = tenant_name
        self.session_id = session_id
        self.text = text
        self.stream = stream
        self.slots = slots
        self.log = EventLog()
        self.state = QUEUED
        self.result: QueryResult | None = None
        self.stop_reason: str | None = None
        self.error: str | None = None
        self.cancel_requested = False
        self.done = threading.Event()
        # Wall-clock lifecycle stamps (satellite S1).  Display-only: they
        # feed the status payload and the metrics registry, never results.
        self.submitted_at: float | None = None  # admission accepted
        self.enqueued_at: float | None = None  # entered the scheduler queue
        self.dispatched_at: float | None = None  # drainer thread started
        self.first_event_at: float | None = None  # first event logged (TTFE)

    # The scheduler keys fairness and serialization off these two:
    @property
    def tenant_key(self) -> str:
        return self.tenant_name

    @property
    def session_key(self) -> str:
        return self.session_id

    @property
    def admission_wait_seconds(self) -> float | None:
        """Admission accepted -> drainer started (queue + slot wait)."""
        if self.submitted_at is None or self.dispatched_at is None:
            return None
        return max(0.0, self.dispatched_at - self.submitted_at)

    @property
    def slot_wait_seconds(self) -> float | None:
        """Scheduler queue entry -> drainer started (pure slot contention)."""
        if self.enqueued_at is None or self.dispatched_at is None:
            return None
        return max(0.0, self.dispatched_at - self.enqueued_at)

    @property
    def ttfe_seconds(self) -> float | None:
        """Admission accepted -> first event on the log (time to first event)."""
        if self.submitted_at is None or self.first_event_at is None:
            return None
        return max(0.0, self.first_event_at - self.submitted_at)

    def status(self) -> dict[str, Any]:
        """JSON-ready status summary (no event payloads)."""
        payload: dict[str, Any] = {
            "query_id": self.query_id,
            "tenant": self.tenant_name,
            "session_id": self.session_id,
            "query": self.text,
            "state": self.state,
            "events": len(self.log),
            "slots": self.slots,
            "stop_reason": self.stop_reason,
            "admission_wait_seconds": self.admission_wait_seconds,
            "slot_wait_seconds": self.slot_wait_seconds,
            "ttfe_seconds": self.ttfe_seconds,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.result is not None:
            payload["result"] = result_to_json(self.result)
        return payload


class TenantState:
    """A tenant's quota and cumulative usage (guarded by the manager lock)."""

    def __init__(self, name: str, quota: TenantQuota) -> None:
        self.name = name
        self.quota = quota
        self.detector_calls_charged = 0
        self.queries_submitted = 0
        self.queries_finished = 0
        self.active_queries = 0

    def status(self) -> dict[str, Any]:
        return {
            "tenant": self.name,
            "quota": {
                "max_detector_calls": self.quota.max_detector_calls,
                "max_active_queries": self.quota.max_active_queries,
            },
            "detector_calls_charged": self.detector_calls_charged,
            "queries_submitted": self.queries_submitted,
            "queries_finished": self.queries_finished,
            "active_queries": self.active_queries,
        }


class SessionRecord:
    """One engine session owned by a tenant, plus its prepared statements."""

    def __init__(
        self, session_id: str, tenant_name: str, session: QuerySession
    ) -> None:
        self.session_id = session_id
        self.tenant_name = tenant_name
        self.session = session
        self.prepared: dict[str, PreparedQuery] = {}
        self._prepared_ids = itertools.count()

    def add_prepared(self, prepared: PreparedQuery) -> str:
        prepared_id = f"{self.session_id}-p{next(self._prepared_ids)}"
        self.prepared[prepared_id] = prepared
        return prepared_id


class ServiceManager:
    """Registries + admission control + quota accounting over one engine."""

    def __init__(self, engine: BlazeIt, config: ServiceConfig | None = None) -> None:
        self.engine = engine
        self.config = config or ServiceConfig()
        self._lock = threading.Lock()
        self._tenants: dict[str, TenantState] = {}
        self._sessions: dict[str, SessionRecord] = {}
        self._queries: dict[str, QueryRecord] = {}
        self._ids = itertools.count()
        self._closed = False
        self.warm_start_report: dict[str, Any] | None = None
        if self.config.warm_start_index:
            self.warm_start_report = engine.warm_start()
        self.scheduler = FairScheduler(self.config.slots, self._drain)

    # -- tenants -------------------------------------------------------------------

    def create_tenant(
        self, name: str, quota: TenantQuota | None = None
    ) -> dict[str, Any]:
        """Register a tenant (idempotent only for distinct names)."""
        with self._lock:
            self._ensure_open()
            if name in self._tenants:
                raise ServiceError(f"tenant {name!r} already exists")
            tenant = TenantState(name, quota or self.config.default_quota)
            self._tenants[name] = tenant
            return tenant.status()

    def tenant_status(self, name: str) -> dict[str, Any]:
        with self._lock:
            return self._tenant(name).status()

    def _tenant(self, name: str) -> TenantState:
        tenant = self._tenants.get(name)
        if tenant is None:
            raise NotFoundError(f"unknown tenant {name!r}")
        return tenant

    # -- sessions ------------------------------------------------------------------

    def create_session(
        self,
        tenant_name: str,
        video: str | None = None,
        hints: QueryHints | Mapping[str, Any] | None = None,
    ) -> str:
        """Open an engine session for a tenant; returns the session id.

        Sessions are created in request order, which fixes their seed
        sequences: the n-th session the service opens draws the same RNG
        ancestry as the n-th ``engine.session()`` call in process.
        """
        if isinstance(hints, Mapping):
            hints = hints_from_json(dict(hints))
        with self._lock:
            self._ensure_open()
            self._tenant(tenant_name)
            session = self.engine.session(video=video, hints=hints)
            session_id = f"s{next(self._ids)}"
            self._sessions[session_id] = SessionRecord(
                session_id, tenant_name, session
            )
            return session_id

    def _session(self, session_id: str) -> SessionRecord:
        record = self._sessions.get(session_id)
        if record is None:
            raise NotFoundError(f"unknown session {session_id!r}")
        return record

    def close_session(self, session_id: str) -> None:
        with self._lock:
            record = self._session(session_id)
            record.session.close()
            del self._sessions[session_id]

    # -- prepared statements -------------------------------------------------------

    def prepare(
        self,
        session_id: str,
        query: str,
        hints: QueryHints | Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Parse/analyze/plan once inside a session; returns id + plan info."""
        if isinstance(hints, Mapping):
            hints = hints_from_json(dict(hints))
        with self._lock:
            self._ensure_open()
            record = self._session(session_id)
            prepared = record.session.prepare(query, hints=hints)
            prepared_id = record.add_prepared(prepared)
            return {
                "prepared_id": prepared_id,
                "session_id": session_id,
                "query": query,
                "kind": prepared.spec.kind.value,
                "plan": prepared.plan.describe(),
            }

    # -- submission / admission ----------------------------------------------------

    def submit(
        self,
        session_id: str,
        query: str | None = None,
        prepared_id: str | None = None,
        hints: QueryHints | Mapping[str, Any] | None = None,
        stop: StopConditions | None = None,
        params: Mapping[str, Any] | None = None,
    ) -> QueryRecord:
        """Admit one query for execution; returns its record immediately.

        Admission order is total (one lock): quota check, queue-depth check,
        then the RNG draw — so a rejected submission consumes no seed and a
        fixed admission order reproduces a fixed result sequence.  Raises
        :class:`QuotaExceededError` (tenant over budget),
        :class:`AdmissionRejectedError` (queue full / tenant concurrency
        cap), or :class:`NotFoundError`.
        """
        if isinstance(hints, Mapping):
            hints = hints_from_json(dict(hints))
        if (query is None) == (prepared_id is None):
            raise ServiceError("submit needs exactly one of query= or prepared_id=")
        with self._lock:
            self._ensure_open()
            session_record = self._session(session_id)
            tenant = self._tenant(session_record.tenant_name)
            quota = tenant.quota
            if (
                quota.max_detector_calls is not None
                and tenant.detector_calls_charged >= quota.max_detector_calls
            ):
                get_registry().inc(
                    "repro_quota_rejections_total",
                    labels={"tenant": tenant.name},
                    help="Submissions rejected by an exhausted detector-call quota.",
                )
                raise QuotaExceededError(
                    f"tenant {tenant.name!r} has charged "
                    f"{tenant.detector_calls_charged} detector calls against a "
                    f"budget of {quota.max_detector_calls}"
                )
            if (
                quota.max_active_queries is not None
                and tenant.active_queries >= quota.max_active_queries
            ):
                get_registry().inc(
                    "repro_admission_rejections_total",
                    labels={"reason": "tenant_cap"},
                    help="Submissions rejected at admission (queue full or tenant cap).",
                )
                raise AdmissionRejectedError(
                    f"tenant {tenant.name!r} already has {tenant.active_queries} "
                    f"active queries (cap {quota.max_active_queries})"
                )
            if self.scheduler.queued_count() >= self.config.max_queue_depth:
                get_registry().inc(
                    "repro_admission_rejections_total",
                    labels={"reason": "queue_full"},
                    help="Submissions rejected at admission (queue full or tenant cap).",
                )
                raise AdmissionRejectedError(
                    f"admission queue is full "
                    f"({self.config.max_queue_depth} queries waiting)"
                )
            if prepared_id is not None:
                prepared = session_record.prepared.get(prepared_id)
                if prepared is None:
                    raise NotFoundError(
                        f"unknown prepared query {prepared_id!r} "
                        f"in session {session_id!r}"
                    )
            else:
                assert query is not None
                prepared = session_record.session.prepare(query, hints=hints)
            # The stream draws its seed here, under the admission lock, so
            # RNG ancestry follows admission order exactly.
            stream = prepared.stream(stop=stop, **dict(params or {}))
            workers = prepared._effective_parallelism(None)
            slots = max(1, min(workers, self.config.slots))
            record = QueryRecord(
                query_id=f"q{next(self._ids)}",
                tenant_name=tenant.name,
                session_id=session_id,
                text=prepared.text,
                stream=stream,
                slots=slots,
            )
            self._queries[record.query_id] = record
            tenant.queries_submitted += 1
            tenant.active_queries += 1
            record.submitted_at = time.perf_counter()
        self.scheduler.submit(record)
        return record

    # -- execution (scheduler drainer callback) ------------------------------------

    def _drain(self, record: QueryRecord) -> None:
        """Run one admitted query to its terminal state (drainer thread body).

        Pulls the execution stream event by event, appending each serialized
        event to the record's log.  Cancellation is cooperative: once
        requested, the plan finalises a partial result at the next batch
        boundary, the terminal ``Completed`` still flows through the log,
        and the stream is closed — after which not a single further detector
        call can happen (the generator, and under parallel execution every
        shard worker, is gone).
        """
        record.state = RUNNING
        registry = get_registry()
        wait = record.admission_wait_seconds
        if wait is not None:
            registry.observe(
                "repro_admission_wait_seconds",
                wait,
                help="Admission-accepted to drainer-start wait per query.",
            )
        slot_wait = record.slot_wait_seconds
        if slot_wait is not None:
            registry.observe(
                "repro_slot_wait_seconds",
                slot_wait,
                help="Scheduler-queue to drainer-start wait per query.",
            )
        stream = record.stream
        try:
            for event in stream:
                record.log.append(event_to_json(event))
                if record.first_event_at is None:
                    record.first_event_at = time.perf_counter()
                    ttfe = record.ttfe_seconds
                    if ttfe is not None:
                        registry.observe(
                            "repro_ttfe_seconds",
                            ttfe,
                            help="Admission-accepted to first-event latency per query.",
                        )
                if isinstance(event, Completed):
                    record.result = event.result
                    record.stop_reason = event.stop_reason
        except BlazeItError as exc:
            record.error = f"{type(exc).__name__}: {exc}"
        finally:
            stream.close()
            self._finalise(record)
            record.log.close()
            record.done.set()

    def _finalise(self, record: QueryRecord) -> None:
        with self._lock:
            if record.error is not None:
                record.state = FAILED
            elif record.stop_reason == "cancelled" or (
                record.cancel_requested and record.result is None
            ):
                # A cancel that lands after the query already produced its
                # natural terminal result does not rewrite history: the
                # query is COMPLETED unless the plan itself stopped on the
                # cancellation token.
                record.state = CANCELLED
            else:
                record.state = COMPLETED
            tenant = self._tenants.get(record.tenant_name)
            if tenant is not None:
                tenant.active_queries -= 1
                tenant.queries_finished += 1
                if record.result is not None:
                    tenant.detector_calls_charged += (
                        record.result.execution_ledger.detector_calls
                    )

    # -- query control -------------------------------------------------------------

    def query(self, query_id: str) -> QueryRecord:
        with self._lock:
            record = self._queries.get(query_id)
            if record is None:
                raise NotFoundError(f"unknown query {query_id!r}")
            return record

    def cancel(self, query_id: str) -> dict[str, Any]:
        """Cancel a query: dequeue it if still queued, else stop it cooperatively.

        For a running query this sets the shared cancellation token (every
        shard worker observes it between detection chunks) and lets the
        drainer collect the partial result; the caller can wait on
        ``record.done`` for the terminal state.
        """
        record = self.query(query_id)
        record.cancel_requested = True
        if self.scheduler.withdraw(record):
            # Never started: no result, no charge, log just closes.
            self._finalise(record)
            record.log.close()
            record.done.set()
            return record.status()
        record.stream.cancel()
        return record.status()

    # -- lifecycle -----------------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceError("service manager is shut down")

    def shutdown(self, timeout: float = 10.0) -> None:
        """Cancel everything queued, stop running queries, join drainers."""
        with self._lock:
            self._closed = True
            records = list(self._queries.values())
        for record in records:
            if not record.done.is_set():
                record.cancel_requested = True
                if self.scheduler.withdraw(record):
                    self._finalise(record)
                    record.log.close()
                    record.done.set()
                else:
                    record.stream.cancel()
        self.scheduler.shutdown(timeout)

    def status(self) -> dict[str, Any]:
        """Service-wide status summary for the health endpoint."""
        # The index snapshot walks the store's manifests; it takes no manager
        # state, so it is assembled outside the lock.
        index = self.engine.index_status()
        if self.warm_start_report is not None:
            index["warm_start"] = self.warm_start_report
        with self._lock:
            return {
                "tenants": len(self._tenants),
                "sessions": len(self._sessions),
                "queries": len(self._queries),
                "slots": self.config.slots,
                "queued": self.scheduler.queued_count(),
                "running": self.scheduler.running_count(),
                "index": index,
                "metrics": get_registry().snapshot(),
            }


__all__ = [
    "ServiceManager",
    "ServiceConfig",
    "TenantQuota",
    "EventLog",
    "QueryRecord",
    "ServiceError",
    "QuotaExceededError",
    "AdmissionRejectedError",
    "NotFoundError",
    "QUEUED",
    "RUNNING",
    "COMPLETED",
    "CANCELLED",
    "FAILED",
]
