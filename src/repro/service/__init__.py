"""Multi-tenant async query service: sessions, quotas and streaming on the wire.

The service layer turns one :class:`~repro.core.engine.BlazeIt` engine into
a long-running shared server:

- :mod:`repro.service.protocol` — lossless JSON codecs for execution events,
  query results and hints (the byte-identity contract lives here);
- :mod:`repro.service.manager` — tenants with detector-call quotas, engine
  sessions, admission control with a bounded queue, and per-query event logs;
- :mod:`repro.service.scheduler` — fair round-robin slot scheduler honouring
  ``QueryHints.parallelism`` as capacity demand;
- :mod:`repro.service.app` — stdlib-asyncio HTTP + SSE front-end;
- :mod:`repro.service.client` — dependency-free blocking client.

Start a demo server with ``python -m repro.service --scenario rialto``.
"""

from repro.service.client import ServiceClient, ServiceClientError
from repro.service.manager import (
    AdmissionRejectedError,
    NotFoundError,
    QuotaExceededError,
    ServiceConfig,
    ServiceError,
    ServiceManager,
    TenantQuota,
)
from repro.service.protocol import (
    event_from_json,
    event_to_json,
    result_fingerprint,
    result_from_json,
    result_to_json,
)

__all__ = [
    "ServiceManager",
    "ServiceConfig",
    "TenantQuota",
    "ServiceError",
    "QuotaExceededError",
    "AdmissionRejectedError",
    "NotFoundError",
    "ServiceClient",
    "ServiceClientError",
    "event_to_json",
    "event_from_json",
    "result_to_json",
    "result_from_json",
    "result_fingerprint",
]
