"""Fair slot-based scheduler for concurrent query execution.

The service runs many tenants' queries on one shared executor.  Capacity is
modelled as *slots*: a query consumes ``max(1, parallelism)`` slots (its
shard workers are real threads competing for the same cores), so a
4-worker parallel query takes four times the capacity of a sequential one —
this is how ``QueryHints.parallelism`` is respected as demand rather than
ignored or trusted blindly.

Fairness is round-robin across tenants: each tenant has a FIFO queue, and
dispatch walks tenants in rotation starting after the last tenant served, so
one tenant flooding the queue cannot starve the others.  Within a tenant,
order is strictly FIFO.

Two additional invariants:

* **Per-session serialization.**  At most one query per engine session runs
  at a time.  Sequential execution re-binds the session context's RNG on
  every event pull, so two concurrent queries of one session would race on
  shared state; queries from *different* sessions have disjoint contexts
  and run freely in parallel.
* **One drainer thread per running query.**  The callback the manager
  provides pulls the query's event stream to its terminal state; the thread
  exists only while the query runs.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.manager import QueryRecord


class FairScheduler:
    """Round-robin-across-tenants, FIFO-within-tenant slot scheduler."""

    def __init__(
        self, slots: int, run: Callable[[QueryRecord], None]
    ) -> None:
        if slots < 1:
            raise ConfigurationError(f"scheduler needs >= 1 slot, got {slots}")
        self._slots = slots
        self._free = slots
        self._run = run
        self._lock = threading.Lock()
        self._queues: dict[str, deque[QueryRecord]] = {}
        self._rotation: list[str] = []
        self._cursor = 0
        self._busy_sessions: set[str] = set()
        self._running: dict[str, threading.Thread] = {}
        self._idle = threading.Condition(self._lock)

    # -- introspection -------------------------------------------------------------

    def queued_count(self) -> int:
        with self._lock:
            return sum(len(q) for q in self._queues.values())

    def running_count(self) -> int:
        with self._lock:
            return len(self._running)

    # -- submission ----------------------------------------------------------------

    def submit(self, record: QueryRecord) -> None:
        """Enqueue an admitted query and dispatch whatever now fits."""
        with self._lock:
            tenant = record.tenant_key
            queue = self._queues.get(tenant)
            if queue is None:
                queue = self._queues[tenant] = deque()
                self._rotation.append(tenant)
            record.enqueued_at = time.perf_counter()
            queue.append(record)
            self._dispatch_locked()

    def withdraw(self, record: QueryRecord) -> bool:
        """Remove a still-queued record; ``False`` if it already started."""
        with self._lock:
            queue = self._queues.get(record.tenant_key)
            if queue is not None and record in queue:
                queue.remove(record)
                return True
            return False

    # -- dispatch ------------------------------------------------------------------

    def _dispatch_locked(self) -> None:
        """Start every queued query that fits, fairly.  Caller holds the lock.

        Each pass walks the tenant rotation once starting after the tenant
        served last; a tenant whose head-of-queue query cannot start (its
        session is busy, or not enough free slots) is skipped without losing
        its turn.  Passes repeat until one makes no progress.
        """
        progressed = True
        while progressed:
            progressed = False
            count = len(self._rotation)
            for step in range(count):
                index = (self._cursor + step) % count
                queue = self._queues.get(self._rotation[index])
                if not queue:
                    continue
                record = queue[0]
                demand = min(record.slots, self._slots)
                if record.session_key in self._busy_sessions:
                    continue
                if demand > self._free:
                    continue
                queue.popleft()
                record.dispatched_at = time.perf_counter()
                self._free -= demand
                self._busy_sessions.add(record.session_key)
                # No modulo here: the rotation can grow before the next
                # dispatch, and wrapping now would hand the turn back to the
                # first tenant instead of the next one.
                self._cursor = index + 1
                thread = threading.Thread(
                    target=self._drain,
                    args=(record, demand),
                    name=f"query-{record.query_id}",
                    daemon=True,
                )
                self._running[record.query_id] = thread
                thread.start()
                progressed = True
                break

    def _drain(self, record: QueryRecord, demand: int) -> None:
        try:
            self._run(record)
        finally:
            with self._lock:
                self._free += demand
                self._busy_sessions.discard(record.session_key)
                self._running.pop(record.query_id, None)
                self._dispatch_locked()
                self._idle.notify_all()

    # -- lifecycle -----------------------------------------------------------------

    def shutdown(self, timeout: float = 10.0) -> None:
        """Drop everything still queued and wait for running drainers.

        The manager is expected to have cancelled running queries first;
        this only waits for their drainers to finish and clears the queues.
        """
        with self._lock:
            for queue in self._queues.values():
                queue.clear()
            threads = list(self._running.values())
        for thread in threads:
            thread.join(timeout)

    def wait_idle(self, timeout: float = 30.0) -> bool:
        """Block until nothing is queued or running (test helper)."""
        with self._lock:
            return self._idle.wait_for(
                lambda: not self._running
                and not any(self._queues.values()),
                timeout,
            )


__all__ = ["FairScheduler"]
