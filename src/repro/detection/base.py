"""Detector interface and detection records.

A :class:`Detection` corresponds to one row of the FrameQL schema (Table 1)
before entity resolution: the object class, the mask (bounding box), the
detector confidence and the feature vector.  ``trackid`` is filled in later by
the tracking substrate.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.metrics.runtime import ExecutionLedger, OperatorCost, RuntimeLedger
from repro.video.geometry import BoundingBox
from repro.video.synthetic import SyntheticVideo


@dataclass
class Detection:
    """One detected object in one frame."""

    frame_index: int
    timestamp: float
    object_class: str
    box: BoundingBox
    confidence: float
    features: np.ndarray | None = None
    track_id: int | None = None
    color: tuple[float, float, float] | None = None
    color_name: str | None = None

    @property
    def area(self) -> float:
        """Area of the detection's bounding box."""
        return self.box.area


@dataclass
class DetectionResult:
    """All detections produced for one frame."""

    frame_index: int
    timestamp: float
    detections: list[Detection] = field(default_factory=list)

    def of_class(self, object_class: str) -> list[Detection]:
        """Detections of one object class."""
        return [d for d in self.detections if d.object_class == object_class]

    def count(self, object_class: str | None = None) -> int:
        """Number of detections, optionally restricted to one class."""
        if object_class is None:
            return len(self.detections)
        return sum(1 for d in self.detections if d.object_class == object_class)


def resolve_detection_batch(
    frame_indices,
    execution_ledger: ExecutionLedger | None,
    compute_misses,
) -> list[DetectionResult]:
    """Serve a batch of frames from the detection cache, computing the misses.

    The single home of the batch cache-accounting semantics, shared by
    :meth:`ObjectDetector.detect_many` and
    :meth:`repro.core.context.ExecutionContext.detect_batch`: frames already
    in the execution ledger's per-execution cache — and repeats within the
    batch — are accounted as cache hits, exactly as a sequential loop of
    cache-aware ``detect`` calls would do; the deduplicated misses are
    computed by ``compute_misses(miss_frames)`` (which owns all charging) and
    recorded into the cache.  Results come back in input order.
    """
    order = [int(i) for i in frame_indices]
    out: list[DetectionResult | None] = [None] * len(order)
    miss_frames: list[int] = []
    scheduled: set[int] = set()
    for pos, frame_index in enumerate(order):
        cached = (
            execution_ledger.cached_detection(frame_index)
            if execution_ledger is not None
            else None
        )
        if cached is not None:
            execution_ledger.record_cache_hit()
            out[pos] = cached
        elif frame_index in scheduled:
            if execution_ledger is not None:
                execution_ledger.record_cache_hit()
        else:
            scheduled.add(frame_index)
            miss_frames.append(frame_index)
    if miss_frames:
        computed = dict(zip(miss_frames, compute_misses(miss_frames), strict=True))
        if execution_ledger is not None:
            for frame_index, result in computed.items():
                execution_ledger.record_detection(frame_index, result)
        for pos, frame_index in enumerate(order):
            if out[pos] is None:
                out[pos] = computed[frame_index]
    return out  # type: ignore[return-value]


class ObjectDetector(abc.ABC):
    """Interface every object detection method implements.

    The user-configurable object detection method of Section 3: BlazeIt "aims
    to be as accurate as the configured methods" and treats the detector
    output as ground truth.
    """

    #: Human-readable detector name (e.g. ``"mask_rcnn"``).
    name: str = "detector"

    #: Whether the detector holds the GIL for the duration of a call.  A
    #: well-behaved binding releases the GIL while the accelerator works (the
    #: simulated detector models that: its *charged* latency is overlappable),
    #: so threads parallelize it; a detector that computes in pure Python or
    #: through a GIL-holding extension must declare ``True`` so the optimizer
    #: knows only process workers can overlap it.
    gil_bound: bool = False

    @property
    @abc.abstractmethod
    def cost(self) -> OperatorCost:
        """Simulated cost of one detection call."""

    @abc.abstractmethod
    def detect(
        self,
        video: SyntheticVideo,
        frame_index: int,
        ledger: RuntimeLedger | None = None,
    ) -> DetectionResult:
        """Run detection on one frame, charging the cost to ``ledger`` if given."""

    def detect_many(
        self,
        video: SyntheticVideo,
        frame_indices: list[int] | np.ndarray,
        ledger: RuntimeLedger | None = None,
    ) -> list[DetectionResult]:
        """Run detection on several frames, never recomputing a repeated frame.

        The batch is routed through the cache-aware path: when ``ledger`` is
        an :class:`~repro.metrics.runtime.ExecutionLedger`, frames already in
        its per-execution detection cache are served (and accounted) as cache
        hits, and freshly computed frames are recorded into it — exactly the
        accounting a sequential loop of cache-aware ``detect`` calls would
        produce.  Repeats within the batch are computed and charged once;
        with a plain ledger the deduped repeats are simply free.

        Subclasses vectorize the actual computation by overriding
        :meth:`_detect_batch`; the deduping and cache bookkeeping live in
        :func:`resolve_detection_batch`.
        """
        execution_ledger = ledger if isinstance(ledger, ExecutionLedger) else None
        return resolve_detection_batch(
            frame_indices,
            execution_ledger,
            lambda miss_frames: self._detect_batch(video, miss_frames, ledger),
        )

    def _detect_batch(
        self,
        video: SyntheticVideo,
        frame_indices: list[int],
        ledger: RuntimeLedger | None = None,
    ) -> list[DetectionResult]:
        """Compute detections for a deduplicated batch of frames.

        The vectorization hook behind :meth:`detect_many`: implementations
        charge ``ledger`` once per frame and may share work across the batch.
        The default simply loops :meth:`detect`.
        """
        return [self.detect(video, int(i), ledger) for i in frame_indices]

    def supported_classes(self) -> set[str] | None:
        """Object classes the detector can return, or ``None`` for "any"."""
        return None
