"""Detector interface and detection records.

A :class:`Detection` corresponds to one row of the FrameQL schema (Table 1)
before entity resolution: the object class, the mask (bounding box), the
detector confidence and the feature vector.  ``trackid`` is filled in later by
the tracking substrate.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.metrics.runtime import OperatorCost, RuntimeLedger
from repro.video.geometry import BoundingBox
from repro.video.synthetic import SyntheticVideo


@dataclass
class Detection:
    """One detected object in one frame."""

    frame_index: int
    timestamp: float
    object_class: str
    box: BoundingBox
    confidence: float
    features: np.ndarray | None = None
    track_id: int | None = None
    color: tuple[float, float, float] | None = None
    color_name: str | None = None

    @property
    def area(self) -> float:
        """Area of the detection's bounding box."""
        return self.box.area


@dataclass
class DetectionResult:
    """All detections produced for one frame."""

    frame_index: int
    timestamp: float
    detections: list[Detection] = field(default_factory=list)

    def of_class(self, object_class: str) -> list[Detection]:
        """Detections of one object class."""
        return [d for d in self.detections if d.object_class == object_class]

    def count(self, object_class: str | None = None) -> int:
        """Number of detections, optionally restricted to one class."""
        if object_class is None:
            return len(self.detections)
        return sum(1 for d in self.detections if d.object_class == object_class)


class ObjectDetector(abc.ABC):
    """Interface every object detection method implements.

    The user-configurable object detection method of Section 3: BlazeIt "aims
    to be as accurate as the configured methods" and treats the detector
    output as ground truth.
    """

    #: Human-readable detector name (e.g. ``"mask_rcnn"``).
    name: str = "detector"

    @property
    @abc.abstractmethod
    def cost(self) -> OperatorCost:
        """Simulated cost of one detection call."""

    @abc.abstractmethod
    def detect(
        self,
        video: SyntheticVideo,
        frame_index: int,
        ledger: RuntimeLedger | None = None,
    ) -> DetectionResult:
        """Run detection on one frame, charging the cost to ``ledger`` if given."""

    def detect_many(
        self,
        video: SyntheticVideo,
        frame_indices: list[int] | np.ndarray,
        ledger: RuntimeLedger | None = None,
    ) -> list[DetectionResult]:
        """Run detection on several frames."""
        return [self.detect(video, int(i), ledger) for i in frame_indices]

    def supported_classes(self) -> set[str] | None:
        """Object classes the detector can return, or ``None`` for "any"."""
        return None
