"""Lossless columnar encoding of detection results.

Per-object :class:`~repro.detection.base.DetectionResult` payloads are the
wrong shape for two transports this repo cares about: the shared-memory ring
between a process shard worker and the driver (pickling thousands of small
dataclasses per chunk dominates the transfer), and the on-disk detection
cache (the JSON dump grows quadratic-ish in practice).  Both instead move a
handful of flat numpy arrays produced here.

The encoding is exact: ``decode_detection_results(encode_detection_results(rs))``
rebuilds detections that compare equal field-for-field, including ``None``
feature vectors (CSR-style ``-1`` sentinel lengths), optional colors and
color names (string tables with ``-1`` codes), and absent track ids.  The
driver re-materialises results from these arrays before charging the ledger,
so the bit-for-bit parity guarantee of the parallel engine never depends on
the transport.

Layout (``n_frames`` frames holding ``n_det`` detections total):

========================  ======================  =================================
array                     shape / dtype           meaning
========================  ======================  =================================
``frame_index``           ``(n_frames,) int64``   frame of each result
``timestamp``             ``(n_frames,) float64`` timestamp of each result
``det_offsets``           ``(n_frames+1,) int64`` CSR offsets into detection arrays
``class_code``            ``(n_det,) int32``      index into ``class_table``
``class_table``           ``(k,) <U``             distinct object classes
``box``                   ``(n_det, 4) float64``  x_min, y_min, x_max, y_max
``confidence``            ``(n_det,) float64``    detector confidence
``feature_len``           ``(n_det,) int32``      feature dims, ``-1`` for ``None``
``features_flat``         ``(sum,) float64``      concatenated feature vectors
``color``                 ``(n_det, 3) float64``  RGB, zeros when absent
``has_color``             ``(n_det,) bool``       whether ``color`` is present
``color_name_code``       ``(n_det,) int32``      index into table, ``-1`` = ``None``
``color_name_table``      ``(m,) <U``             distinct color names
``track_id``              ``(n_det,) int32``      track id, ``-1`` = ``None``
========================  ======================  =================================
"""

from __future__ import annotations

import io
from collections.abc import Iterable, Sequence

import numpy as np

from repro.detection.base import Detection, DetectionResult
from repro.video.geometry import BoundingBox

__all__ = [
    "encode_detection_results",
    "decode_detection_results",
    "encode_to_bytes",
    "decode_from_bytes",
]


def _string_table(values: Iterable[str]) -> tuple[np.ndarray, dict[str, int]]:
    table = sorted(set(values))
    return np.asarray(table, dtype=np.str_), {name: i for i, name in enumerate(table)}


def encode_detection_results(
    results: Sequence[DetectionResult],
) -> dict[str, np.ndarray]:
    """Encode results as the flat column arrays documented in the module."""
    detections = [d for result in results for d in result.detections]
    n_det = len(detections)

    class_table, class_index = _string_table(d.object_class for d in detections)
    color_name_table, color_name_index = _string_table(
        d.color_name for d in detections if d.color_name is not None
    )

    det_offsets = np.zeros(len(results) + 1, dtype=np.int64)
    np.cumsum([len(r.detections) for r in results], out=det_offsets[1:])

    box = np.zeros((n_det, 4), dtype=np.float64)
    color = np.zeros((n_det, 3), dtype=np.float64)
    has_color = np.zeros(n_det, dtype=np.bool_)
    feature_len = np.full(n_det, -1, dtype=np.int32)
    class_code = np.zeros(n_det, dtype=np.int32)
    confidence = np.zeros(n_det, dtype=np.float64)
    color_name_code = np.full(n_det, -1, dtype=np.int32)
    track_id = np.full(n_det, -1, dtype=np.int32)
    feature_chunks: list[np.ndarray] = []

    for i, det in enumerate(detections):
        class_code[i] = class_index[det.object_class]
        box[i] = (det.box.x_min, det.box.y_min, det.box.x_max, det.box.y_max)
        confidence[i] = det.confidence
        if det.features is not None:
            feature_len[i] = det.features.size
            feature_chunks.append(np.asarray(det.features, dtype=np.float64).ravel())
        if det.color is not None:
            has_color[i] = True
            color[i] = det.color
        if det.color_name is not None:
            color_name_code[i] = color_name_index[det.color_name]
        if det.track_id is not None:
            track_id[i] = det.track_id

    features_flat = (
        np.concatenate(feature_chunks)
        if feature_chunks
        else np.zeros(0, dtype=np.float64)
    )
    return {
        "frame_index": np.asarray([r.frame_index for r in results], dtype=np.int64),
        "timestamp": np.asarray([r.timestamp for r in results], dtype=np.float64),
        "det_offsets": det_offsets,
        "class_code": class_code,
        "class_table": class_table,
        "box": box,
        "confidence": confidence,
        "feature_len": feature_len,
        "features_flat": features_flat,
        "color": color,
        "has_color": has_color,
        "color_name_code": color_name_code,
        "color_name_table": color_name_table,
        "track_id": track_id,
    }


def decode_detection_results(arrays: dict[str, np.ndarray]) -> list[DetectionResult]:
    """Rebuild the exact :class:`DetectionResult` objects from column arrays."""
    frame_index = arrays["frame_index"]
    timestamp = arrays["timestamp"]
    det_offsets = arrays["det_offsets"]
    class_table = [str(s) for s in arrays["class_table"]]
    color_name_table = [str(s) for s in arrays["color_name_table"]]
    feature_len = arrays["feature_len"]
    feature_offsets = np.zeros(len(feature_len) + 1, dtype=np.int64)
    np.cumsum(np.maximum(feature_len, 0), out=feature_offsets[1:])

    results: list[DetectionResult] = []
    for f in range(len(frame_index)):
        detections: list[Detection] = []
        for i in range(int(det_offsets[f]), int(det_offsets[f + 1])):
            n_feat = int(feature_len[i])
            features = (
                None
                if n_feat < 0
                else arrays["features_flat"][
                    int(feature_offsets[i]) : int(feature_offsets[i]) + n_feat
                ].copy()
            )
            name_code = int(arrays["color_name_code"][i])
            raw_track = int(arrays["track_id"][i])
            detections.append(
                Detection(
                    frame_index=int(frame_index[f]),
                    timestamp=float(timestamp[f]),
                    object_class=class_table[int(arrays["class_code"][i])],
                    box=BoundingBox(*(float(v) for v in arrays["box"][i])),
                    confidence=float(arrays["confidence"][i]),
                    features=features,
                    track_id=None if raw_track < 0 else raw_track,
                    color=(
                        tuple(float(v) for v in arrays["color"][i])  # type: ignore[arg-type]
                        if bool(arrays["has_color"][i])
                        else None
                    ),
                    color_name=None if name_code < 0 else color_name_table[name_code],
                )
            )
        results.append(
            DetectionResult(
                frame_index=int(frame_index[f]),
                timestamp=float(timestamp[f]),
                detections=detections,
            )
        )
    return results


def encode_to_bytes(results: Sequence[DetectionResult]) -> bytes:
    """Serialize results to an uncompressed npz payload (zip of .npy files)."""
    buffer = io.BytesIO()
    np.savez(buffer, **encode_detection_results(results))
    return buffer.getvalue()


def decode_from_bytes(payload: bytes) -> list[DetectionResult]:
    """Inverse of :func:`encode_to_bytes`."""
    with np.load(io.BytesIO(payload), allow_pickle=False) as archive:
        arrays = {name: archive[name] for name in archive.files}
    return decode_detection_results(arrays)
