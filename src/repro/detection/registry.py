"""Registry of named detector configurations.

The object detection method is user-configurable (Section 3); the registry
maps the names used in Table 3 (``mask_rcnn``, ``fgfa``, ``yolov2``) to
factories, and users may register their own.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.detection.base import ObjectDetector
from repro.detection.simulated import SimulatedDetector

DetectorFactory = Callable[..., ObjectDetector]


class DetectorRegistry:
    """Maps detector names to factory callables."""

    def __init__(self) -> None:
        self._factories: dict[str, DetectorFactory] = {}

    def register(self, name: str, factory: DetectorFactory) -> None:
        """Register (or replace) a detector factory."""
        self._factories[name] = factory

    def create(self, name: str, **kwargs) -> ObjectDetector:
        """Instantiate a detector by name."""
        try:
            factory = self._factories[name]
        except KeyError as exc:
            available = ", ".join(sorted(self._factories)) or "<none>"
            raise KeyError(
                f"unknown detector {name!r}; available: {available}"
            ) from exc
        return factory(**kwargs)

    def names(self) -> list[str]:
        """All registered detector names."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories


def default_registry() -> DetectorRegistry:
    """Registry pre-populated with the detectors used in the paper."""
    registry = DetectorRegistry()
    registry.register("mask_rcnn", SimulatedDetector.mask_rcnn)
    registry.register("fgfa", SimulatedDetector.fgfa)
    registry.register("yolov2", SimulatedDetector.yolov2)
    return registry
