"""Object detection substrate.

The paper's ground truth is a full object detector (Mask R-CNN or FGFA)
running at ~3 fps.  This package provides the same interface backed by a
*simulated* detector: it perturbs the synthetic ground truth with a
configurable noise model (missed small objects, confidence scores,
localisation jitter) and charges a per-frame cost to a runtime ledger.
Everything downstream treats the detector output as ground truth, exactly as
the paper does (Section 10.1).
"""

from repro.detection.base import Detection, DetectionResult, ObjectDetector
from repro.detection.simulated import DetectorNoiseModel, SimulatedDetector
from repro.detection.registry import DetectorRegistry, default_registry
from repro.detection.nms import non_max_suppression
from repro.detection.metrics import average_precision, mean_average_precision

__all__ = [
    "Detection",
    "DetectionResult",
    "ObjectDetector",
    "DetectorNoiseModel",
    "SimulatedDetector",
    "DetectorRegistry",
    "default_registry",
    "non_max_suppression",
    "average_precision",
    "mean_average_precision",
]
