"""Non-maximum suppression over detections.

Real detectors emit overlapping candidate boxes; the simulated detector mostly
does not, but NMS is still part of the substrate because user-supplied
detectors (Section 3's configurability) may need it, and the tracking and
selection code paths exercise it in tests.
"""

from __future__ import annotations

from repro.detection.base import Detection


def non_max_suppression(
    detections: list[Detection], iou_threshold: float = 0.5
) -> list[Detection]:
    """Suppress lower-confidence detections that overlap higher-confidence ones.

    Detections of different classes never suppress each other.  The result is
    ordered by descending confidence.
    """
    if not 0.0 <= iou_threshold <= 1.0:
        raise ValueError(f"iou_threshold must be in [0, 1], got {iou_threshold}")
    ordered = sorted(detections, key=lambda d: d.confidence, reverse=True)
    kept: list[Detection] = []
    for candidate in ordered:
        suppressed = False
        for keeper in kept:
            if keeper.object_class != candidate.object_class:
                continue
            if keeper.box.iou(candidate.box) > iou_threshold:
                suppressed = True
                break
        if not suppressed:
            kept.append(candidate)
    return kept
