"""Simulated object detectors (Mask R-CNN, FGFA, YOLOv2).

The simulator reads the synthetic ground truth and applies a noise model that
matches the qualitative behaviour the paper relies on:

* small objects are missed more often than large ones (Section 10.1 notes
  state-of-the-art detectors "still suffer in performance for small objects");
* confidence scores grow with object size and are noisy, so the per-video
  confidence thresholds of Table 3 are meaningful;
* bounding boxes are jittered slightly;
* occasional false positives appear at a configurable rate.

Each detector charges its per-frame cost (3 fps for Mask R-CNN/FGFA, 80 fps
for YOLOv2) to the runtime ledger.  All noise is deterministic per
``(detector seed, video seed, frame index)`` so repeated calls agree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.base import Detection, DetectionResult, ObjectDetector
from repro.metrics.runtime import OperatorCost, RuntimeLedger, StandardCosts
from repro.rng import RekeyedPhilox
from repro.video.geometry import BoundingBox
from repro.video.synthetic import SyntheticVideo


@dataclass(frozen=True)
class DetectorNoiseModel:
    """Noise characteristics of a simulated detector.

    Parameters
    ----------
    small_object_area_fraction:
        Objects smaller than this fraction of the frame are increasingly
        likely to be missed.
    max_miss_probability:
        Miss probability for a vanishingly small object; decays linearly to
        zero as the object reaches ``small_object_area_fraction``.
    confidence_noise:
        Standard deviation of the Gaussian noise added to confidences.
    box_jitter:
        Standard deviation of box-corner jitter, as a fraction of box size.
    false_positive_rate:
        Expected number of spurious detections per frame.
    confidence_floor:
        Minimum confidence emitted for a detected object.
    """

    small_object_area_fraction: float = 0.002
    max_miss_probability: float = 0.35
    confidence_noise: float = 0.08
    box_jitter: float = 0.03
    false_positive_rate: float = 0.01
    confidence_floor: float = 0.05


class SimulatedDetector(ObjectDetector):
    """A full object detector simulated on top of the synthetic ground truth."""

    def __init__(
        self,
        name: str,
        cost: OperatorCost,
        noise: DetectorNoiseModel | None = None,
        confidence_threshold: float = 0.0,
        supported: set[str] | None = None,
        seed: int = 0,
    ) -> None:
        self.name = name
        self._cost = cost
        self.noise = noise or DetectorNoiseModel()
        self.confidence_threshold = confidence_threshold
        self._supported = supported
        self.seed = seed

    # -- named configurations ------------------------------------------------

    @classmethod
    def mask_rcnn(
        cls, confidence_threshold: float = 0.8, seed: int = 0
    ) -> "SimulatedDetector":
        """The Mask R-CNN configuration used for most videos in Table 3."""
        return cls(
            name="mask_rcnn",
            cost=StandardCosts.MASK_RCNN,
            noise=DetectorNoiseModel(
                max_miss_probability=0.25,
                confidence_noise=0.06,
                box_jitter=0.02,
                false_positive_rate=0.005,
            ),
            confidence_threshold=confidence_threshold,
            supported={"car", "bus", "boat", "person", "truck", "bird"},
            seed=seed,
        )

    @classmethod
    def fgfa(cls, confidence_threshold: float = 0.2, seed: int = 0) -> "SimulatedDetector":
        """The FGFA configuration used for ``taipei`` in Table 3."""
        return cls(
            name="fgfa",
            cost=StandardCosts.FGFA,
            noise=DetectorNoiseModel(
                max_miss_probability=0.2,
                confidence_noise=0.1,
                box_jitter=0.03,
                false_positive_rate=0.01,
            ),
            confidence_threshold=confidence_threshold,
            supported={"car", "bus", "boat", "person", "truck", "bird"},
            seed=seed,
        )

    @classmethod
    def yolov2(cls, confidence_threshold: float = 0.3, seed: int = 0) -> "SimulatedDetector":
        """The faster, less accurate YOLOv2 configuration (not selected in the paper)."""
        return cls(
            name="yolov2",
            cost=StandardCosts.YOLOV2,
            noise=DetectorNoiseModel(
                max_miss_probability=0.5,
                confidence_noise=0.15,
                box_jitter=0.06,
                false_positive_rate=0.05,
            ),
            confidence_threshold=confidence_threshold,
            supported={"car", "bus", "boat", "person", "truck", "bird"},
            seed=seed,
        )

    # -- ObjectDetector interface ---------------------------------------------

    @property
    def cost(self) -> OperatorCost:
        """Simulated cost of one detection call."""
        return self._cost

    def supported_classes(self) -> set[str] | None:
        return self._supported

    def detect(
        self,
        video: SyntheticVideo,
        frame_index: int,
        ledger: RuntimeLedger | None = None,
    ) -> DetectionResult:
        """Detect objects in one frame of ``video``."""
        if ledger is not None:
            ledger.charge(self._cost)
        rng = self._frame_rng(video, frame_index)
        frame_area = float(video.spec.width * video.spec.height)
        timestamp = video.timestamp_of(frame_index)
        detections: list[Detection] = []
        for obj in video.objects_at(frame_index):
            if self._supported is not None and obj.object_class not in self._supported:
                continue
            area_fraction = obj.box.area / frame_area
            miss_prob = self._miss_probability(area_fraction)
            if rng.random() < miss_prob:
                continue
            confidence = self._confidence(area_fraction, rng)
            if confidence < self.confidence_threshold:
                continue
            detections.append(
                Detection(
                    frame_index=frame_index,
                    timestamp=timestamp,
                    object_class=obj.object_class,
                    box=self._jitter_box(obj.box, rng, video),
                    confidence=confidence,
                    features=self._detection_features(obj, rng),
                    color=obj.color,
                    color_name=obj.color_name,
                )
            )
        detections.extend(self._false_positives(video, frame_index, timestamp, rng))
        return DetectionResult(
            frame_index=frame_index, timestamp=timestamp, detections=detections
        )

    def _detect_batch(
        self,
        video: SyntheticVideo,
        frame_indices: list[int],
        ledger: RuntimeLedger | None = None,
    ) -> list[DetectionResult]:
        """Vectorized batch detection, bit-for-bit identical to :meth:`detect`.

        All geometry- and noise-model quantities (clipped boxes, area
        fractions, miss probabilities, confidence bases, jitter scales,
        detection-feature bases) are computed for every (frame, object) pair
        in one array program over the video's columnar object table; the
        per-frame loop only draws from the frame's RNG stream in exactly the
        order the scalar path does, so every random draw — and therefore
        every detection — is identical.
        """
        if ledger is not None:
            ledger.charge(self._cost, len(frame_indices))
        table = video.frame_object_table(np.asarray(frame_indices, dtype=np.int64))
        frame_area = float(video.spec.width * video.spec.height)
        n_pairs = len(table)
        if n_pairs:
            box_w = table.x_max - table.x_min
            box_h = table.y_max - table.y_min
            area_fraction = (box_w * box_h) / frame_area
            threshold = self.noise.small_object_area_fraction
            miss_prob = np.where(
                area_fraction >= threshold,
                0.02,
                0.02 + (1.0 - area_fraction / threshold) * self.noise.max_miss_probability,
            ).tolist()
            conf_base = (
                0.55 + 0.4 * np.minimum(1.0, area_fraction / (4 * threshold))
            ).tolist()
            jitter_x = (self.noise.box_jitter * np.maximum(box_w, 1.0)).tolist()
            jitter_y = (self.noise.box_jitter * np.maximum(box_h, 1.0)).tolist()
            feature_base = np.concatenate(
                [
                    table.colors / 255.0,
                    box_w[:, None] / 1000.0,
                    box_h[:, None] / 1000.0,
                ],
                axis=1,
            )
            x_min = table.x_min.tolist()
            y_min = table.y_min.tolist()
            x_max = table.x_max.tolist()
            y_max = table.y_max.tolist()
            class_codes = table.class_codes.tolist()
            color_codes = table.color_codes.tolist()
            colors = [tuple(c) for c in table.colors.tolist()]
            if self._supported is not None:
                supported = [
                    name in self._supported for name in table.class_names
                ]
                pair_supported = [supported[code] for code in class_codes]
            else:
                pair_supported = [True] * n_pairs
        width, height = video.spec.width, video.spec.height
        confidence_noise = self.noise.confidence_noise
        floor = self.noise.confidence_floor
        conf_threshold = self.confidence_threshold
        class_names = table.class_names
        color_names = table.color_names
        fp_class_names = video.object_class_names or ["car"]
        offsets = table.offsets.tolist()
        # One bit generator re-keyed per frame: bit-identical to the fresh
        # ``Philox(key=[combined, frame])`` streams ``_frame_rng`` builds,
        # without paying generator construction per frame.
        combined = (
            (self.seed * 2654435761) ^ (video.spec.seed * 40503)
        ) & 0xFFFFFFFFFFFFFFFF
        frame_streams = RekeyedPhilox(combined)
        results: list[DetectionResult] = []
        for row, frame_index in enumerate(frame_indices):
            rng = frame_streams.rekey(frame_index)
            timestamp = video.timestamp_of(frame_index)
            lo, hi = offsets[row], offsets[row + 1]
            detections: list[Detection] = []
            for k in range(lo, hi):
                if not pair_supported[k]:
                    continue
                if rng.random() < miss_prob[k]:
                    continue
                confidence = conf_base[k] + rng.normal(0.0, confidence_noise)
                confidence = float(min(0.999, max(floor, confidence)))
                if confidence < conf_threshold:
                    continue
                left = x_min[k] + rng.normal(0.0, jitter_x[k])
                top = y_min[k] + rng.normal(0.0, jitter_y[k])
                right = x_max[k] + rng.normal(0.0, jitter_x[k])
                bottom = y_max[k] + rng.normal(0.0, jitter_y[k])
                box = BoundingBox(
                    min(left, right), min(top, bottom),
                    max(left, right), max(top, bottom),
                ).clip_to(width, height)
                detections.append(
                    Detection(
                        frame_index=frame_index,
                        timestamp=timestamp,
                        object_class=class_names[class_codes[k]],
                        box=box,
                        confidence=confidence,
                        features=feature_base[k] + rng.normal(0.0, 0.02, size=5),
                        color=colors[k],
                        color_name=color_names[color_codes[k]],
                    )
                )
            if hi > lo:
                detections.extend(
                    self._false_positives_from_table(
                        table, lo, hi, frame_index, timestamp, rng,
                        fp_class_names, x_min, y_min, x_max, y_max, colors,
                        class_codes, color_codes, width, height,
                    )
                )
            results.append(
                DetectionResult(
                    frame_index=frame_index, timestamp=timestamp, detections=detections
                )
            )
        return results

    def _false_positives_from_table(
        self,
        table,
        lo: int,
        hi: int,
        frame_index: int,
        timestamp: float,
        rng: np.random.Generator,
        class_names: list[str],
        x_min: list[float],
        y_min: list[float],
        x_max: list[float],
        y_max: list[float],
        colors: list[tuple[float, float, float]],
        class_codes: list[int],
        color_codes: list[int],
        width: float,
        height: float,
    ) -> list[Detection]:
        """Columnar counterpart of :meth:`_false_positives` (same draws)."""
        count = rng.poisson(self.noise.false_positive_rate)
        detections: list[Detection] = []
        for _ in range(count):
            k = lo + int(rng.integers(0, hi - lo))
            source_class = table.class_names[class_codes[k]]
            wrong_classes = [c for c in class_names if c != source_class]
            if not wrong_classes:
                continue
            object_class = str(rng.choice(wrong_classes))
            confidence = float(rng.uniform(self.noise.confidence_floor, 0.6))
            if confidence < self.confidence_threshold:
                continue
            detections.append(
                Detection(
                    frame_index=frame_index,
                    timestamp=timestamp,
                    object_class=object_class,
                    box=BoundingBox(
                        x_min[k], y_min[k], x_max[k], y_max[k]
                    ).clip_to(width, height),
                    confidence=confidence,
                    features=None,
                    color=colors[k],
                    color_name=table.color_names[color_codes[k]],
                )
            )
        return detections

    # -- noise model ------------------------------------------------------------

    def _frame_rng(self, video: SyntheticVideo, frame_index: int) -> np.random.Generator:
        # Philox requires exactly two 64-bit key words; fold the detector and
        # video seeds into the first and the frame index into the second.
        combined = ((self.seed * 2654435761) ^ (video.spec.seed * 40503)) & 0xFFFFFFFFFFFFFFFF
        return np.random.Generator(np.random.Philox(key=[combined, frame_index]))

    def _miss_probability(self, area_fraction: float) -> float:
        threshold = self.noise.small_object_area_fraction
        if area_fraction >= threshold:
            return 0.02
        scale = 1.0 - area_fraction / threshold
        return 0.02 + scale * self.noise.max_miss_probability

    def _confidence(self, area_fraction: float, rng: np.random.Generator) -> float:
        # Larger objects yield higher confidences; saturates around 0.95.
        base = 0.55 + 0.4 * min(1.0, area_fraction / (4 * self.noise.small_object_area_fraction))
        confidence = base + rng.normal(0.0, self.noise.confidence_noise)
        return float(min(0.999, max(self.noise.confidence_floor, confidence)))

    def _jitter_box(
        self, box: BoundingBox, rng: np.random.Generator, video: SyntheticVideo
    ) -> BoundingBox:
        jitter_x = self.noise.box_jitter * max(box.width, 1.0)
        jitter_y = self.noise.box_jitter * max(box.height, 1.0)
        left = box.x_min + rng.normal(0.0, jitter_x)
        top = box.y_min + rng.normal(0.0, jitter_y)
        right = box.x_max + rng.normal(0.0, jitter_x)
        bottom = box.y_max + rng.normal(0.0, jitter_y)
        # Guard against jitter inverting a thin (edge-clipped) box.
        x_min, x_max = min(left, right), max(left, right)
        y_min, y_max = min(top, bottom), max(top, bottom)
        return BoundingBox(x_min, y_min, x_max, y_max).clip_to(
            video.spec.width, video.spec.height
        )

    def _detection_features(
        self, obj, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-detection feature vector (Table 1's ``features`` field).

        A compact embedding of the object's colour and size with noise; it is
        what downstream UDFs such as fine-grained classification would
        consume.
        """
        color = np.asarray(obj.color, dtype=np.float64) / 255.0
        size = np.array([obj.box.width, obj.box.height], dtype=np.float64) / 1000.0
        features = np.concatenate([color, size])
        return features + rng.normal(0.0, 0.02, size=features.shape)

    def _false_positives(
        self,
        video: SyntheticVideo,
        frame_index: int,
        timestamp: float,
        rng: np.random.Generator,
    ) -> list[Detection]:
        """Class-confusion false positives.

        Real detectors' false positives overwhelmingly fire on image content
        that resembles the confused class (a large van detected as a bus),
        not on empty background, so we model them as duplicated detections of
        a present object under a different class label.  Frames with no
        objects therefore produce no false positives, which is what makes the
        paper's no-false-negative filter calibration workable.
        """
        objects = video.objects_at(frame_index)
        if not objects:
            return []
        count = rng.poisson(self.noise.false_positive_rate)
        class_names = video.object_class_names or ["car"]
        detections = []
        for _ in range(count):
            source = objects[int(rng.integers(0, len(objects)))]
            wrong_classes = [c for c in class_names if c != source.object_class]
            if not wrong_classes:
                continue
            object_class = str(rng.choice(wrong_classes))
            confidence = float(rng.uniform(self.noise.confidence_floor, 0.6))
            if confidence < self.confidence_threshold:
                continue
            detections.append(
                Detection(
                    frame_index=frame_index,
                    timestamp=timestamp,
                    object_class=object_class,
                    box=source.box.clip_to(video.spec.width, video.spec.height),
                    confidence=confidence,
                    features=None,
                    color=source.color,
                    color_name=source.color_name,
                )
            )
        return detections
