"""Detection quality metrics: average precision and mAP.

The paper quotes mAP figures for YOLOv2 (25.4) and Mask R-CNN (45.2) on
MS-COCO to motivate its cost/accuracy trade-off.  The reproduction computes
the same style of metric for the simulated detectors against the synthetic
ground truth so the cost model's "accurate but slow vs fast but sloppy"
distinction can be validated in tests.
"""

from __future__ import annotations

import numpy as np

from repro.detection.base import Detection
from repro.video.frame import GroundTruthObject


def _match_detections(
    detections: list[Detection],
    ground_truth: list[GroundTruthObject],
    iou_threshold: float,
) -> list[tuple[float, bool]]:
    """Greedy matching of detections to ground truth, highest confidence first.

    Returns a list of ``(confidence, is_true_positive)`` pairs.
    """
    matched: set[int] = set()
    results = []
    for det in sorted(detections, key=lambda d: d.confidence, reverse=True):
        best_iou = 0.0
        best_idx = -1
        for idx, truth in enumerate(ground_truth):
            if idx in matched or truth.object_class != det.object_class:
                continue
            iou = det.box.iou(truth.box)
            if iou > best_iou:
                best_iou = iou
                best_idx = idx
        if best_iou >= iou_threshold and best_idx >= 0:
            matched.add(best_idx)
            results.append((det.confidence, True))
        else:
            results.append((det.confidence, False))
    return results


def average_precision(
    detections_per_frame: dict[int, list[Detection]],
    ground_truth_per_frame: dict[int, list[GroundTruthObject]],
    object_class: str,
    iou_threshold: float = 0.5,
) -> float:
    """Average precision of one class over a set of frames.

    Uses the standard all-points interpolation of the precision/recall curve.
    """
    matches: list[tuple[float, bool]] = []
    total_truth = 0
    for frame_index, truths in ground_truth_per_frame.items():
        class_truths = [t for t in truths if t.object_class == object_class]
        total_truth += len(class_truths)
        dets = [
            d
            for d in detections_per_frame.get(frame_index, [])
            if d.object_class == object_class
        ]
        matches.extend(_match_detections(dets, class_truths, iou_threshold))
    if total_truth == 0:
        return 1.0 if not matches else 0.0
    if not matches:
        return 0.0
    matches.sort(key=lambda pair: pair[0], reverse=True)
    tp_flags = np.array([1.0 if flag else 0.0 for _, flag in matches])
    cumulative_tp = np.cumsum(tp_flags)
    cumulative_fp = np.cumsum(1.0 - tp_flags)
    recall = cumulative_tp / total_truth
    precision = cumulative_tp / np.maximum(cumulative_tp + cumulative_fp, 1e-12)
    # All-points interpolation: make precision monotonically non-increasing.
    for i in range(len(precision) - 2, -1, -1):
        precision[i] = max(precision[i], precision[i + 1])
    # Integrate precision over recall.
    recall_with_origin = np.concatenate([[0.0], recall])
    deltas = np.diff(recall_with_origin)
    return float(np.sum(deltas * precision))


def mean_average_precision(
    detections_per_frame: dict[int, list[Detection]],
    ground_truth_per_frame: dict[int, list[GroundTruthObject]],
    object_classes: list[str],
    iou_threshold: float = 0.5,
) -> float:
    """Mean of per-class average precision over ``object_classes``."""
    if not object_classes:
        raise ValueError("object_classes must not be empty")
    scores = [
        average_precision(
            detections_per_frame, ground_truth_per_frame, cls, iou_threshold
        )
        for cls in object_classes
    ]
    return float(np.mean(scores))
