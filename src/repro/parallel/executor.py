"""Shard worker pool: speculative, ordered detection prefetch.

:class:`DetectionPrefetcher` is the execution half of the parallel engine.
The driving plan runs unchanged on the driver thread; when it announces the
frame order it is about to verify (a scan range, a sampling permutation, an
importance ranking), the prefetcher splits that order across the shards of a
:class:`~repro.parallel.shards.ShardPlan` and starts one worker thread per
shard.  Each worker owns its own :class:`~repro.core.context.ExecutionContext`
(spawned RNG stream keyed by shard id) and computes detections for its
shard's frames *in the announced order*, feeding a bounded per-shard queue.

The driver consumes through :meth:`take`: because the plan visits each
shard's frames in exactly the order the worker produces them, a take either
pops the next queued results (skipping frames the plan decided not to
verify — their speculative detections are discarded) or blocks briefly until
the worker catches up.  Charging stays entirely on the driver side: workers
never touch the execution ledger, so the simulated-cost accounting of a
parallel run is bit-for-bit the sequential one, and speculative overshoot
costs wall-clock only.

Cancellation is cooperative and prompt: workers watch both the execution's
:class:`~repro.stopping.CancellationToken` (a LIMIT satisfied across shards,
a cancelled stream) and the prefetcher's own shutdown token (stream closed,
execution completed), checking between detection chunks.  :meth:`shutdown`
joins every worker, so once it returns no further detector call can happen.
"""

from __future__ import annotations

import queue
import threading
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.events import ShardProgress
from repro.parallel.shards import Shard, ShardPlan
from repro.stopping import CancellationToken

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context import ExecutionContext
    from repro.detection.base import DetectionResult

#: Default bound (in chunks) on how far one worker may run ahead of the
#: driver's consumption when the access order is not announced as monotone.
DEFAULT_WINDOW_CHUNKS = 8

#: Poll interval for cancel-aware blocking queue operations.
_POLL_SECONDS = 0.05

_DONE = object()  # per-shard end-of-worklist sentinel


@dataclass
class _ShardState:
    """Driver- and worker-side bookkeeping for one shard."""

    shard: Shard
    context: "ExecutionContext"
    frames: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    position_of: dict[int, int] = field(default_factory=dict)
    chunks: "queue.Queue" = field(default_factory=queue.Queue)
    buffer: "dict[int, DetectionResult]" = field(default_factory=dict)
    consumed: int = 0  # positions < consumed have been taken or passed
    started: bool = False
    finished: bool = False  # driver saw the worklist sentinel
    thread: threading.Thread | None = None


class DetectionPrefetcher:
    """Per-shard speculative detection pipeline behind ``ExecutionContext``.

    Built by the parallel stream driver with one worker context per shard
    (see :func:`repro.parallel.plan.parallel_events`); attached to the
    driver's context so plan code needs no parallel-specific branches — the
    announce/take protocol hides entirely behind ``detect``/``detect_batch``.
    """

    def __init__(
        self,
        shard_plan: ShardPlan,
        worker_contexts: Callable[[Shard], "ExecutionContext"],
        external_cancel: CancellationToken,
        chunk_size: int,
        window_chunks: int = DEFAULT_WINDOW_CHUNKS,
    ) -> None:
        self.shard_plan = shard_plan
        self.chunk_size = max(1, chunk_size)
        self.window_chunks = max(1, window_chunks)
        self._external_cancel = external_cancel
        self._shutdown = CancellationToken()
        self._states = {
            shard.shard_id: _ShardState(shard=shard, context=worker_contexts(shard))
            for shard in shard_plan.shards
        }
        self._announced = False
        self._start_lock = threading.Lock()
        self.progress_events: "queue.SimpleQueue[ShardProgress]" = queue.SimpleQueue()
        #: Frames computed speculatively by workers (consumed or not); the
        #: difference to the driver's charged calls is the speculation cost.
        self.frames_prefetched = 0
        self._prefetched_lock = threading.Lock()
        #: Per-shard span payloads (wall time, frames, chunks) appended by
        #: workers on exit; stitched into the driver's trace after shutdown.
        self._worker_spans: list[dict[str, Any]] = []

    # -- driver-side protocol -------------------------------------------------------

    def announce(
        self, frame_order: np.ndarray | Iterable[int], monotone: bool = False
    ) -> None:
        """Declare the frame order the plan is about to verify.

        Only the first announcement takes effect (a plan's later phases —
        e.g. a scrubbing fallback sweep — revisit frames already planned);
        frames outside the announced order are simply computed inline by the
        caller.  ``monotone`` promises the driver consumes shards strictly
        front-to-back (full scans), which lifts the speculation window so
        trailing shards can prefetch their whole range.
        """
        if self._announced or self._cancelled():
            return
        # Only the driver thread calls announce(), before any worker reads
        # the flag; taking a lock here would suggest cross-thread traffic
        # that doesn't exist.
        self._announced = True  # repro: allow[RPR003]: driver-thread-only state
        order = np.asarray(
            frame_order if isinstance(frame_order, np.ndarray) else list(frame_order),
            dtype=np.int64,
        )
        shard_ids = self.shard_plan.owners_of(order)
        maxsize = 0 if monotone else self.window_chunks
        for shard_id, state in self._states.items():
            frames = order[shard_ids == shard_id]
            state.frames = frames
            state.position_of = {int(f): i for i, f in enumerate(frames)}
            state.chunks = queue.Queue(maxsize=maxsize)
        # Eager workers in density order (NeedleTail scheduling): pruned
        # shards wait for an actual request for one of their frames.
        for shard in self.shard_plan.scheduling_order():
            if not shard.pruned:
                self._start_worker(self._states[shard.shard_id])

    def take(self, frame_index: int) -> "DetectionResult | None":
        """The prefetched detection for a frame, or ``None`` to compute inline.

        Blocks while the owning worker is still ahead of this frame; returns
        ``None`` when the frame was never announced, was already passed, or
        the pipeline is shutting down — callers fall back to a direct
        detector call, so a ``None`` is always safe.
        """
        if not self._announced:
            return None
        state = self._states[self.shard_plan.owner_of(int(frame_index)).shard_id]
        position = state.position_of.get(int(frame_index))
        if position is None or position < state.consumed:
            return None
        if not state.started:
            self._start_worker(state)
        while True:
            result = state.buffer.get(int(frame_index))
            if result is not None:
                state.consumed = position + 1
                self._purge_passed(state)
                return result
            if state.finished or self._cancelled():
                return None
            try:
                item = state.chunks.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                continue
            if item is _DONE:
                state.finished = True
                continue
            frames, results = item
            for f, r in zip(frames, results, strict=True):
                if state.position_of[int(f)] >= state.consumed:
                    state.buffer[int(f)] = r

    def take_many(
        self, frame_indices: Iterable[int]
    ) -> "dict[int, DetectionResult]":
        """Prefetched detections for a batch (hits only), in driver order."""
        out: "dict[int, DetectionResult]" = {}
        if not self._announced:
            return out
        for frame_index in frame_indices:
            result = self.take(int(frame_index))
            if result is not None:
                out[int(frame_index)] = result
        return out

    def shutdown(self) -> None:
        """Stop every worker and join them; no detector call can follow."""
        self._shutdown.set()
        for state in self._states.values():
            if state.thread is not None:
                state.thread.join()
                state.thread = None

    def worker_spans(self) -> "list[dict[str, Any]]":
        """Span payloads of every finished worker, in shard-id order.

        Call after :meth:`shutdown`: workers append their payload on exit,
        so joined workers have all reported.  Wall durations are display-only
        (the tracer's determinism contract); identity comes from shard ids.
        """
        with self._prefetched_lock:
            return sorted(self._worker_spans, key=lambda p: p["shard_id"])

    # -- worker side ----------------------------------------------------------------

    def _cancelled(self) -> bool:
        return self._shutdown.is_set() or self._external_cancel.is_set()

    def _start_worker(self, state: _ShardState) -> None:
        with self._start_lock:
            if state.started:
                return
            state.started = True
            if state.frames.size == 0 or self._cancelled():
                state.finished = True
                return
            state.thread = threading.Thread(
                target=self._run_worker,
                args=(state,),
                name=f"repro-shard-{state.shard.shard_id}",
                daemon=True,
            )
            state.thread.start()

    def _run_worker(self, state: _ShardState) -> None:
        context = state.context
        shard = state.shard
        frames = state.frames
        computed = 0
        chunks = 0
        started = time.perf_counter()  # repro: allow[RPR001]: worker span wall stamping (display only)
        try:
            while computed < frames.size and not self._cancelled():
                chunk = frames[computed : computed + self.chunk_size]
                results = self._compute_chunk(context, chunk)
                if not self._put(state, (chunk, results)):
                    return
                computed += len(chunk)
                chunks += 1
                with self._prefetched_lock:
                    self.frames_prefetched += len(chunk)
                self.progress_events.put(
                    ShardProgress(
                        shard=shard.shard_id,
                        start_frame=shard.start,
                        end_frame=shard.end,
                        frames_computed=computed,
                        shard_frames=int(frames.size),
                        done=computed >= frames.size,
                    )
                )
        finally:
            # Always terminate the stream — a worker that dies on a detector
            # or recording error must not leave the driver polling forever.
            # take() then returns None for the shard's remaining frames and
            # the driver computes them inline, reproducing (and surfacing)
            # the error on its own thread with normal charging.
            self._put(state, _DONE)
            wall = time.perf_counter() - started  # repro: allow[RPR001]: worker span wall stamping (display only)
            with self._prefetched_lock:
                self._worker_spans.append(
                    {
                        "shard_id": shard.shard_id,
                        "name": "shard_worker",
                        "wall_duration": wall,
                        "frames": computed,
                        "chunks": chunks,
                        "backend": "threads",
                    }
                )

    def _compute_chunk(
        self, context: "ExecutionContext", chunk: np.ndarray
    ) -> "list[DetectionResult]":
        """Uncharged detection for one chunk.

        Workers *read* the shared cross-query cache (frames a previous query
        already paid for cost nothing to prefetch) but never write it: only
        the driver populates the cache, on consumption, so an execution's
        own speculative work can never masquerade as a cross-query hit and
        distort its charged accounting.
        """
        frames = [int(f) for f in chunk]
        hits: "dict[int, DetectionResult]" = {}
        if context.shared_cache is not None:
            hits = context.shared_cache.get_many(context.cache_key, frames)
        misses = [f for f in frames if f not in hits]
        if misses:
            if context.recorded is not None:
                fresh = {f: context.recorded.result(f) for f in misses}
            else:
                # Speculative prefetch is intentionally uncharged: the
                # driver charges the ledger when (and only when) a
                # prefetched frame is actually consumed, keeping parallel
                # accounting identical to sequential.
                fresh = dict(
                    zip(misses, context.detector.detect_many(context.video, misses), strict=True)  # repro: allow[RPR002]: uncharged speculation, charged on consumption
                )
            hits.update(fresh)
        return [hits[f] for f in frames]

    def _put(self, state: _ShardState, item: object) -> bool:
        while not self._cancelled():
            try:
                state.chunks.put(item, timeout=_POLL_SECONDS)
                return True
            except queue.Full:
                continue
        return False

    # -- helpers --------------------------------------------------------------------

    def _purge_passed(self, state: _ShardState) -> None:
        if not state.buffer:
            return
        passed = [
            f for f in state.buffer if state.position_of[f] < state.consumed
        ]
        for f in passed:
            del state.buffer[f]
