"""Shared-memory ring slots for the process shard backend.

A process shard worker produces thousands of small detection objects per
chunk; pickling them one-by-one through a ``multiprocessing.Queue`` is the
transport analogue of the JSON cache dump — per-object overhead dominates.
Instead each shard gets a small ring of fixed-size
:class:`multiprocessing.shared_memory.SharedMemory` slots.  The worker
encodes a chunk to one columnar npz payload (see
:mod:`repro.detection.columnar`), copies it into a free slot, and sends only
a tiny header over the queue; the driver decodes and hands the slot back.
Slot recycling doubles as the speculation window: a worker that has filled
every slot waits for the driver to consume, exactly like the bounded chunk
queue of the thread backend.

Ownership is strictly driver-side: the driver creates the segments, passes
their *names* in the (picklable) worker spec, and is the only party that
unlinks them — including after a worker crash, which is what the no-leaked-
segments test asserts.  Workers attach read-write by name; see
:func:`attach_slots` for why they deliberately leave the (shared)
resource-tracker registration alone.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

__all__ = ["SlotRing", "attach_slots", "detach_slots"]

#: Prefix baked into every slot name so tests (and humans poking around
#: ``/dev/shm``) can attribute segments to this transport.
SLOT_NAME_PREFIX = "repro_shard"


class SlotRing:
    """Driver-owned ring of equally sized shared-memory slots for one shard."""

    def __init__(self, shard_id: int, slot_count: int, slot_bytes: int) -> None:
        self.slot_bytes = slot_bytes
        self.slots: list[shared_memory.SharedMemory] = []
        try:
            for index in range(slot_count):
                self.slots.append(
                    shared_memory.SharedMemory(
                        name=(
                            f"{SLOT_NAME_PREFIX}_{os.getpid()}"
                            f"_{shard_id}_{index}_{id(self):x}"
                        ),
                        create=True,
                        size=slot_bytes,
                    )
                )
        except BaseException:
            self.destroy()
            raise

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(slot.name for slot in self.slots)

    def read(self, slot_index: int, nbytes: int) -> bytes:
        """Copy one published payload out of a slot (driver side)."""
        return bytes(self.slots[slot_index].buf[:nbytes])

    def destroy(self) -> None:
        """Close and unlink every slot; safe to call more than once."""
        slots, self.slots = self.slots, []
        for slot in slots:
            try:
                slot.close()
                slot.unlink()
            except OSError:  # pragma: no cover - already gone
                pass


def attach_slots(names: tuple[str, ...]) -> list[shared_memory.SharedMemory]:
    """Attach to driver-owned slots by name (worker side).

    Spawned workers share the driver's resource-tracker process, and the
    tracker's registry is a per-name set: the attach here re-registers names
    the driver already registered at create time (a no-op), and the driver's
    ``unlink`` deregisters them once.  Nothing to clean up worker-side — a
    worker must *not* unregister, or it would strip the driver's
    registration out from under the eventual unlink.
    """
    return [shared_memory.SharedMemory(name=name) for name in names]


def detach_slots(slots: list[shared_memory.SharedMemory]) -> None:
    """Close worker-side attachments without unlinking the segments."""
    for slot in slots:
        try:
            slot.close()
        except OSError:  # pragma: no cover - already closed
            pass
