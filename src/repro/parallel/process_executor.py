"""Process shard workers: speculative detection with shared-memory transport.

:class:`ProcessShardExecutor` is the process-backed twin of the thread-based
:class:`~repro.parallel.executor.DetectionPrefetcher`, duck-typing the same
driver protocol (``announce`` / ``take`` / ``take_many`` / ``shutdown`` /
``progress_events`` / ``frames_prefetched``) so
:class:`~repro.core.context.ExecutionContext` needs no backend branches.  Use
it when the detector *holds* the GIL per call (pure-Python compute, a badly
behaved extension): thread workers then serialize while process workers each
own an interpreter.

Workers are spawn-safe: each receives a picklable
:class:`~repro.core.context.ContextSpec` (video spec + track list + detector)
and rebuilds its shard context from scratch — detections are deterministic
per (detector seed, video seed, frame index), so a worker's speculative
output is bit-for-bit what the driver would have computed.  Results travel
as columnar npz payloads through a per-shard ring of shared-memory slots
(:mod:`repro.parallel.shm`); the driver decodes, charges the ledger on
consumption exactly as in sequential execution, and emits
:class:`~repro.core.events.ShardProgress` as headers arrive.  The shared
cross-query cache and recorded detections stay driver-only: a process worker
recomputing a cached frame costs wall-clock, never simulated budget.

Failure handling is fall-back-to-inline, like the thread backend: a worker
that dies (crash, SIGKILL) simply stops publishing; the driver notices the
dead process, marks the shard finished, and ``take`` returns ``None`` so the
plan computes the remaining frames inline with normal charging.  ``shutdown``
terminates stragglers and unlinks every shared-memory segment — the driver
owns them all, so a crashed worker can never leak one.
"""

from __future__ import annotations

import multiprocessing
import queue
import time
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.context import ContextSpec
from repro.core.events import ShardProgress
from repro.detection.columnar import decode_from_bytes, encode_to_bytes
from repro.parallel.shards import Shard, ShardPlan
from repro.parallel.shm import SlotRing, attach_slots, detach_slots
from repro.stopping import CancellationToken

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.detection.base import DetectionResult

__all__ = ["ProcessShardExecutor", "ShardWorkerSpec"]

#: Poll interval for cancel-aware blocking queue operations.
_POLL_SECONDS = 0.05

#: Grace period for worker processes to exit after the stop event is set
#: before the driver escalates to ``terminate()``.
_JOIN_SECONDS = 2.0

#: Size of one shared-memory slot.  A chunk's npz payload is a few tens of
#: kilobytes for realistic detection densities; payloads that still exceed
#: the slot spill to an inline (pickled-bytes) header instead of failing.
DEFAULT_SLOT_BYTES = 1 << 20


@dataclass(frozen=True)
class ShardWorkerSpec:
    """Everything one worker process needs, in picklable form.

    Deliberately plain data — no locks, sockets or driver state — so the
    spawn pickling is cheap and the fork-safety checker (RPR006) has nothing
    to say about it.
    """

    shard_id: int
    context_spec: ContextSpec
    frames: np.ndarray
    chunk_size: int
    slot_names: tuple[str, ...]
    slot_bytes: int


@dataclass
class _ShardState:
    """Driver-side bookkeeping for one shard's worker process."""

    shard: Shard
    frames: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    position_of: dict[int, int] = field(default_factory=dict)
    buffer: "dict[int, DetectionResult]" = field(default_factory=dict)
    consumed: int = 0  # positions < consumed have been taken or passed
    started: bool = False
    finished: bool = False  # done sentinel seen, or worker found dead
    process: Any = None
    ring: SlotRing | None = None
    free_slots: Any = None  # mp.Queue[int]
    ready: Any = None  # mp.Queue[header tuple]


class ProcessShardExecutor:
    """Per-shard speculative detection in worker *processes*.

    Satisfies the same protocol as
    :class:`~repro.parallel.executor.DetectionPrefetcher`; built by
    :func:`repro.parallel.plan.parallel_events` when the backend decision
    (optimizer or explicit ``backend="processes"``) selects processes.
    """

    def __init__(
        self,
        shard_plan: ShardPlan,
        context_spec: ContextSpec,
        external_cancel: CancellationToken,
        chunk_size: int,
        window_chunks: int,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
    ) -> None:
        self.shard_plan = shard_plan
        self.context_spec = context_spec
        self.chunk_size = max(1, chunk_size)
        self.window_chunks = max(1, window_chunks)
        self.slot_bytes = slot_bytes
        self._external_cancel = external_cancel
        self._mp = multiprocessing.get_context("spawn")
        self._stop = self._mp.Event()
        self._shutdown = CancellationToken()
        self._states = {
            shard.shard_id: _ShardState(shard=shard) for shard in shard_plan.shards
        }
        self._announced = False
        self.progress_events: "queue.SimpleQueue[ShardProgress]" = queue.SimpleQueue()
        #: Frames computed speculatively by workers (consumed or not), counted
        #: driver-side as publication headers arrive.
        self.frames_prefetched = 0
        #: Per-shard span payloads shipped on the ``done`` sentinel; keyed by
        #: shard id so a re-delivered sentinel cannot duplicate a span.
        self._worker_spans: dict[int, dict[str, Any]] = {}

    # -- driver-side protocol -------------------------------------------------------

    def announce(
        self, frame_order: np.ndarray | Iterable[int], monotone: bool = False
    ) -> None:
        """Declare the frame order the plan is about to verify.

        Mirrors :meth:`DetectionPrefetcher.announce`: first announcement
        wins, frames are split by shard ownership, and workers for non-pruned
        shards start eagerly in density order.  ``monotone`` needs no special
        case here — the slot ring is itself the speculation window, and
        recycling keeps memory bounded for full scans too.
        """
        if self._announced or self._cancelled():
            return
        self._announced = True  # repro: allow[RPR003]: driver-thread-only state
        order = np.asarray(
            frame_order if isinstance(frame_order, np.ndarray) else list(frame_order),
            dtype=np.int64,
        )
        shard_ids = self.shard_plan.owners_of(order)
        for shard_id, state in self._states.items():
            frames = order[shard_ids == shard_id]
            state.frames = frames
            state.position_of = {int(f): i for i, f in enumerate(frames)}
        for shard in self.shard_plan.scheduling_order():
            if not shard.pruned:
                self._start_worker(self._states[shard.shard_id])

    def take(self, frame_index: int) -> "DetectionResult | None":
        """The prefetched detection for a frame, or ``None`` to compute inline.

        Blocks while the owning worker is alive and still ahead of this
        frame; returns ``None`` when the frame was never announced, was
        already passed, the pipeline is shutting down, or the worker died —
        callers fall back to a direct (charged) detector call.
        """
        if not self._announced:
            return None
        state = self._states[self.shard_plan.owner_of(int(frame_index)).shard_id]
        position = state.position_of.get(int(frame_index))
        if position is None or position < state.consumed:
            return None
        if not state.started:
            self._start_worker(state)
        while True:
            result = state.buffer.get(int(frame_index))
            if result is not None:
                state.consumed = position + 1
                self._purge_passed(state)
                return result
            if state.finished or self._cancelled():
                return None
            try:
                header = state.ready.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                if state.process is not None and not state.process.is_alive():
                    # Crashed or killed worker: one last drain attempt (the
                    # feeder may have flushed after our timed-out get), then
                    # finish the shard so the plan computes inline.
                    try:
                        header = state.ready.get_nowait()
                    except queue.Empty:
                        state.finished = True
                        continue
                else:
                    continue
            self._ingest(state, header)

    def take_many(
        self, frame_indices: Iterable[int]
    ) -> "dict[int, DetectionResult]":
        """Prefetched detections for a batch (hits only), in driver order."""
        out: "dict[int, DetectionResult]" = {}
        if not self._announced:
            return out
        for frame_index in frame_indices:
            result = self.take(int(frame_index))
            if result is not None:
                out[int(frame_index)] = result
        return out

    def shutdown(self) -> None:
        """Stop and reap every worker, then unlink every shm segment.

        After this returns no worker process is alive and no shared-memory
        slot remains registered — the driver owns all segments, so even a
        SIGKILLed worker leaks nothing.
        """
        self._shutdown.set()
        self._stop.set()
        for state in self._states.values():
            process = state.process
            if process is not None and process.pid is not None:
                process.join(timeout=_JOIN_SECONDS)
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.terminate()
                    process.join(timeout=_JOIN_SECONDS)
                if process.is_alive():  # pragma: no cover - unkillable worker
                    process.kill()
                    process.join()
            state.process = None
            # The exiting worker's ``done`` sentinel (carrying its span
            # payload) may still sit undelivered in the ready queue when the
            # driver stopped taking early; drain it before the transport is
            # torn down so traces keep their worker spans.
            self._drain_done_sentinels(state)
            self._teardown_transport(state)

    def _drain_done_sentinels(self, state: _ShardState) -> None:
        if state.ready is None:
            return
        while True:
            try:
                header = state.ready.get_nowait()
            except (queue.Empty, OSError, ValueError):
                return
            if header[0] == "done":
                self._note_done(state, header)

    def worker_spans(self) -> "list[dict[str, Any]]":
        """Span payloads of every reporting worker, in shard-id order.

        Call after :meth:`shutdown`; a worker that died without its ``done``
        sentinel (crash, SIGKILL) simply has no span — identity of the
        surviving spans is unaffected (ids derive from shard ids).
        """
        return [self._worker_spans[k] for k in sorted(self._worker_spans)]

    def _note_done(self, state: _ShardState, header: tuple) -> None:
        state.finished = True
        # Arity-tolerant: old-style sentinels are ("done", computed); new
        # workers append their span payload as a third element.
        if len(header) > 2 and isinstance(header[2], dict):
            payload = dict(header[2])
            payload.setdefault("shard_id", state.shard.shard_id)
            self._worker_spans[state.shard.shard_id] = payload

    def _teardown_transport(self, state: _ShardState) -> None:
        """Close the shard's queues and unlink its shm segments."""
        for q in (state.free_slots, state.ready):
            if q is not None:
                q.cancel_join_thread()
                q.close()
        state.free_slots = None
        state.ready = None
        if state.ring is not None:
            state.ring.destroy()
            state.ring = None

    # -- driver internals -----------------------------------------------------------

    def _cancelled(self) -> bool:
        return self._shutdown.is_set() or self._external_cancel.is_set()

    def _start_worker(self, state: _ShardState) -> None:
        if state.started:
            return
        state.started = True
        if state.frames.size == 0 or self._cancelled():
            state.finished = True
            return
        state.ring = SlotRing(
            state.shard.shard_id, self.window_chunks, self.slot_bytes
        )
        state.free_slots = self._mp.Queue()
        for index in range(self.window_chunks):
            state.free_slots.put(index)
        state.ready = self._mp.Queue()
        spec = ShardWorkerSpec(
            shard_id=state.shard.shard_id,
            context_spec=self.context_spec,
            frames=state.frames,
            chunk_size=self.chunk_size,
            slot_names=state.ring.names,
            slot_bytes=self.slot_bytes,
        )
        state.process = self._mp.Process(
            target=_shard_worker_main,
            args=(spec, state.free_slots, state.ready, self._stop),
            name=f"repro-shard-proc-{state.shard.shard_id}",
            daemon=True,
        )
        try:
            state.process.start()
        except BaseException:
            # Spawn refused — e.g. the interpreter is still bootstrapping
            # because the caller's script lacks an ``if __name__ ==
            # "__main__"`` guard.  Release this shard's segments and queues
            # before propagating, so the subsequent shutdown() neither joins
            # a never-started process nor leaks shared memory.
            state.process = None
            state.finished = True
            self._teardown_transport(state)
            raise

    def _ingest(self, state: _ShardState, header: tuple) -> None:
        """Decode one publication header into the shard's result buffer."""
        kind = header[0]
        if kind == "done":
            self._note_done(state, header)
            return
        if kind == "slot":
            _, slot_index, nbytes, computed = header
            assert state.ring is not None
            payload = state.ring.read(slot_index, nbytes)
            results = decode_from_bytes(payload)
            state.free_slots.put(slot_index)
        else:  # "inline": payload too large for a slot
            _, payload, computed = header
            results = decode_from_bytes(payload)
        for result in results:
            position = state.position_of.get(result.frame_index)
            if position is not None and position >= state.consumed:
                state.buffer[result.frame_index] = result
        self.frames_prefetched += len(results)
        self.progress_events.put(
            ShardProgress(
                shard=state.shard.shard_id,
                start_frame=state.shard.start,
                end_frame=state.shard.end,
                frames_computed=computed,
                shard_frames=int(state.frames.size),
                done=computed >= state.frames.size,
            )
        )

    def _purge_passed(self, state: _ShardState) -> None:
        if not state.buffer:
            return
        passed = [f for f in state.buffer if state.position_of[f] < state.consumed]
        for f in passed:
            del state.buffer[f]


# -- worker process -------------------------------------------------------------------


def _shard_worker_main(
    spec: ShardWorkerSpec, free_slots: Any, ready: Any, stop: Any
) -> None:
    """Entry point of one spawned shard worker.

    Rebuilds the shard's video and detector from the picklable spec, computes
    the announced frames chunk-by-chunk in order, and publishes each chunk's
    columnar payload through the next free shared-memory slot.  Always sends
    the ``done`` sentinel on the way out so a clean exit (worklist drained,
    stop event, detector error) is distinguishable from a crash.
    """
    slots = attach_slots(spec.slot_names)
    computed = 0
    chunks = 0
    started = time.perf_counter()  # repro: allow[RPR001]: worker span wall stamping (display only)
    try:
        video = spec.context_spec.build_video()
        detector = spec.context_spec.detector
        frames = [int(f) for f in spec.frames]
        while computed < len(frames) and not stop.is_set():
            chunk = frames[computed : computed + spec.chunk_size]
            # Speculative prefetch is intentionally uncharged: the driver
            # charges the ledger when (and only when) a prefetched frame is
            # actually consumed, keeping parallel accounting identical to
            # sequential execution.
            results = detector.detect_many(video, chunk)  # repro: allow[RPR002]: uncharged speculation, charged on consumption
            payload = encode_to_bytes(results)
            computed += len(chunk)
            chunks += 1
            if not _publish(payload, computed, slots, free_slots, ready, stop):
                return
    finally:
        wall = time.perf_counter() - started  # repro: allow[RPR001]: worker span wall stamping (display only)
        span_payload = {
            "shard_id": spec.shard_id,
            "name": "shard_worker",
            "wall_duration": wall,
            "frames": computed,
            "chunks": chunks,
            "backend": "processes",
        }
        try:
            ready.put(("done", computed, span_payload))
        except (OSError, ValueError):  # pragma: no cover - driver gone
            pass
        detach_slots(slots)


def _publish(
    payload: bytes,
    computed: int,
    slots: list,
    free_slots: Any,
    ready: Any,
    stop: Any,
) -> bool:
    """Send one chunk payload to the driver; ``False`` when stopping."""
    if len(payload) > slots[0].size:
        # Pathologically dense chunk: fall back to sending the bytes inline
        # through the queue rather than failing the shard.
        ready.put(("inline", payload, computed))
        return True
    while not stop.is_set():
        try:
            slot_index = free_slots.get(timeout=_POLL_SECONDS)
        except queue.Empty:
            continue
        slots[slot_index].buf[: len(payload)] = payload
        ready.put(("slot", slot_index, len(payload), computed))
        return True
    return False
