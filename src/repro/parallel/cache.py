"""Process-wide shared detection cache for cross-query reuse.

The multi-user serving scenario runs many queries over the same hot videos;
without sharing, every execution re-pays the detector for frames a previous
query already decoded.  :class:`SharedDetectionCache` is a thread-safe LRU
keyed by ``(video key, frame index)`` with a byte budget, consulted by
:meth:`repro.core.context.ExecutionContext.detect` / ``detect_batch`` *before*
the ledger is charged — a hit costs the execution nothing and is counted in
``ExecutionLedger.shared_cache_hits``.

The cache is deliberately opt-in (``BlazeItConfig.shared_cache_bytes``,
0 disables): with it enabled, the ledger accounting of repeated queries is no
longer independent of execution history, which is exactly the point — but
also exactly what the deterministic benchmarks must not silently inherit.

Optional persistence (:meth:`save` / :meth:`load`) lets a warm cache survive
process restarts, so shard pruning *and* detector reuse both carry across
serving sessions.  Two on-disk formats are offered: human-readable JSON
(``format="json"``) and a compact binary columnar form (``format="npz"``,
the same codec the process-backend shard transport uses); :meth:`load`
recognises either, so old JSON snapshots keep loading.
"""

from __future__ import annotations

import io
import json
import threading
import zipfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.detection.base import Detection, DetectionResult
from repro.detection.columnar import decode_detection_results, encode_detection_results
from repro.errors import ConfigurationError
from repro.persist import atomic_write_bytes, atomic_write_text

#: Default byte budget used by :func:`get_process_cache` when an engine
#: enables the shared cache without configuring a size.
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024

#: Fixed per-entry overhead (result object, dict slot, key) in the byte
#: estimate; detections add their own footprint on top.
_RESULT_OVERHEAD = 160
_DETECTION_OVERHEAD = 200

#: Format marker embedded in the binary snapshot (the JSON form carries
#: ``"shared-detection-cache/v1"`` in its ``format`` field instead).
_NPZ_FORMAT = "shared-detection-cache/v2-npz"

#: Zip local-file-header magic: every ``np.savez`` archive starts with it,
#: which is how :meth:`SharedDetectionCache.load` sniffs the format.
_ZIP_MAGIC = b"PK\x03\x04"


def _detection_bytes(detection: Detection) -> int:
    size = _DETECTION_OVERHEAD
    if detection.features is not None:
        size += int(np.asarray(detection.features).nbytes)
    return size


def estimate_result_bytes(result: DetectionResult) -> int:
    """Rough in-memory footprint of one frame's detections, for the budget."""
    return _RESULT_OVERHEAD + sum(_detection_bytes(d) for d in result.detections)


def _detection_to_json(detection: Detection) -> dict:
    return {
        "object_class": detection.object_class,
        "box": [
            detection.box.x_min,
            detection.box.y_min,
            detection.box.x_max,
            detection.box.y_max,
        ],
        "confidence": detection.confidence,
        "features": (
            None
            if detection.features is None
            else np.asarray(detection.features, dtype=np.float64).tolist()
        ),
        "color": None if detection.color is None else list(detection.color),
        "color_name": detection.color_name,
        "track_id": detection.track_id,
    }


def _detection_from_json(
    payload: dict, frame_index: int, timestamp: float
) -> Detection:
    from repro.video.geometry import BoundingBox

    return Detection(
        frame_index=frame_index,
        timestamp=timestamp,
        object_class=payload["object_class"],
        box=BoundingBox(*payload["box"]),
        confidence=payload["confidence"],
        features=(
            None
            if payload["features"] is None
            else np.asarray(payload["features"], dtype=np.float64)
        ),
        color=None if payload["color"] is None else tuple(payload["color"]),
        color_name=payload["color_name"],
        # Absent in snapshots written before the field was persisted.
        track_id=payload.get("track_id"),
    )


def result_to_json(result: DetectionResult) -> dict:
    """JSON-serialisable form of one frame's detections."""
    return {
        "frame_index": result.frame_index,
        "timestamp": result.timestamp,
        "detections": [_detection_to_json(d) for d in result.detections],
    }


def result_from_json(payload: dict) -> DetectionResult:
    """Inverse of :func:`result_to_json`."""
    frame_index = int(payload["frame_index"])
    timestamp = float(payload["timestamp"])
    return DetectionResult(
        frame_index=frame_index,
        timestamp=timestamp,
        detections=[
            _detection_from_json(d, frame_index, timestamp)
            for d in payload["detections"]
        ],
    )


@dataclass
class SharedCacheStats:
    """Counters exposing how much detector work the shared cache absorbed."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    current_bytes: int = 0
    entries: int = 0

    def snapshot(self) -> "SharedCacheStats":
        return SharedCacheStats(**vars(self))


@dataclass
class _Entry:
    result: DetectionResult
    nbytes: int = field(default=0)


class SharedDetectionCache:
    """Thread-safe LRU of detection results with a byte budget.

    Keys are ``(video_key, frame_index)``; the video key (built by the engine
    from the video name plus its detector's identity) namespaces entries so
    two videos — or one video under two detectors — never collide.  ``get``
    refreshes recency, ``put`` evicts least-recently-used entries until the
    budget holds.  All operations take the cache lock, so concurrent shard
    workers and concurrent sessions can share one process-wide instance.
    """

    def __init__(self, capacity_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if capacity_bytes < 1:
            raise ConfigurationError(
                f"capacity_bytes must be >= 1, got {capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[tuple[str, int], _Entry] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = SharedCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    # -- core operations ------------------------------------------------------------

    def get(self, video_key: str, frame_index: int) -> DetectionResult | None:
        """The cached detections for a frame, refreshing recency; None on miss."""
        key = (video_key, int(frame_index))
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.result

    def get_many(
        self, video_key: str, frame_indices: list[int]
    ) -> dict[int, DetectionResult]:
        """Cached detections for a batch of frames (only the hits), one lock hold."""
        out: dict[int, DetectionResult] = {}
        with self._lock:
            for frame_index in frame_indices:
                key = (video_key, int(frame_index))
                entry = self._entries.get(key)
                if entry is None:
                    self.stats.misses += 1
                    continue
                self._entries.move_to_end(key)
                self.stats.hits += 1
                out[int(frame_index)] = entry.result
        return out

    def put(self, video_key: str, frame_index: int, result: DetectionResult) -> None:
        """Insert (or refresh) one frame's detections, evicting to budget."""
        self.put_many(video_key, {int(frame_index): result})

    def put_many(
        self, video_key: str, results: dict[int, DetectionResult]
    ) -> None:
        """Insert a batch of detections under one lock hold."""
        with self._lock:
            for frame_index, result in results.items():
                key = (video_key, int(frame_index))
                existing = self._entries.pop(key, None)
                if existing is not None:
                    self.stats.current_bytes -= existing.nbytes
                nbytes = estimate_result_bytes(result)
                if nbytes > self.capacity_bytes:
                    continue  # a single oversized frame can never fit
                self._entries[key] = _Entry(result=result, nbytes=nbytes)
                self.stats.current_bytes += nbytes
                self.stats.insertions += 1
            while self.stats.current_bytes > self.capacity_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self.stats.current_bytes -= evicted.nbytes
                self.stats.evictions += 1
            self.stats.entries = len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters other than ``current_bytes`` are kept)."""
        with self._lock:
            self._entries.clear()
            self.stats.current_bytes = 0
            self.stats.entries = 0

    def resize(self, capacity_bytes: int) -> None:
        """Change the byte budget, evicting immediately if it shrank."""
        if capacity_bytes < 1:
            raise ConfigurationError(
                f"capacity_bytes must be >= 1, got {capacity_bytes}"
            )
        with self._lock:
            self.capacity_bytes = capacity_bytes
            while self.stats.current_bytes > self.capacity_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self.stats.current_bytes -= evicted.nbytes
                self.stats.evictions += 1
            self.stats.entries = len(self._entries)

    # -- persistence ----------------------------------------------------------------

    def save(self, path: str | Path, format: str = "json") -> None:
        """Serialise every entry (LRU order preserved) to ``path``.

        ``format="json"`` writes the historical human-readable snapshot;
        ``format="npz"`` writes the compact columnar binary form (the same
        codec the process-backend shard transport uses) — typically an order
        of magnitude smaller for feature-heavy caches.  Either way the write
        is atomic (temp file + rename): a server killed mid-save leaves the
        previous snapshot intact, never a truncated file.
        """
        if format not in ("json", "npz"):
            raise ConfigurationError(
                f"format must be 'json' or 'npz', got {format!r}"
            )
        with self._lock:
            keys = list(self._entries.keys())
            results = [entry.result for entry in self._entries.values()]
            capacity = self.capacity_bytes
        if format == "json":
            payload = {
                "format": "shared-detection-cache/v1",
                "capacity_bytes": capacity,
                "entries": [
                    {"video_key": key[0], **result_to_json(result)}
                    for key, result in zip(keys, results, strict=True)
                ],
            }
            atomic_write_text(path, json.dumps(payload))
            return
        # Columnar binary: detections of every entry (LRU order) through the
        # shared codec, plus a video-key string table mapping rows to keys.
        video_key_table = sorted({key[0] for key in keys})
        key_index = {name: i for i, name in enumerate(video_key_table)}
        arrays = encode_detection_results(results)
        arrays["cache_format"] = np.asarray(_NPZ_FORMAT)
        arrays["capacity_bytes"] = np.asarray(capacity, dtype=np.int64)
        arrays["video_key_table"] = np.asarray(video_key_table, dtype=np.str_)
        arrays["video_key_code"] = np.asarray(
            [key_index[key[0]] for key in keys], dtype=np.int32
        )
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **arrays)
        atomic_write_bytes(path, buffer.getvalue())

    @classmethod
    def load(
        cls, path: str | Path, capacity_bytes: int | None = None
    ) -> "SharedDetectionCache":
        """Rebuild a cache from :meth:`save` output (oldest entries first).

        The format is sniffed from the file itself — zip magic means the
        columnar ``npz`` form, anything else the JSON form — so callers never
        name it and old JSON snapshots keep loading unchanged.
        """
        raw = Path(path).read_bytes()
        if raw[:4] == _ZIP_MAGIC:
            return cls._load_npz(raw, path, capacity_bytes)
        payload = json.loads(raw.decode("utf-8"))
        if payload.get("format") != "shared-detection-cache/v1":
            raise ConfigurationError(
                f"{path} is not a shared-detection-cache file"
            )
        cache = cls(
            capacity_bytes=(
                capacity_bytes
                if capacity_bytes is not None
                else int(payload["capacity_bytes"])
            )
        )
        for entry in payload["entries"]:
            cache.put(entry["video_key"], int(entry["frame_index"]), result_from_json(entry))
        return cache

    @classmethod
    def _load_npz(
        cls, raw: bytes, path: str | Path, capacity_bytes: int | None
    ) -> "SharedDetectionCache":
        try:
            with np.load(io.BytesIO(raw), allow_pickle=False) as archive:
                if (
                    "cache_format" not in archive
                    or str(archive["cache_format"]) != _NPZ_FORMAT
                ):
                    raise ConfigurationError(
                        f"{path} is not a shared-detection-cache file"
                    )
                arrays = {name: archive[name] for name in archive.files}
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            raise ConfigurationError(
                f"{path} is not a shared-detection-cache file: {exc}"
            ) from exc
        results = decode_detection_results(arrays)
        video_key_table = [str(name) for name in arrays["video_key_table"]]
        cache = cls(
            capacity_bytes=(
                capacity_bytes
                if capacity_bytes is not None
                else int(arrays["capacity_bytes"])
            )
        )
        for code, result in zip(arrays["video_key_code"], results, strict=True):
            cache.put(video_key_table[int(code)], result.frame_index, result)
        return cache


# -- process-wide singleton ---------------------------------------------------------

_process_cache: SharedDetectionCache | None = None
_process_cache_lock = threading.Lock()


def get_process_cache(capacity_bytes: int | None = None) -> SharedDetectionCache:
    """The process-wide shared cache, created (or grown) on first use.

    Every engine with ``shared_cache_bytes > 0`` shares this instance, which
    is what makes the cache cross-*query* and cross-*session*: a frame
    decoded by one user's query serves every later query over the same video.
    A larger requested capacity grows the cache; a smaller one leaves it
    untouched (shrinking a serving cache under someone else's feet would be
    surprising).
    """
    global _process_cache
    with _process_cache_lock:
        if _process_cache is None:
            _process_cache = SharedDetectionCache(
                capacity_bytes=capacity_bytes or DEFAULT_CACHE_BYTES
            )
        elif capacity_bytes is not None and capacity_bytes > _process_cache.capacity_bytes:
            _process_cache.resize(capacity_bytes)
        return _process_cache


def reset_process_cache() -> None:
    """Drop the process-wide cache (tests and long-running servers)."""
    global _process_cache
    with _process_cache_lock:
        _process_cache = None
