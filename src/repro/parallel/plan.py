"""Parallel stream driver: shard the video, prefetch, merge event streams.

:func:`parallel_events` is what :meth:`repro.api.session.PreparedQuery.stream`
routes through when the effective parallelism exceeds one.  It leaves the
physical plan's logic untouched — the plan streams on the driver thread with
its usual control and ledger — and surrounds it with the sharded prefetch
pipeline:

1. a :class:`~repro.parallel.shards.VideoSharder` partitions the video using
   the statistics catalog's per-shard event rates for the query's classes
   (pruned shards start lazily, dense shards first);
2. a :class:`~repro.parallel.executor.DetectionPrefetcher` runs one worker
   per shard, each in its own execution context with an RNG stream spawned
   from the execution's seed sequence keyed by shard id;
3. a :class:`StreamMerger` interleaves the workers'
   :class:`~repro.core.events.ShardProgress` events with the plan's own
   stream, shuts the pool down the moment the terminal ``Completed`` event
   appears (a LIMIT satisfied across shards stops every worker), and
   propagates ``close()`` to in-flight workers promptly.

Because all charging happens on the driver as it consumes prefetched
detections, a parallel execution's result — estimate, records, hit set and
ledger counts — is bit-for-bit the sequential one under the same RNG stream;
speculative work a worker computed but the plan never consumed costs
wall-clock only.
"""

from __future__ import annotations

import queue
import time
from collections.abc import Iterator, Mapping
from typing import TYPE_CHECKING

import numpy as np

from repro.core.events import Completed, ExecutionControl, ExecutionEvent
from repro.errors import ConfigurationError
from repro.obs.metrics import get_registry
from repro.frameql.analyzer import (
    AggregateQuerySpec,
    ScrubbingQuerySpec,
    SelectionQuerySpec,
)
from repro.parallel.executor import DEFAULT_WINDOW_CHUNKS, DetectionPrefetcher
from repro.parallel.shards import Shard, ShardPlan, VideoSharder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.statistics import VideoStatistics
    from repro.core.context import ExecutionContext
    from repro.optimizer.base import PhysicalPlan


def query_profile(
    plan: "PhysicalPlan",
) -> tuple[Mapping[str, int] | None, str | None]:
    """The (min_counts, object_class) the sharder estimates densities for."""
    spec = getattr(plan, "spec", None)
    if isinstance(spec, ScrubbingQuerySpec):
        return spec.min_counts, None
    if isinstance(spec, (AggregateQuerySpec, SelectionQuerySpec)):
        return None, spec.object_class
    return None, None


class StreamMerger:
    """Interleave a plan's event stream with its shard workers' progress.

    Iterating yields the plan's events in order, with any
    :class:`~repro.core.events.ShardProgress` the workers produced since the
    last plan event injected first (worker-arrival order).  The terminal
    ``Completed`` stays terminal: the pool is shut down and its last progress
    drained *before* it is yielded.  Closing the merger closes the plan's
    generator and joins every worker, so no detector call survives a
    ``close()``.
    """

    def __init__(
        self, inner: Iterator[ExecutionEvent], prefetcher: DetectionPrefetcher
    ) -> None:
        self._inner = inner
        self._prefetcher = prefetcher

    def events(self) -> Iterator[ExecutionEvent]:
        prefetcher = self._prefetcher
        try:
            for event in self._inner:
                if isinstance(event, Completed):
                    # The LIMIT/CI/budget decision has been made across all
                    # shards: stop the workers before handing out the result.
                    prefetcher.shutdown()
                yield from self._drain_progress()
                yield event
        finally:
            closer = getattr(self._inner, "close", None)
            if closer is not None:
                closer()
            prefetcher.shutdown()

    def _drain_progress(self) -> Iterator[ExecutionEvent]:
        progress = self._prefetcher.progress_events
        while True:
            try:
                yield progress.get_nowait()
            except queue.Empty:
                return


#: Backends a parallel execution can run on.
BACKENDS = ("threads", "processes")


def parallel_events(
    plan: "PhysicalPlan",
    context: "ExecutionContext",
    control: ExecutionControl,
    parallelism: int,
    stats: "VideoStatistics | None" = None,
    window_chunks: int = DEFAULT_WINDOW_CHUNKS,
    backend: str = "threads",
) -> Iterator[ExecutionEvent]:
    """Run ``plan`` with sharded parallel prefetch; yields the merged stream.

    ``context`` must be private to this execution (the session clones its
    cached per-video context): the prefetcher is attached to it and the RNG
    stream must not be rebound mid-flight.

    ``backend`` selects the worker substrate: ``"threads"`` (the default;
    right whenever the detector releases the GIL during its latency) or
    ``"processes"`` (shared-memory columnar transport; right for GIL-bound
    detectors).  A context that cannot be exported to worker processes — an
    unpicklable detector, a recorded test day — silently falls back to
    threads, which is always semantically equivalent.
    """
    if parallelism < 2:
        raise ConfigurationError(
            f"parallel_events needs parallelism >= 2, got {parallelism}"
        )
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown parallel backend {backend!r}; expected one of {BACKENDS}"
        )
    # Driver wall clock for the whole parallel execution, stamped here so
    # executor construction and worker spawn are inside it — timed_stream's
    # clock only starts when the plan generator first advances, which made
    # thread and process wall_seconds incomparable (the process backend hid
    # its ~seconds of spawn cost).  The terminal ledger is overwritten with
    # this elapsed time via the sanctioned ``set_wall_seconds``.
    entry = time.perf_counter()  # repro: allow[RPR001]: driver wall accounting, sanctioned overwrite via set_wall_seconds
    min_counts, object_class = query_profile(plan)
    sharder = VideoSharder()
    index_view = context.index_view
    shard_plan = sharder.shard(
        num_frames=context.video.num_frames,
        parallelism=parallelism,
        stats=stats,
        min_counts=min_counts,
        object_class=object_class,
        # Persisted evidence beats the held-out approximation: with an index
        # attached, per-shard rates are exact upper bounds over the test-day
        # frames themselves (rate 0 is a proof of emptiness).
        sketch=index_view.sketch if index_view is not None else None,
    )
    prefetcher = _build_executor(
        shard_plan, context, control, window_chunks, backend
    )
    driver_context = context.with_prefetcher(prefetcher)
    merger = StreamMerger(plan.run(driver_context, control), prefetcher)
    return _finalized_events(
        merger, prefetcher, context, shard_plan, backend, entry
    )


def _finalized_events(
    merger: StreamMerger,
    prefetcher: DetectionPrefetcher,
    context: "ExecutionContext",
    shard_plan: ShardPlan,
    backend: str,
    entry: float,
) -> Iterator[ExecutionEvent]:
    """Finalize the terminal event of a parallel run.

    Three things happen exactly once, on ``Completed`` (the merger has
    already shut the pool down, so every worker has reported):

    * the terminal ledger's ``wall_seconds`` is overwritten with the driver's
      elapsed time since :func:`parallel_events` entry (satellite S2 — the
      only sanctioned wall overwrite, see
      :meth:`~repro.metrics.runtime.ExecutionLedger.set_wall_seconds`);
    * worker span payloads are stitched into the driver's trace tree (ids
      derive from shard ids, identical across backends);
    * shard/prune/prefetch counters are folded into the metrics registry.
    """
    tracer = getattr(context, "tracer", None)
    for event in merger.events():
        if isinstance(event, Completed):
            if tracer is not None:
                worker_spans = getattr(prefetcher, "worker_spans", None)
                if worker_spans is not None:
                    tracer.attach_worker_spans(worker_spans())
            registry = get_registry()
            labels = {"backend": backend}
            registry.inc(
                "repro_shards_total",
                len(shard_plan.shards),
                labels,
                help="Shards planned by parallel executions.",
            )
            registry.inc(
                "repro_shards_pruned_total",
                sum(1 for shard in shard_plan.shards if shard.pruned),
                labels,
                help="Shards whose workers start lazily (sketch-pruned).",
            )
            registry.inc(
                "repro_frames_prefetched_total",
                prefetcher.frames_prefetched,
                labels,
                help="Frames computed speculatively by shard workers.",
            )
            ledger = event.result.ledger
            if hasattr(ledger, "set_wall_seconds"):
                elapsed = time.perf_counter() - entry  # repro: allow[RPR001]: driver wall accounting, sanctioned overwrite via set_wall_seconds
                ledger.set_wall_seconds(elapsed)
        yield event


def _build_executor(
    shard_plan: ShardPlan,
    context: "ExecutionContext",
    control: ExecutionControl,
    window_chunks: int,
    backend: str,
) -> DetectionPrefetcher:
    """The shard executor for one backend (both satisfy the same protocol)."""
    if backend == "processes":
        from repro.errors import SpawnExportError
        from repro.parallel.process_executor import ProcessShardExecutor

        try:
            context_spec = context.spawn_spec()
        except SpawnExportError:
            pass  # fall through to the thread backend
        else:
            return ProcessShardExecutor(  # type: ignore[return-value]
                shard_plan=shard_plan,
                context_spec=context_spec,
                external_cancel=control.cancellation,
                chunk_size=control.batch_size,
                window_chunks=window_chunks,
            )

    seed_sequence = context.seed_sequence
    if seed_sequence is None:
        seed_sequence = np.random.SeedSequence(context.config.seed)
    children = seed_sequence.spawn(len(shard_plan.shards))

    def worker_context(shard: Shard) -> "ExecutionContext":
        return context.shard_context(
            rng=np.random.default_rng(children[shard.shard_id])
        )

    return DetectionPrefetcher(
        shard_plan=shard_plan,
        worker_contexts=worker_context,
        external_cancel=control.cancellation,
        chunk_size=control.batch_size,
        window_chunks=window_chunks,
    )


__all__ = [
    "BACKENDS",
    "StreamMerger",
    "parallel_events",
    "query_profile",
    "ShardPlan",
]
