"""Frame-range sharding with statistics-driven density ordering.

A :class:`VideoSharder` partitions a video's frame range into contiguous
shards — the unit of parallel execution — and annotates each with an
estimated hit density for the running query, computed from the statistics
catalog's held-out counts mapped onto the shard's position in the video
(NeedleTail's density/locality idea applied to BlazeIt's frame ranges).

Two things follow from the estimates, neither of which can affect
correctness (statistics steer scheduling, never results):

* shards whose estimated rate is exactly zero for the query's classes are
  marked *pruned*: their workers start lazily, only if the driving plan ever
  actually asks for one of their frames — a scrubbing query satisfied from
  the dense shards never decodes a provably-cold region;
* the remaining shards carry a scheduling order (densest first), so when
  workers are scarce the regions most likely to satisfy a LIMIT query are
  prefetched first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.statistics import VideoStatistics
    from repro.index.sketches import RangeSketch

#: Hard cap on the number of shards (and therefore worker threads) one
#: execution may spawn, whatever parallelism was requested.
MAX_SHARDS = 64


@dataclass(frozen=True)
class Shard:
    """One contiguous frame range ``[start, end)`` of the video."""

    shard_id: int
    start: int
    end: int
    #: Estimated fraction of this shard's frames satisfying the query's
    #: class predicate (1.0 when no statistics or no predicate applied).
    estimated_rate: float = 1.0
    #: Statically estimated empty for the query's classes: worker starts
    #: lazily, only when the plan actually touches the shard.
    pruned: bool = False

    @property
    def num_frames(self) -> int:
        return self.end - self.start

    def describe(self) -> str:
        mark = " pruned" if self.pruned else ""
        return (
            f"shard {self.shard_id} [{self.start}, {self.end}) "
            f"rate~{self.estimated_rate:.4f}{mark}"
        )


@dataclass(frozen=True)
class ShardPlan:
    """The full partition of one video for one query execution."""

    shards: tuple[Shard, ...]
    num_frames: int

    def __len__(self) -> int:
        return len(self.shards)

    def owner_of(self, frame_index: int) -> Shard:
        """The shard whose range contains ``frame_index``."""
        if not 0 <= frame_index < self.num_frames:
            raise IndexError(
                f"frame {frame_index} outside video of {self.num_frames} frames"
            )
        shard_id = int(self.owners_of(np.asarray([frame_index], dtype=np.int64))[0])
        return self.shards[shard_id]

    def owners_of(self, frame_indices: np.ndarray) -> np.ndarray:
        """Vectorized shard ids for an array of frame indices.

        The single home of the ownership arithmetic: shards are equal-width
        except for a one-frame remainder spread over the leading shards, so
        ownership is closed-form.  Both :meth:`owner_of` and the prefetch
        executor's worklist split route through here.
        """
        k = len(self.shards)
        base, extra = divmod(self.num_frames, k)
        wide_span = (base + 1) * extra  # frames covered by the widened shards
        indices = np.asarray(frame_indices, dtype=np.int64)
        return np.where(
            indices < wide_span,
            indices // (base + 1),
            extra + (indices - wide_span) // max(1, base),
        )

    def scheduling_order(self) -> list[Shard]:
        """Shards in worker start order: unpruned densest-first, pruned last."""
        return sorted(
            self.shards,
            key=lambda s: (s.pruned, -s.estimated_rate, s.shard_id),
        )

    def pruned_shards(self) -> list[Shard]:
        """The shards statically estimated empty for the query."""
        return [s for s in self.shards if s.pruned]

    def describe(self) -> str:
        return "; ".join(s.describe() for s in self.shards)


class VideoSharder:
    """Partition a frame range into density-annotated contiguous shards."""

    def __init__(self, max_shards: int = MAX_SHARDS) -> None:
        if max_shards < 1:
            raise ConfigurationError(f"max_shards must be >= 1, got {max_shards}")
        self.max_shards = max_shards

    def shard(
        self,
        num_frames: int,
        parallelism: int,
        stats: "VideoStatistics | None" = None,
        min_counts: Mapping[str, int] | None = None,
        object_class: str | None = None,
        sketch: "RangeSketch | None" = None,
    ) -> ShardPlan:
        """Split ``[0, num_frames)`` into up to ``parallelism`` shards.

        ``min_counts`` (scrubbing conjunctions) or ``object_class``
        (aggregate/selection predicates) select which per-shard rate is
        computed; with neither — or with no rate source — every shard gets
        rate 1.0 and nothing is pruned.

        Rates come from the persistent index's range ``sketch`` when one is
        attached: exact upper bounds over the *test-day* frames themselves,
        not the catalog's proportional mapping of held-out counts onto shard
        positions (which mislocates events whenever the held-out day's
        timeline differs from the test day's).  A sketch rate of zero is a
        proof of emptiness, so sketch-pruned shards need no ``stats``
        corroboration.
        """
        if num_frames < 1:
            raise ConfigurationError(f"num_frames must be >= 1, got {num_frames}")
        if parallelism < 1:
            raise ConfigurationError(f"parallelism must be >= 1, got {parallelism}")
        k = max(1, min(parallelism, num_frames, self.max_shards))
        base, extra = divmod(num_frames, k)
        shards: list[Shard] = []
        start = 0
        for shard_id in range(k):
            end = start + base + (1 if shard_id < extra else 0)
            rate = self._estimate_rate(
                stats, start, end, min_counts, object_class, sketch
            )
            shards.append(
                Shard(
                    shard_id=shard_id,
                    start=start,
                    end=end,
                    estimated_rate=rate,
                    # Pruning needs an actual claim about the data: a zero
                    # upper bound from the index sketch (a proof), or a zero
                    # rate computed from real held-out counts — never the
                    # 1.0 fallback of "no rate source available".
                    pruned=(
                        rate == 0.0
                        and (sketch is not None or stats is not None)
                        and bool(min_counts or object_class)
                    ),
                )
            )
            start = end
        return ShardPlan(shards=tuple(shards), num_frames=num_frames)

    def _estimate_rate(
        self,
        stats: "VideoStatistics | None",
        start: int,
        end: int,
        min_counts: Mapping[str, int] | None,
        object_class: str | None,
        sketch: "RangeSketch | None" = None,
    ) -> float:
        if sketch is not None:
            if min_counts:
                return sketch.range_event_rate(dict(min_counts), start, end)
            if object_class is not None:
                return sketch.range_presence_rate(object_class, start, end)
            return 1.0
        if stats is None:
            return 1.0
        if min_counts:
            return stats.range_event_rate(dict(min_counts), start, end)
        if object_class is not None:
            return stats.range_presence_rate(object_class, start, end)
        return 1.0
