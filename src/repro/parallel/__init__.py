"""Parallel sharded execution engine with a shared cross-query detection cache.

Three cooperating pieces (see the README's "Parallel execution" section):

* :mod:`repro.parallel.shards` — :class:`VideoSharder` partitions a video's
  frame range into contiguous shards, annotated with per-shard event-rate
  estimates from the statistics catalog (dense shards scheduled first,
  provably-cold shards started lazily);
* :mod:`repro.parallel.executor` — :class:`DetectionPrefetcher` runs one
  worker thread per shard, each with its own execution context and RNG
  stream, speculatively computing detections in the plan's announced access
  order while the driver charges only what it consumes;
* :mod:`repro.parallel.cache` — :class:`SharedDetectionCache`, the
  process-wide thread-safe LRU that lets repeated queries over hot videos
  skip detector calls entirely (``BlazeItConfig.shared_cache_bytes``).

Entry point: :func:`repro.parallel.plan.parallel_events`, routed to by
``QuerySession.stream()`` whenever ``QueryHints.parallelism`` (or the engine
config's ``parallelism``) exceeds one.
"""

from repro.parallel.cache import (
    DEFAULT_CACHE_BYTES,
    SharedCacheStats,
    SharedDetectionCache,
    get_process_cache,
    reset_process_cache,
)
from repro.parallel.executor import DetectionPrefetcher
from repro.parallel.plan import StreamMerger, parallel_events
from repro.parallel.shards import MAX_SHARDS, Shard, ShardPlan, VideoSharder

__all__ = [
    "DEFAULT_CACHE_BYTES",
    "MAX_SHARDS",
    "DetectionPrefetcher",
    "Shard",
    "ShardPlan",
    "SharedCacheStats",
    "SharedDetectionCache",
    "StreamMerger",
    "VideoSharder",
    "get_process_cache",
    "parallel_events",
    "reset_process_cache",
]
