"""Evaluation workloads: the queries of Section 10 as FrameQL strings."""

from repro.workloads.queries import (
    AGGREGATE_VIDEOS,
    SCRUBBING_QUERIES,
    ScrubbingWorkload,
    aggregate_query,
    multiclass_scrubbing_query,
    noscope_replication_query,
    red_bus_selection_query,
    scrubbing_query,
)

__all__ = [
    "AGGREGATE_VIDEOS",
    "SCRUBBING_QUERIES",
    "ScrubbingWorkload",
    "aggregate_query",
    "scrubbing_query",
    "multiclass_scrubbing_query",
    "red_bus_selection_query",
    "noscope_replication_query",
]
