"""The evaluation queries of Section 10, expressed as FrameQL strings.

The aggregate queries follow Figure 3a with the video and object class
changed; the scrubbing queries follow Figure 3b with the thresholds of
Table 6; the selection query is Figure 3c (red buses in ``taipei``).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Video -> primary object class for the aggregate experiments (Figure 4 uses
#: the five videos for which query rewriting meets the accuracy target;
#: ``archie`` is included for the control-variates experiment of Figure 5).
AGGREGATE_VIDEOS: dict[str, str] = {
    "taipei": "car",
    "night-street": "car",
    "rialto": "boat",
    "grand-canal": "boat",
    "amsterdam": "car",
    "archie": "car",
}


@dataclass(frozen=True)
class ScrubbingWorkload:
    """One scrubbing query of Table 6: find frames with >= ``min_count`` objects."""

    video: str
    object_class: str
    min_count: int


#: The single-class scrubbing queries of Table 6.  The paper's thresholds are
#: chosen so each query has a few tens of instances in its (33-hour) test day;
#: the scaled-down synthetic days keep the events rare by using thresholds
#: near each scenario's maximum simultaneous count.
SCRUBBING_QUERIES: dict[str, ScrubbingWorkload] = {
    "taipei": ScrubbingWorkload("taipei", "car", 6),
    "night-street": ScrubbingWorkload("night-street", "car", 5),
    "rialto": ScrubbingWorkload("rialto", "boat", 7),
    "grand-canal": ScrubbingWorkload("grand-canal", "boat", 5),
    "amsterdam": ScrubbingWorkload("amsterdam", "car", 4),
    "archie": ScrubbingWorkload("archie", "car", 4),
}


def aggregate_query(
    video: str,
    object_class: str,
    error: float = 0.1,
    confidence: float = 0.95,
) -> str:
    """Figure 3a: frame-averaged count with an error bound."""
    return (
        f"SELECT FCOUNT(*) FROM {video} "
        f"WHERE class = '{object_class}' "
        f"ERROR WITHIN {error} "
        f"AT CONFIDENCE {confidence * 100:g}%"
    )


def scrubbing_query(
    video: str,
    object_class: str,
    min_count: int,
    limit: int = 10,
    gap: int = 300,
) -> str:
    """Figure 3b restricted to one class: frames with at least N objects."""
    return (
        f"SELECT timestamp FROM {video} "
        f"GROUP BY timestamp "
        f"HAVING SUM(class='{object_class}') >= {min_count} "
        f"LIMIT {limit} GAP {gap}"
    )


def multiclass_scrubbing_query(
    video: str,
    min_counts: dict[str, int],
    limit: int = 10,
    gap: int = 300,
) -> str:
    """Figure 3b: frames satisfying a conjunction of per-class count thresholds."""
    having = " AND ".join(
        f"SUM(class='{object_class}') >= {min_count}"
        for object_class, min_count in sorted(min_counts.items())
    )
    return (
        f"SELECT timestamp FROM {video} "
        f"GROUP BY timestamp "
        f"HAVING {having} "
        f"LIMIT {limit} GAP {gap}"
    )


def red_bus_selection_query(
    video: str = "taipei",
    redness_threshold: float = 17.5,
    min_area: float = 100000,
    min_frames: int = 15,
) -> str:
    """Figure 3c: red buses at least ``min_area`` pixels large, visible >= 0.5s."""
    return (
        f"SELECT * FROM {video} "
        f"WHERE class = 'bus' "
        f"AND redness(content) >= {redness_threshold} "
        f"AND area(mask) > {min_area} "
        f"GROUP BY trackid "
        f"HAVING COUNT(*) > {min_frames}"
    )


def noscope_replication_query(
    video: str, object_class: str, fnr: float = 0.01, fpr: float = 0.01
) -> str:
    """Section 4: replicating NoScope's binary-detection pipeline in FrameQL."""
    return (
        f"SELECT timestamp FROM {video} "
        f"WHERE class = '{object_class}' "
        f"FNR WITHIN {fnr} "
        f"FPR WITHIN {fpr}"
    )
