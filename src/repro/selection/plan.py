"""Selection plans: an ordered pipeline of filters followed by detection."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.runtime import RuntimeLedger
from repro.selection.filters import FrameFilter
from repro.video.frame_batch import FrameBatch
from repro.video.synthetic import SyntheticVideo


@dataclass
class SelectionPlan:
    """An ordered filter pipeline and the detection cost scale it implies.

    Filters are applied in order; the surviving frames are handed to the
    object detector.  Spatial filters contribute a multiplicative reduction of
    detection cost (cropping/resizing) rather than pruning frames.
    """

    filters: list[FrameFilter] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def detection_cost_scale(self) -> float:
        """Combined detection cost multiplier from all (spatial) filters."""
        scale = 1.0
        for filter_ in self.filters:
            scale *= filter_.detection_cost_scale
        return scale

    def filter_classes(self) -> list[str]:
        """The classes of the filters in the plan, in order."""
        return [filter_.filter_class for filter_ in self.filters]

    def without(self, filter_class: str) -> "SelectionPlan":
        """A copy of the plan with one filter class removed (lesion study)."""
        return SelectionPlan(
            filters=[f for f in self.filters if f.filter_class != filter_class],
            notes=self.notes + [f"removed {filter_class} filters"],
        )

    def restricted_to(self, filter_classes: list[str]) -> "SelectionPlan":
        """A copy keeping only the listed filter classes (factor analysis)."""
        keep = set(filter_classes)
        return SelectionPlan(
            filters=[f for f in self.filters if f.filter_class in keep],
            notes=self.notes + [f"restricted to {sorted(keep)}"],
        )

    def apply(
        self,
        video: SyntheticVideo,
        frame_indices: np.ndarray | None = None,
        ledger: RuntimeLedger | None = None,
    ) -> np.ndarray:
        """Run every filter in order and return the surviving frame indices."""
        return self.apply_batch(FrameBatch(video, frame_indices), ledger).indices

    def apply_batch(
        self, batch: FrameBatch, ledger: RuntimeLedger | None = None
    ) -> FrameBatch:
        """Run the cascade columnar: one shared feature matrix, masked down.

        Feature-scoring filters (content, label) consume the batch's feature
        matrix, which is computed once for the whole cascade; every stage
        narrows the same batch with a boolean mask instead of regathering
        features for its survivor list.
        """
        for filter_ in self.filters:
            batch = filter_.apply_batch(batch, ledger)
            if len(batch) == 0:
                break
        return batch

    def describe(self) -> str:
        """Human-readable one-line description of the plan."""
        if not self.filters:
            return "no filters (detect every frame)"
        parts = [
            f"{filter_.filter_class}:{filter_.name}" for filter_ in self.filters
        ]
        return " -> ".join(parts) + f" -> detect (cost x{self.detection_cost_scale:.2f})"
