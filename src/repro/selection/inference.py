"""Filter inference: from a FrameQL query to a selection plan (Section 8.1).

Given a :class:`~repro.frameql.analyzer.SelectionQuerySpec` and labelled
held-out data, infer which filter classes apply and calibrate their
parameters:

1. **Spatial** — if the query constrains the mask's extent, crop to the
   implied region of interest (detection runs faster on smaller inputs).
2. **Temporal** — if the query requires an object to persist for ``K`` frames,
   subsample once every ``(K - 1) // 2`` frames; time-range predicates
   restrict the scanned interval.
3. **Content** — for each continuous UDF predicate, compute the frame-level
   score on the held-out set and calibrate a no-false-negative threshold; keep
   the filter only if it actually discards frames.
4. **Label** — train a binary presence model for the queried class and
   calibrate its threshold for no false negatives on the held-out set.

The ordering of the produced plan is cheapest-first (temporal and spatial are
free, content filters run at ~100,000 fps, the label NN at ~10,000 fps), which
is also what the paper's rule-based optimizer does implicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.frameql.analyzer import SelectionQuerySpec
from repro.metrics.runtime import RuntimeLedger
from repro.selection.filters import (
    ContentFilter,
    LabelFilter,
    SpatialFilter,
    TemporalFilter,
    feature_level_score,
)
from repro.selection.plan import SelectionPlan
from repro.specialization.binary_model import BinaryPresenceModel
from repro.specialization.calibration import calibrate_no_false_negative_threshold
from repro.specialization.trainer import TrainingConfig
from repro.video.synthetic import SyntheticVideo

#: UDFs that have a frame-level feature implementation and can therefore be
#: inferred as content filters.
_CONTENT_FILTER_UDFS = {"redness", "blueness", "brightness"}

#: A content filter must discard at least this fraction of held-out frames to
#: be worth keeping in the plan.
_MIN_USEFUL_DISCARD = 0.02


@dataclass
class FilterInferenceInputs:
    """Data the filter inference step needs beyond the query itself.

    Attributes
    ----------
    train_video, heldout_video:
        The labelled training day and the held-out day.
    train_features, heldout_features:
        Cheap per-frame features of the two days (computed once by the
        engine's labeled set).
    train_presence, heldout_presence:
        Boolean per-frame presence of the queried object class according to
        the labeled set's detector run.
    heldout_positive_mask:
        Boolean per-frame mask of held-out frames that satisfy the *full*
        selection predicate (class + UDFs); used to calibrate no-false-negative
        thresholds.
    """

    train_video: SyntheticVideo
    heldout_video: SyntheticVideo
    train_features: np.ndarray
    heldout_features: np.ndarray
    train_presence: np.ndarray
    heldout_presence: np.ndarray
    heldout_positive_mask: np.ndarray


def _infer_spatial(spec: SelectionQuerySpec, video: SyntheticVideo) -> SpatialFilter | None:
    if not spec.spatial_constraints:
        return None
    x_min, y_min = 0.0, 0.0
    x_max, y_max = float(video.spec.width), float(video.spec.height)
    for constraint in spec.spatial_constraints:
        if constraint.axis == "xmax" and constraint.op in ("<", "<="):
            x_max = min(x_max, constraint.value)
        elif constraint.axis == "xmin" and constraint.op in (">", ">="):
            x_min = max(x_min, constraint.value)
        elif constraint.axis == "ymax" and constraint.op in ("<", "<="):
            y_max = min(y_max, constraint.value)
        elif constraint.axis == "ymin" and constraint.op in (">", ">="):
            y_min = max(y_min, constraint.value)
    if x_max <= x_min or y_max <= y_min:
        return None
    if x_min == 0 and y_min == 0 and x_max == video.spec.width and y_max == video.spec.height:
        return None
    return SpatialFilter(
        roi_x_min=x_min,
        roi_y_min=y_min,
        roi_x_max=x_max,
        roi_y_max=y_max,
        frame_width=float(video.spec.width),
        frame_height=float(video.spec.height),
    )


def _infer_temporal(spec: SelectionQuerySpec, video: SyntheticVideo) -> TemporalFilter | None:
    subsample_step = 1
    if spec.min_track_frames is not None and spec.min_track_frames >= 3:
        subsample_step = max(1, (spec.min_track_frames - 1) // 2)
    start_frame = None
    end_frame = None
    time_min, time_max = spec.time_range
    if time_min is not None:
        start_frame = video.frame_of_timestamp(time_min)
    if time_max is not None:
        end_frame = video.frame_of_timestamp(time_max)
    if subsample_step == 1 and start_frame is None and end_frame is None:
        return None
    return TemporalFilter(
        subsample_step=subsample_step, start_frame=start_frame, end_frame=end_frame
    )


def _infer_content(
    spec: SelectionQuerySpec, inputs: FilterInferenceInputs
) -> list[ContentFilter]:
    filters: list[ContentFilter] = []
    positives = np.asarray(inputs.heldout_positive_mask, dtype=bool)
    for predicate in spec.udf_predicates:
        if predicate.udf_name not in _CONTENT_FILTER_UDFS:
            continue
        if predicate.op not in (">", ">="):
            # Only lower-bound predicates translate into "keep high-score
            # frames" filters.
            continue
        scores = feature_level_score(inputs.heldout_features, predicate.udf_name)
        calibration = calibrate_no_false_negative_threshold(scores, positives)
        discarded = 1.0 - calibration.selectivity
        if discarded < _MIN_USEFUL_DISCARD:
            continue
        filters.append(
            ContentFilter(
                udf_name=predicate.udf_name,
                threshold=calibration.threshold,
                estimated_selectivity=calibration.selectivity,
            )
        )
    return filters


def _infer_label(
    spec: SelectionQuerySpec,
    inputs: FilterInferenceInputs,
    ledger: RuntimeLedger | None,
    training_config: TrainingConfig | None,
    model_type: str = "softmax",
) -> LabelFilter | None:
    if spec.object_class is None:
        return None
    train_presence = np.asarray(inputs.train_presence, dtype=bool)
    if train_presence.sum() < 8 or (~train_presence).sum() < 8:
        # Not enough of both classes to train a meaningful presence model.
        return None
    model = BinaryPresenceModel(
        object_class=spec.object_class,
        model_type=model_type,
        training_config=training_config,
    )
    model.fit(inputs.train_features, train_presence, ledger)
    heldout_scores = model.predict_proba_present(inputs.heldout_features, ledger)
    calibration = calibrate_no_false_negative_threshold(
        heldout_scores, np.asarray(inputs.heldout_positive_mask, dtype=bool)
    )
    if 1.0 - calibration.selectivity < _MIN_USEFUL_DISCARD:
        # The no-false-negative threshold passes (almost) every held-out
        # frame, so running the NN per frame would cost more than it saves.
        return None
    return LabelFilter(
        model=model,
        threshold=calibration.threshold,
        estimated_selectivity=calibration.selectivity,
    )


def infer_selection_plan(
    spec: SelectionQuerySpec,
    unseen_video: SyntheticVideo,
    inputs: FilterInferenceInputs,
    ledger: RuntimeLedger | None = None,
    training_config: TrainingConfig | None = None,
    enabled_filter_classes: set[str] | None = None,
    model_type: str = "softmax",
) -> SelectionPlan:
    """Infer the full selection plan for a query.

    ``enabled_filter_classes`` restricts which filter classes may be used
    (``{"label", "content", "temporal", "spatial"}``); it exists for the
    factor-analysis and lesion-study benchmarks.
    """
    enabled = enabled_filter_classes or {"label", "content", "temporal", "spatial"}
    plan = SelectionPlan()

    if "temporal" in enabled:
        temporal = _infer_temporal(spec, unseen_video)
        if temporal is not None:
            plan.filters.append(temporal)
            plan.notes.append(
                f"temporal: step={temporal.subsample_step}, "
                f"range=[{temporal.start_frame}, {temporal.end_frame})"
            )
    if "spatial" in enabled:
        spatial = _infer_spatial(spec, unseen_video)
        if spatial is not None:
            plan.filters.append(spatial)
            plan.notes.append(
                f"spatial: detection cost x{spatial.detection_cost_scale:.2f}"
            )
    if "content" in enabled:
        for content in _infer_content(spec, inputs):
            plan.filters.append(content)
            plan.notes.append(
                f"content[{content.udf_name}]: threshold={content.threshold:.3f}, "
                f"selectivity={content.estimated_selectivity:.3f}"
            )
    if "label" in enabled:
        label = _infer_label(spec, inputs, ledger, training_config, model_type)
        if label is not None:
            plan.filters.append(label)
            plan.notes.append(
                f"label[{spec.object_class}]: threshold={label.threshold:.3f}, "
                f"selectivity={label.estimated_selectivity:.3f}"
            )
    return plan
