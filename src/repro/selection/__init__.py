"""Content-based selection (Section 8).

Selection queries need the object detector to produce masks, so the
optimization is to discard irrelevant frames *before* detection using four
classes of inferred filters: label-based, content-based, temporal and spatial.
Filter types and parameters are inferred automatically from the FrameQL query
and the labeled/held-out data.
"""

from repro.selection.filters import (
    ContentFilter,
    FrameFilter,
    LabelFilter,
    SpatialFilter,
    TemporalFilter,
    feature_level_score,
)
from repro.selection.plan import SelectionPlan
from repro.selection.inference import FilterInferenceInputs, infer_selection_plan

__all__ = [
    "FrameFilter",
    "LabelFilter",
    "ContentFilter",
    "TemporalFilter",
    "SpatialFilter",
    "feature_level_score",
    "SelectionPlan",
    "FilterInferenceInputs",
    "infer_selection_plan",
]
