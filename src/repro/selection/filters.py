"""The four filter classes of Section 8.

Every filter consumes a set of candidate frame indices and returns the subset
that survives, charging its (cheap) per-frame cost to the runtime ledger.  The
spatial filter is the exception: it does not prune frames, it reduces the cost
of each subsequent detection call by making the cropped image smaller and more
square.

Content filters operate on the cheap per-frame feature vectors (the
reproduction's stand-in for raw pixels); they never look at the ground-truth
objects, so they are genuinely "statistical" and must be calibrated on the
held-out set for no false negatives, exactly as in the paper.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.metrics.runtime import RuntimeLedger, StandardCosts
from repro.specialization.binary_model import BinaryPresenceModel
from repro.video.frame_batch import FrameBatch
from repro.video.synthetic import FEATURE_CHANNELS, FEATURE_GRID, SyntheticVideo


def feature_level_score(features: np.ndarray, udf_name: str) -> np.ndarray:
    """Frame-level UDF score computed from the cheap feature grid.

    Mirrors applying the UDF "over the entire frame (as opposed to the box)"
    (Section 8.1).  Supported UDFs: ``redness``, ``blueness``, ``brightness``.
    """
    features = np.atleast_2d(np.asarray(features, dtype=np.float64))
    cells = FEATURE_GRID * FEATURE_GRID
    grid = features[:, : cells * FEATURE_CHANNELS].reshape(
        features.shape[0], cells, FEATURE_CHANNELS
    )
    red = grid[:, :, 0].sum(axis=1)
    green = grid[:, :, 1].sum(axis=1)
    blue = grid[:, :, 2].sum(axis=1)
    if udf_name == "redness":
        return red - (green + blue) / 2.0
    if udf_name == "blueness":
        return blue - (red + green) / 2.0
    if udf_name == "brightness":
        return (red + green + blue) / 3.0
    raise ValueError(
        f"UDF {udf_name!r} has no frame-level feature implementation"
    )


class FrameFilter(abc.ABC):
    """A filter that discards candidate frames before object detection."""

    #: One of ``"label"``, ``"content"``, ``"temporal"``, ``"spatial"``.
    filter_class: str = "generic"
    name: str = "filter"

    @abc.abstractmethod
    def apply(
        self,
        video: SyntheticVideo,
        frame_indices: np.ndarray,
        ledger: RuntimeLedger | None = None,
    ) -> np.ndarray:
        """Return the subset of ``frame_indices`` that survives the filter."""

    def apply_batch(
        self, batch: FrameBatch, ledger: RuntimeLedger | None = None
    ) -> FrameBatch:
        """Columnar form of :meth:`apply`: narrow a :class:`FrameBatch`.

        Filters that score the cheap features override this to consume the
        batch's shared feature matrix (one model call per batch, no per-filter
        feature regather); the default delegates to :meth:`apply` and slices
        the batch down to the survivors.
        """
        surviving = self.apply(batch.video, batch.indices, ledger)
        if surviving.size == batch.indices.size:
            return batch
        return batch.restrict_to(surviving)

    #: Multiplier applied to the detection cost of surviving frames (spatial
    #: filters make detection cheaper; everything else leaves it unchanged).
    detection_cost_scale: float = 1.0


@dataclass
class TemporalFilter(FrameFilter):
    """Temporal filtering: subsample frames and restrict to a time range.

    If the query requires an object to be visible for at least ``K`` frames,
    sampling once every ``(K - 1) // 2`` frames cannot miss it (Section 8).
    """

    subsample_step: int = 1
    start_frame: int | None = None
    end_frame: int | None = None

    filter_class = "temporal"
    name = "temporal"

    def __post_init__(self) -> None:
        if self.subsample_step < 1:
            raise ValueError(
                f"subsample_step must be >= 1, got {self.subsample_step}"
            )

    def apply(
        self,
        video: SyntheticVideo,
        frame_indices: np.ndarray,
        ledger: RuntimeLedger | None = None,
    ) -> np.ndarray:
        indices = np.asarray(frame_indices, dtype=np.int64)
        mask = np.ones(indices.shape, dtype=bool)
        if self.start_frame is not None:
            mask &= indices >= self.start_frame
        if self.end_frame is not None:
            mask &= indices < self.end_frame
        if self.subsample_step > 1:
            mask &= indices % self.subsample_step == 0
        # Temporal filtering is free: it never looks at the frame.
        return indices[mask]


@dataclass
class SpatialFilter(FrameFilter):
    """Spatial filtering: crop/resize to the region of interest.

    Does not prune frames; instead it scales the cost of subsequent object
    detection calls by the cropped area fraction (detectors run faster on
    smaller, squarer inputs).
    """

    roi_x_min: float
    roi_y_min: float
    roi_x_max: float
    roi_y_max: float
    frame_width: float
    frame_height: float

    filter_class = "spatial"
    name = "spatial"

    def __post_init__(self) -> None:
        if self.roi_x_max <= self.roi_x_min or self.roi_y_max <= self.roi_y_min:
            raise ValueError("spatial ROI must have positive area")
        roi_area = (self.roi_x_max - self.roi_x_min) * (self.roi_y_max - self.roi_y_min)
        frame_area = self.frame_width * self.frame_height
        self.detection_cost_scale = max(0.05, min(1.0, roi_area / frame_area))

    def apply(
        self,
        video: SyntheticVideo,
        frame_indices: np.ndarray,
        ledger: RuntimeLedger | None = None,
    ) -> np.ndarray:
        return np.asarray(frame_indices, dtype=np.int64)


@dataclass
class ContentFilter(FrameFilter):
    """Content-based filtering on a frame-level UDF score.

    The threshold is calibrated on the held-out set for no false negatives
    (see :mod:`repro.specialization.calibration`).
    """

    udf_name: str
    threshold: float
    estimated_selectivity: float = 1.0

    filter_class = "content"
    name = "content"

    def apply(
        self,
        video: SyntheticVideo,
        frame_indices: np.ndarray,
        ledger: RuntimeLedger | None = None,
    ) -> np.ndarray:
        indices = np.asarray(frame_indices, dtype=np.int64)
        if indices.size == 0:
            return indices
        return self.apply_batch(FrameBatch(video, indices), ledger).indices

    def apply_batch(
        self, batch: FrameBatch, ledger: RuntimeLedger | None = None
    ) -> FrameBatch:
        if len(batch) == 0:
            return batch
        features = batch.features
        if ledger is not None:
            ledger.charge(StandardCosts.SIMPLE_FILTER, len(batch))
        scores = feature_level_score(features, self.udf_name)
        return batch.select(scores >= self.threshold)


@dataclass
class LabelFilter(FrameFilter):
    """Label-based filtering with a binary specialized NN (NoScope-style)."""

    model: BinaryPresenceModel
    threshold: float
    estimated_selectivity: float = 1.0

    filter_class = "label"
    name = "label"

    def apply(
        self,
        video: SyntheticVideo,
        frame_indices: np.ndarray,
        ledger: RuntimeLedger | None = None,
    ) -> np.ndarray:
        indices = np.asarray(frame_indices, dtype=np.int64)
        if indices.size == 0:
            return indices
        return self.apply_batch(FrameBatch(video, indices), ledger).indices

    def apply_batch(
        self, batch: FrameBatch, ledger: RuntimeLedger | None = None
    ) -> FrameBatch:
        if len(batch) == 0:
            return batch
        scores = self.model.predict_proba_present(batch.features, ledger)
        return batch.select(scores >= self.threshold)
