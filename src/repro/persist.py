"""Crash-safe file persistence shared by every on-disk artifact.

A long-running query service saves its warm state — the shared detection
cache, the statistics catalog — while queries are still being served, and a
killed process must never leave a truncated JSON behind: the next boot would
fail to parse exactly the file that was supposed to make it warm.

:func:`atomic_write_text` is the single home of the write-temp-then-rename
idiom: the payload is written to a temporary file in the *same directory*
(so the final :func:`os.replace` is an atomic rename on every platform),
flushed and fsynced, and only then swapped into place.  A crash at any point
leaves either the old file or the new file, never a mix, and the temporary
file is cleaned up on failure.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temporary file lives next to the target so the final rename cannot
    cross filesystems.  On any failure the temporary file is removed and the
    previous contents of ``path`` (if any) are left untouched.
    """
    _atomic_write(path, text.encode("utf-8"))


def atomic_write_bytes(path: str | Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically (temp file + ``os.replace``).

    The binary twin of :func:`atomic_write_text`, used by artifacts with a
    compact binary format (e.g. the npz detection-cache dump).
    """
    _atomic_write(path, payload)


def _atomic_write(path: str | Path, payload: bytes) -> None:
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
