"""Control variates with specialized-NN auxiliary variables (Section 6.3).

The estimator of interest is the mean of an expensive per-frame statistic
``m`` (the detector's count).  The specialized NN provides a cheap auxiliary
variable ``t`` whose mean ``tau`` and variance can be computed *exactly* over
every frame (it runs at ~10,000 fps).  The control-variate estimator

    m_hat = mean(m) + c * (mean(t) - tau),   c = -Cov(m, t) / Var(t)

is unbiased for any ``c`` and has variance ``(1 - Corr(m, t)^2) * Var(m)``,
so a well-correlated specialized NN reduces the number of expensive detector
samples needed to hit the user's error bound.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.aqp.estimators import (
    clt_half_width,
    epsilon_net_minimum_samples,
    sample_standard_deviation,
)
from repro.aqp.sampling import AdaptiveSamplingConfig, StopPredicate


def optimal_coefficient(m_values: np.ndarray, t_values: np.ndarray) -> float:
    """The variance-minimising control-variate coefficient ``-Cov(m,t)/Var(t)``."""
    m_values = np.asarray(m_values, dtype=np.float64)
    t_values = np.asarray(t_values, dtype=np.float64)
    if m_values.shape[0] != t_values.shape[0]:
        raise ValueError(
            f"length mismatch: {m_values.shape[0]} vs {t_values.shape[0]}"
        )
    if m_values.size < 2:
        return 0.0
    var_t = float(np.var(t_values, ddof=1))
    if var_t < 1e-12:
        return 0.0
    cov = float(np.cov(m_values, t_values, ddof=1)[0, 1])
    return -cov / var_t


@dataclass
class ControlVariateResult:
    """Result of a control-variate estimation run."""

    estimate: float
    plain_estimate: float
    half_width: float
    samples_used: int
    sampled_indices: np.ndarray
    coefficient: float
    correlation: float
    rounds: int
    converged: bool


@dataclass(frozen=True)
class ControlVariateRound:
    """One round of the control-variate loop, for streaming consumers.

    ``done`` marks the final round; only then is ``result`` populated (with
    exactly what :func:`control_variate_estimate` would have returned).
    """

    estimate: float
    half_width: float
    samples_used: int
    correlation: float
    rounds: int
    done: bool
    result: ControlVariateResult | None = None


def control_variate_estimate(
    sample_fn: Callable[[np.ndarray], np.ndarray],
    auxiliary_values: np.ndarray,
    error_tolerance: float,
    confidence: float,
    value_range: float,
    rng: np.random.Generator | None = None,
    config: AdaptiveSamplingConfig | None = None,
    fixed_coefficient: float | None = None,
) -> ControlVariateResult:
    """Estimate the population mean of ``sample_fn`` using a control variate.

    Parameters
    ----------
    sample_fn:
        Maps population indices to the expensive statistic ``m`` (detector
        counts).
    auxiliary_values:
        The cheap statistic ``t`` for *every* item of the population (the
        specialized NN is run over all frames, so ``tau`` and ``Var(t)`` are
        exact).
    error_tolerance, confidence, value_range:
        As in :func:`repro.aqp.sampling.adaptive_sample`.
    fixed_coefficient:
        When given, use this coefficient instead of estimating the optimal one
        each round (used by the ablation benchmark).
    """
    for round_ in control_variate_stream(
        sample_fn,
        auxiliary_values,
        error_tolerance,
        confidence,
        value_range,
        rng=rng,
        config=config,
        fixed_coefficient=fixed_coefficient,
    ):
        if round_.done:
            assert round_.result is not None
            return round_.result
    raise RuntimeError("control-variate stream ended without a final round")


def control_variate_stream(
    sample_fn: Callable[[np.ndarray], np.ndarray],
    auxiliary_values: np.ndarray,
    error_tolerance: float,
    confidence: float,
    value_range: float,
    rng: np.random.Generator | None = None,
    config: AdaptiveSamplingConfig | None = None,
    fixed_coefficient: float | None = None,
    should_stop: StopPredicate | None = None,
    announce: Callable[[np.ndarray], None] | None = None,
) -> Iterator[ControlVariateRound]:
    """Control-variate estimation as a stream of per-round updates.

    The generator core behind :func:`control_variate_estimate` (which drains
    it): identical sampling order, RNG stream and termination rule, but
    yielding the variance-reduced running estimate and CI half-width after
    every round.  ``should_stop`` is an external termination predicate
    checked after the built-in rules each round; ``announce`` receives the
    sampling order when drawn (the parallel prefetch hook, exactly as in
    :func:`repro.aqp.sampling.adaptive_sample_stream`).
    """
    auxiliary_values = np.asarray(auxiliary_values, dtype=np.float64)
    population_size = auxiliary_values.shape[0]
    if population_size < 1:
        raise ValueError("auxiliary_values must cover a non-empty population")
    if error_tolerance <= 0:
        raise ValueError(f"error_tolerance must be positive, got {error_tolerance}")
    # A deterministic default keeps results a pure function of the inputs
    # even when the caller supplies no generator (RPR001).
    rng = rng or np.random.default_rng(0)
    config = config or AdaptiveSamplingConfig()
    max_samples = min(config.max_samples or population_size, population_size)

    tau = float(np.mean(auxiliary_values))
    initial = min(
        epsilon_net_minimum_samples(value_range, error_tolerance), max_samples
    )
    batch = max(config.min_batch, int(initial * config.growth_fraction))

    permutation = rng.permutation(population_size)
    if announce is not None:
        announce(permutation[:max_samples])
    taken = initial
    m_values = np.asarray(sample_fn(permutation[:taken]), dtype=np.float64)
    rounds = 1
    converged = False
    coefficient = 0.0
    correlation = 0.0

    while True:
        t_sample = auxiliary_values[permutation[:taken]]
        if fixed_coefficient is not None:
            coefficient = fixed_coefficient
        else:
            coefficient = optimal_coefficient(m_values, t_sample)
        adjusted = m_values + coefficient * (t_sample - tau)
        std = sample_standard_deviation(adjusted)
        if m_values.size >= 2 and np.std(m_values) > 1e-12 and np.std(t_sample) > 1e-12:
            correlation = float(np.corrcoef(m_values, t_sample)[0, 1])
        half_width = clt_half_width(std, taken, confidence, population_size)
        if half_width < error_tolerance:
            converged = True
        done = (
            converged
            or taken >= max_samples
            or (should_stop is not None and should_stop(taken, half_width))
        )
        if done:
            result = ControlVariateResult(
                estimate=float(np.mean(adjusted)),
                plain_estimate=float(np.mean(m_values)),
                half_width=float(
                    clt_half_width(
                        sample_standard_deviation(adjusted),
                        taken,
                        confidence,
                        population_size,
                    )
                ),
                samples_used=taken,
                sampled_indices=permutation[:taken].copy(),
                coefficient=coefficient,
                correlation=correlation,
                rounds=rounds,
                converged=converged,
            )
            yield ControlVariateRound(
                estimate=result.estimate,
                half_width=result.half_width,
                samples_used=taken,
                correlation=correlation,
                rounds=rounds,
                done=True,
                result=result,
            )
            return
        yield ControlVariateRound(
            estimate=float(np.mean(adjusted)),
            half_width=float(half_width),
            samples_used=taken,
            correlation=correlation,
            rounds=rounds,
            done=False,
        )
        next_taken = min(taken + batch, max_samples)
        new_values = np.asarray(
            sample_fn(permutation[taken:next_taken]), dtype=np.float64
        )
        m_values = np.concatenate([m_values, new_values])
        taken = next_taken
        rounds += 1
