"""Adaptive sampling with an epsilon-net start and a CLT stopping rule.

This is the "traditional AQP" execution mode of Section 6.1: sample frames
uniformly without replacement, starting from the epsilon-net minimum
``K / epsilon`` samples, linearly increasing the sample size each round, and
terminating when the CLT bound certifies the user's absolute error tolerance
at the requested confidence.  Termination is driven by the *sample variance*,
which is exactly what lets variance-reduction methods (control variates)
terminate earlier.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.aqp.estimators import (
    clt_half_width,
    epsilon_net_minimum_samples,
    sample_standard_deviation,
)

#: External stop predicate checked once per round: ``(samples_used,
#: half_width) -> bool``.  Used to thread user stop conditions (CI-width
#: targets, detector budgets, cancellation) into the sampling loop.
StopPredicate = Callable[[int, float], bool]


@dataclass(frozen=True)
class AdaptiveSamplingConfig:
    """Tuning knobs of the adaptive sampling loop."""

    #: Fraction of the initial (epsilon-net) sample added per round.
    growth_fraction: float = 0.5
    #: Smallest number of samples added per round.
    min_batch: int = 50
    #: Hard cap on total samples (defaults to the population size).
    max_samples: int | None = None

    def __post_init__(self) -> None:
        if self.growth_fraction <= 0:
            raise ValueError(
                f"growth_fraction must be positive, got {self.growth_fraction}"
            )
        if self.min_batch < 1:
            raise ValueError(f"min_batch must be >= 1, got {self.min_batch}")


@dataclass
class SamplingResult:
    """Result of an adaptive sampling run."""

    estimate: float
    half_width: float
    samples_used: int
    sampled_indices: np.ndarray
    sampled_values: np.ndarray
    rounds: int
    converged: bool


@dataclass(frozen=True)
class SamplingRound:
    """One round of the adaptive sampling loop, as seen by a streaming consumer.

    ``done`` marks the final round; only then is ``result`` populated (with
    exactly what :func:`adaptive_sample` would have returned).
    """

    estimate: float
    half_width: float
    samples_used: int
    rounds: int
    done: bool
    result: SamplingResult | None = None


def adaptive_sample(
    sample_fn: Callable[[np.ndarray], np.ndarray],
    population_size: int,
    error_tolerance: float,
    confidence: float,
    value_range: float,
    rng: np.random.Generator | None = None,
    config: AdaptiveSamplingConfig | None = None,
) -> SamplingResult:
    """Estimate the population mean of ``sample_fn`` to within a tolerance.

    Parameters
    ----------
    sample_fn:
        Maps an array of population indices (frame indices) to their values
        (e.g. the detector's per-frame count).  This is the expensive call the
        procedure minimises.
    population_size:
        Number of items (frames) in the population.
    error_tolerance:
        User's absolute error bound (``ERROR WITHIN``).
    confidence:
        Confidence level for the CLT bound (``AT CONFIDENCE``).
    value_range:
        ``K``, the range of the estimated quantity, for the epsilon-net
        minimum sample size.
    rng:
        Source of randomness; defaults to a fresh generator.
    config:
        Loop tuning knobs.

    Returns
    -------
    SamplingResult
        The estimate, the final CLT half width, the indices sampled and
        whether the loop converged before exhausting the population.
    """
    for round_ in adaptive_sample_stream(
        sample_fn,
        population_size,
        error_tolerance,
        confidence,
        value_range,
        rng=rng,
        config=config,
    ):
        if round_.done:
            assert round_.result is not None
            return round_.result
    raise RuntimeError("adaptive sampling stream ended without a final round")


def adaptive_sample_stream(
    sample_fn: Callable[[np.ndarray], np.ndarray],
    population_size: int,
    error_tolerance: float,
    confidence: float,
    value_range: float,
    rng: np.random.Generator | None = None,
    config: AdaptiveSamplingConfig | None = None,
    should_stop: StopPredicate | None = None,
    announce: Callable[[np.ndarray], None] | None = None,
) -> Iterator[SamplingRound]:
    """Adaptive sampling as a stream: one :class:`SamplingRound` per round.

    The generator core behind :func:`adaptive_sample` (which drains it):
    identical sampling order, RNG stream and termination rule, but yielding
    the running estimate and CI half-width after every round so callers can
    watch the interval shrink.  ``should_stop`` is an external termination
    predicate checked after the built-in rules each round; when it fires the
    loop finalises early with ``converged`` reflecting only the CLT bound.

    ``announce`` receives the full sampling order (the permutation prefix
    the loop could ever consume) the moment it is drawn — the shard-aware
    hook that lets parallel executors prefetch ``sample_fn``'s detector work
    ahead of the rounds without changing a single draw.
    """
    if population_size < 1:
        raise ValueError(f"population_size must be >= 1, got {population_size}")
    if error_tolerance <= 0:
        raise ValueError(f"error_tolerance must be positive, got {error_tolerance}")
    # A deterministic default keeps results a pure function of the inputs
    # even when the caller supplies no generator (RPR001).
    rng = rng or np.random.default_rng(0)
    config = config or AdaptiveSamplingConfig()
    max_samples = min(config.max_samples or population_size, population_size)

    initial = min(
        epsilon_net_minimum_samples(value_range, error_tolerance), max_samples
    )
    batch = max(config.min_batch, int(initial * config.growth_fraction))

    # Sampling without replacement: a random permutation consumed prefix-first.
    permutation = rng.permutation(population_size)
    if announce is not None:
        announce(permutation[:max_samples])
    taken = initial
    values = np.asarray(sample_fn(permutation[:taken]), dtype=np.float64)
    rounds = 1
    converged = False
    while True:
        std = sample_standard_deviation(values)
        half_width = clt_half_width(std, taken, confidence, population_size)
        if half_width < error_tolerance:
            converged = True
        done = (
            converged
            or taken >= max_samples
            or (should_stop is not None and should_stop(taken, half_width))
        )
        if done:
            result = SamplingResult(
                estimate=float(np.mean(values)),
                half_width=float(
                    clt_half_width(
                        sample_standard_deviation(values),
                        taken,
                        confidence,
                        population_size,
                    )
                ),
                samples_used=taken,
                sampled_indices=permutation[:taken].copy(),
                sampled_values=values,
                rounds=rounds,
                converged=converged,
            )
            yield SamplingRound(
                estimate=result.estimate,
                half_width=result.half_width,
                samples_used=taken,
                rounds=rounds,
                done=True,
                result=result,
            )
            return
        yield SamplingRound(
            estimate=float(np.mean(values)),
            half_width=float(half_width),
            samples_used=taken,
            rounds=rounds,
            done=False,
        )
        next_taken = min(taken + batch, max_samples)
        new_indices = permutation[taken:next_taken]
        new_values = np.asarray(sample_fn(new_indices), dtype=np.float64)
        values = np.concatenate([values, new_values])
        taken = next_taken
        rounds += 1
