"""Adaptive sampling with an epsilon-net start and a CLT stopping rule.

This is the "traditional AQP" execution mode of Section 6.1: sample frames
uniformly without replacement, starting from the epsilon-net minimum
``K / epsilon`` samples, linearly increasing the sample size each round, and
terminating when the CLT bound certifies the user's absolute error tolerance
at the requested confidence.  Termination is driven by the *sample variance*,
which is exactly what lets variance-reduction methods (control variates)
terminate earlier.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.aqp.estimators import (
    clt_half_width,
    epsilon_net_minimum_samples,
    sample_standard_deviation,
)


@dataclass(frozen=True)
class AdaptiveSamplingConfig:
    """Tuning knobs of the adaptive sampling loop."""

    #: Fraction of the initial (epsilon-net) sample added per round.
    growth_fraction: float = 0.5
    #: Smallest number of samples added per round.
    min_batch: int = 50
    #: Hard cap on total samples (defaults to the population size).
    max_samples: int | None = None

    def __post_init__(self) -> None:
        if self.growth_fraction <= 0:
            raise ValueError(
                f"growth_fraction must be positive, got {self.growth_fraction}"
            )
        if self.min_batch < 1:
            raise ValueError(f"min_batch must be >= 1, got {self.min_batch}")


@dataclass
class SamplingResult:
    """Result of an adaptive sampling run."""

    estimate: float
    half_width: float
    samples_used: int
    sampled_indices: np.ndarray
    sampled_values: np.ndarray
    rounds: int
    converged: bool


def adaptive_sample(
    sample_fn: Callable[[np.ndarray], np.ndarray],
    population_size: int,
    error_tolerance: float,
    confidence: float,
    value_range: float,
    rng: np.random.Generator | None = None,
    config: AdaptiveSamplingConfig | None = None,
) -> SamplingResult:
    """Estimate the population mean of ``sample_fn`` to within a tolerance.

    Parameters
    ----------
    sample_fn:
        Maps an array of population indices (frame indices) to their values
        (e.g. the detector's per-frame count).  This is the expensive call the
        procedure minimises.
    population_size:
        Number of items (frames) in the population.
    error_tolerance:
        User's absolute error bound (``ERROR WITHIN``).
    confidence:
        Confidence level for the CLT bound (``AT CONFIDENCE``).
    value_range:
        ``K``, the range of the estimated quantity, for the epsilon-net
        minimum sample size.
    rng:
        Source of randomness; defaults to a fresh generator.
    config:
        Loop tuning knobs.

    Returns
    -------
    SamplingResult
        The estimate, the final CLT half width, the indices sampled and
        whether the loop converged before exhausting the population.
    """
    if population_size < 1:
        raise ValueError(f"population_size must be >= 1, got {population_size}")
    if error_tolerance <= 0:
        raise ValueError(f"error_tolerance must be positive, got {error_tolerance}")
    rng = rng or np.random.default_rng()
    config = config or AdaptiveSamplingConfig()
    max_samples = min(config.max_samples or population_size, population_size)

    initial = min(
        epsilon_net_minimum_samples(value_range, error_tolerance), max_samples
    )
    batch = max(config.min_batch, int(initial * config.growth_fraction))

    # Sampling without replacement: a random permutation consumed prefix-first.
    permutation = rng.permutation(population_size)
    taken = initial
    values = np.asarray(sample_fn(permutation[:taken]), dtype=np.float64)
    rounds = 1
    converged = False
    while True:
        std = sample_standard_deviation(values)
        half_width = clt_half_width(std, taken, confidence, population_size)
        if half_width < error_tolerance:
            converged = True
            break
        if taken >= max_samples:
            break
        next_taken = min(taken + batch, max_samples)
        new_indices = permutation[taken:next_taken]
        new_values = np.asarray(sample_fn(new_indices), dtype=np.float64)
        values = np.concatenate([values, new_values])
        taken = next_taken
        rounds += 1

    return SamplingResult(
        estimate=float(np.mean(values)),
        half_width=float(clt_half_width(
            sample_standard_deviation(values), taken, confidence, population_size
        )),
        samples_used=taken,
        sampled_indices=permutation[:taken].copy(),
        sampled_values=values,
        rounds=rounds,
        converged=converged,
    )
