"""Statistical estimators shared by the sampling procedures.

The stopping rule of Section 6.1 terminates "when the CLT bound gives that the
error rate is satisfied at the given confidence level", using the percent
point function of the normal distribution and the finite sample correction for
the sample standard deviation.
"""

from __future__ import annotations

import numpy as np
from scipy import stats


def sample_standard_deviation(values: np.ndarray) -> float:
    """Sample standard deviation with Bessel's correction.

    Returns zero for samples with fewer than two elements (the stopping rule
    can never fire on such small samples because of the epsilon-net minimum).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size < 2:
        return 0.0
    return float(np.std(values, ddof=1))


def finite_population_correction(sample_size: int, population_size: int) -> float:
    """Finite population correction factor for sampling without replacement."""
    if population_size <= 1:
        return 0.0
    if sample_size >= population_size:
        return 0.0
    return float(np.sqrt((population_size - sample_size) / (population_size - 1)))


def clt_half_width(
    std: float,
    sample_size: int,
    confidence: float,
    population_size: int | None = None,
) -> float:
    """Half width of the CLT confidence interval for a sample mean.

    ``Q(1 - delta/2) * sigma_hat / sqrt(N)``, optionally shrunk by the finite
    population correction when the population size is known.
    """
    if sample_size < 1:
        return float("inf")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    z = float(stats.norm.ppf(1.0 - (1.0 - confidence) / 2.0))
    half_width = z * std / np.sqrt(sample_size)
    if population_size is not None:
        half_width *= finite_population_correction(sample_size, population_size)
    return float(half_width)


def epsilon_net_minimum_samples(value_range: float, error_tolerance: float) -> int:
    """Minimum sample size ``K / epsilon`` from the paper's epsilon-net argument.

    ``K`` is the range of the estimated quantity (e.g. the maximum per-frame
    count plus one) and ``epsilon`` the user's absolute error tolerance.
    """
    if error_tolerance <= 0:
        raise ValueError(f"error_tolerance must be positive, got {error_tolerance}")
    if value_range <= 0:
        return 1
    return max(1, int(np.ceil(value_range / error_tolerance)))
