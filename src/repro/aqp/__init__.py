"""Approximate query processing substrate.

Implements the sampling machinery of Section 6: an adaptive sampling procedure
with an epsilon-net minimum sample size and a CLT stopping rule, and the
control-variates variance-reduction estimator that uses specialized-NN outputs
as the cheap auxiliary variable.
"""

from repro.aqp.estimators import (
    clt_half_width,
    finite_population_correction,
    sample_standard_deviation,
)
from repro.aqp.sampling import AdaptiveSamplingConfig, SamplingResult, adaptive_sample
from repro.aqp.control_variates import (
    ControlVariateResult,
    control_variate_estimate,
    optimal_coefficient,
)

__all__ = [
    "clt_half_width",
    "finite_population_correction",
    "sample_standard_deviation",
    "AdaptiveSamplingConfig",
    "SamplingResult",
    "adaptive_sample",
    "ControlVariateResult",
    "control_variate_estimate",
    "optimal_coefficient",
]
