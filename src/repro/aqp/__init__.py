"""Approximate query processing substrate.

Implements the sampling machinery of Section 6: an adaptive sampling procedure
with an epsilon-net minimum sample size and a CLT stopping rule, and the
control-variates variance-reduction estimator that uses specialized-NN outputs
as the cheap auxiliary variable.

Both estimators are generators at their core (``adaptive_sample_stream`` /
``control_variate_stream``): they yield one round object per sampling round
so streaming consumers can watch the confidence interval shrink, and the
blocking functions simply drain them.
"""

from repro.aqp.estimators import (
    clt_half_width,
    finite_population_correction,
    sample_standard_deviation,
)
from repro.aqp.sampling import (
    AdaptiveSamplingConfig,
    SamplingResult,
    SamplingRound,
    adaptive_sample,
    adaptive_sample_stream,
)
from repro.aqp.control_variates import (
    ControlVariateResult,
    ControlVariateRound,
    control_variate_estimate,
    control_variate_stream,
    optimal_coefficient,
)

__all__ = [
    "clt_half_width",
    "finite_population_correction",
    "sample_standard_deviation",
    "AdaptiveSamplingConfig",
    "SamplingResult",
    "SamplingRound",
    "adaptive_sample",
    "adaptive_sample_stream",
    "ControlVariateResult",
    "ControlVariateRound",
    "control_variate_estimate",
    "control_variate_stream",
    "optimal_coefficient",
]
