"""UDF registry.

The selection optimizer needs to know two things about a UDF beyond its
callable: whether it returns a continuous value (only continuous UDFs can be
turned into frame-level filters, Section 8.1) and how to evaluate it at the
*frame* level rather than the object level (so it can be used to discard whole
frames before detection).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import UnknownUDFError


@dataclass(frozen=True)
class UDF:
    """A registered user-defined function.

    Parameters
    ----------
    name:
        Name used in FrameQL queries.
    object_fn:
        Callable evaluated per object; receives a
        :class:`~repro.frameql.schema.FrameRecord`-like object exposing
        ``color`` and ``mask``.
    frame_fn:
        Optional callable evaluated per frame (receives a
        :class:`~repro.video.frame.Frame`); used for frame-level filtering.
        ``None`` when the UDF is meaningless at the frame level.
    continuous:
        Whether the UDF returns a continuous value.  Only continuous UDFs can
        be inferred as content filters.
    """

    name: str
    object_fn: Callable
    frame_fn: Callable | None = None
    continuous: bool = True

    def __call__(self, record):
        return self.object_fn(record)


class UDFRegistry:
    """Maps UDF names to their implementations."""

    def __init__(self) -> None:
        self._udfs: dict[str, UDF] = {}

    def register(self, udf: UDF) -> None:
        """Register (or replace) a UDF."""
        self._udfs[udf.name.lower()] = udf

    def get(self, name: str) -> UDF:
        """Look up a UDF by name (case-insensitive)."""
        try:
            return self._udfs[name.lower()]
        except KeyError as exc:
            available = ", ".join(sorted(self._udfs)) or "<none>"
            raise UnknownUDFError(
                f"UDF {name!r} is not registered (available: {available})"
            ) from exc

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._udfs

    def names(self) -> list[str]:
        """All registered UDF names."""
        return sorted(self._udfs)


def default_udf_registry() -> UDFRegistry:
    """Registry pre-populated with the built-in UDFs used in the paper."""
    # Imported here to avoid a circular import at module load time.
    from repro.udf import builtin

    registry = UDFRegistry()
    for udf in builtin.BUILTIN_UDFS:
        registry.register(udf)
    return registry
