"""Built-in UDFs.

``redness`` is the paper's running example (Figure 3c): a measure of how red
the object's pixels are.  In the reproduction the "pixels" of an object are
its observed colour (plus detector noise), so the UDFs operate on that colour
triple.  Frame-level variants average over the objects present (weighted by
area), matching the paper's observation that a UDF which "returns the average
of the red-channel values" is meaningful at the frame level and therefore
usable as a filter.
"""

from __future__ import annotations

from repro.udf.registry import UDF
from repro.video.frame import Frame


def _record_color(record) -> tuple[float, float, float]:
    color = getattr(record, "color", None)
    if color is None:
        return (0.0, 0.0, 0.0)
    return color


def redness(record) -> float:
    """Red-channel dominance of an object's content, roughly in ``[0, 100]``.

    High for red objects (red channel much larger than the green/blue mean).
    """
    r, g, b = _record_color(record)
    return (r - (g + b) / 2.0) / 2.55


def blueness(record) -> float:
    """Blue-channel dominance of an object's content, roughly in ``[0, 100]``."""
    r, g, b = _record_color(record)
    return (b - (r + g) / 2.0) / 2.55


def brightness(record) -> float:
    """Mean channel intensity of an object's content, in ``[0, 255]``."""
    r, g, b = _record_color(record)
    return (r + g + b) / 3.0


def area(record) -> float:
    """Area of the object's mask in square pixels."""
    mask = getattr(record, "mask", None) or getattr(record, "box", None)
    if mask is None:
        return 0.0
    return mask.area


def _frame_color_average(frame: Frame, channel_fn) -> float:
    """Area-weighted average of a per-object colour statistic over a frame."""
    total_weight = 0.0
    total = 0.0
    for obj in frame.objects:
        weight = max(obj.box.area, 1.0)
        total += weight * channel_fn(obj)
        total_weight += weight
    if total_weight == 0.0:
        return 0.0
    return total / total_weight


def frame_redness(frame: Frame) -> float:
    """Frame-level redness: area-weighted mean over the objects present."""
    return _frame_color_average(
        frame, lambda obj: (obj.color[0] - (obj.color[1] + obj.color[2]) / 2.0) / 2.55
    )


def frame_blueness(frame: Frame) -> float:
    """Frame-level blueness: area-weighted mean over the objects present."""
    return _frame_color_average(
        frame, lambda obj: (obj.color[2] - (obj.color[0] + obj.color[1]) / 2.0) / 2.55
    )


def frame_brightness(frame: Frame) -> float:
    """Frame-level brightness: area-weighted mean over the objects present."""
    return _frame_color_average(frame, lambda obj: sum(obj.color) / 3.0)


#: UDFs registered by :func:`repro.udf.registry.default_udf_registry`.
BUILTIN_UDFS = (
    UDF(name="redness", object_fn=redness, frame_fn=frame_redness, continuous=True),
    UDF(name="blueness", object_fn=blueness, frame_fn=frame_blueness, continuous=True),
    UDF(
        name="brightness",
        object_fn=brightness,
        frame_fn=frame_brightness,
        continuous=True,
    ),
    UDF(name="area", object_fn=area, frame_fn=None, continuous=True),
)
