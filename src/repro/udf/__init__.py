"""User-defined functions over box contents (Section 3).

UDFs accept an object's content (in this reproduction, its observed colour and
geometry) and return a value used in predicates, e.g. ``redness(content) >=
17.5``.  The registry lets users add their own UDFs, as the paper's
configurability section describes.
"""

from repro.udf.registry import UDF, UDFRegistry, default_udf_registry
from repro.udf.builtin import area, blueness, brightness, redness

__all__ = [
    "UDF",
    "UDFRegistry",
    "default_udf_registry",
    "redness",
    "blueness",
    "brightness",
    "area",
]
