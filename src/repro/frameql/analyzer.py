"""Semantic analysis of parsed FrameQL queries.

The analyzer validates a parsed :class:`~repro.frameql.ast.Query` against the
FrameQL schema and classifies it into one of the query classes the optimizer
knows how to execute (Section 5):

* **aggregate** — ``SELECT FCOUNT(*)/COUNT(*) ...`` possibly with an error
  tolerance and confidence;
* **scrubbing** — ``SELECT timestamp ... GROUP BY timestamp HAVING
  SUM(class='bus') >= 1 AND ... LIMIT k GAP g``;
* **selection** — content-based selection such as the red-bus query of
  Figure 3c, including UDF predicates, spatial constraints and per-track
  duration constraints;
* **exact** — anything else, which falls back to exhaustive detection.

The output is a typed query specification consumed by the rule-based
optimizer; nothing downstream ever re-inspects the AST.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import FrameQLAnalysisError
from repro.frameql.ast import (
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
    Query,
    Star,
    conjuncts,
    walk,
)
from repro.frameql.schema import is_valid_column

_AGGREGATE_FUNCTIONS = {"FCOUNT", "COUNT", "SUM", "AVG", "MIN", "MAX"}
_FLIPPED_OPS = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
_SPATIAL_FUNCTIONS = {"xmin", "xmax", "ymin", "ymax"}


class QueryKind(enum.Enum):
    """The query classes the optimizer distinguishes."""

    AGGREGATE = "aggregate"
    SCRUBBING = "scrubbing"
    SELECTION = "selection"
    EXACT = "exact"


@dataclass(frozen=True)
class UdfPredicate:
    """A predicate of the form ``udf(column) <op> value``."""

    udf_name: str
    column: str
    op: str
    value: float | str


@dataclass(frozen=True)
class SpatialConstraint:
    """A constraint on the mask's extent, e.g. ``xmax(mask) < 720``."""

    axis: str  # "xmin", "xmax", "ymin" or "ymax"
    op: str
    value: float


@dataclass
class BaseQuerySpec:
    """Fields common to every analyzed query."""

    video: str
    kind: QueryKind
    raw_query: Query

    def referenced_classes(self) -> frozenset[str]:
        """Object classes whose statistics the optimizer needs for this query.

        Drives statistics-catalog lookups in the logical plan and the cost
        model; the base query shape references none.
        """
        return frozenset()


@dataclass
class AggregateQuerySpec(BaseQuerySpec):
    """An aggregation query (Section 6)."""

    aggregate: str = "fcount"  # "fcount", "count", "count_distinct" or "avg"
    object_class: str | None = None
    error_tolerance: float | None = None
    confidence: float = 0.95
    udf_predicates: list[UdfPredicate] = field(default_factory=list)

    def referenced_classes(self) -> frozenset[str]:
        if self.object_class is None:
            return frozenset()
        return frozenset({self.object_class})


@dataclass
class ScrubbingQuerySpec(BaseQuerySpec):
    """A cardinality-limited scrubbing query (Section 7)."""

    min_counts: dict[str, int] = field(default_factory=dict)
    limit: int = 10
    gap: int = 0

    def referenced_classes(self) -> frozenset[str]:
        return frozenset(self.min_counts)


@dataclass
class SelectionQuerySpec(BaseQuerySpec):
    """A content-based selection query (Section 8)."""

    object_class: str | None = None
    udf_predicates: list[UdfPredicate] = field(default_factory=list)
    spatial_constraints: list[SpatialConstraint] = field(default_factory=list)
    min_area: float | None = None
    max_area: float | None = None
    min_track_frames: int | None = None
    time_range: tuple[float | None, float | None] = (None, None)
    fnr_within: float | None = None
    fpr_within: float | None = None
    select_columns: list[str] = field(default_factory=list)
    select_star: bool = False

    def referenced_classes(self) -> frozenset[str]:
        if self.object_class is None:
            return frozenset()
        return frozenset({self.object_class})


@dataclass
class ExactQuerySpec(BaseQuerySpec):
    """A query the optimizer cannot accelerate; runs exhaustive detection."""

    reason: str = ""


QuerySpec = AggregateQuerySpec | ScrubbingQuerySpec | SelectionQuerySpec | ExactQuerySpec


# -- helpers -------------------------------------------------------------------


def _validate_columns(query: Query) -> None:
    """Check that every plain column reference names a schema column."""
    expressions: list[Expression] = [item.expression for item in query.select]
    if query.where is not None:
        expressions.append(query.where)
    if query.having is not None:
        expressions.append(query.having)
    expressions.extend(query.group_by)
    for expression in expressions:
        for node in walk(expression):
            if isinstance(node, ColumnRef) and not is_valid_column(node.name):
                raise FrameQLAnalysisError(
                    f"unknown column {node.name!r}; valid columns are the "
                    "FrameQL schema fields (timestamp, class, mask, trackid, "
                    "content, features)"
                )


def _normalize_comparison(expr: BinaryOp) -> BinaryOp:
    """Rewrite ``literal <op> expr`` as ``expr <flipped-op> literal``."""
    if isinstance(expr.left, Literal) and not isinstance(expr.right, Literal):
        return BinaryOp(_FLIPPED_OPS[expr.op], expr.right, expr.left)
    return expr


def _literal_value(expression: Expression) -> float | str:
    if not isinstance(expression, Literal):
        raise FrameQLAnalysisError(
            f"expected a literal value, found {expression}"
        )
    return expression.value


def _is_aggregate_call(expression: Expression) -> bool:
    return (
        isinstance(expression, FunctionCall)
        and expression.name.upper() in _AGGREGATE_FUNCTIONS
    )


# -- WHERE clause extraction ------------------------------------------------------


@dataclass
class _WhereFacts:
    object_class: str | None = None
    udf_predicates: list[UdfPredicate] = field(default_factory=list)
    spatial_constraints: list[SpatialConstraint] = field(default_factory=list)
    min_area: float | None = None
    max_area: float | None = None
    time_min: float | None = None
    time_max: float | None = None


def _extract_where_facts(where: Expression | None) -> _WhereFacts:
    facts = _WhereFacts()
    for predicate in conjuncts(where):
        if not isinstance(predicate, BinaryOp):
            raise FrameQLAnalysisError(
                f"unsupported WHERE predicate {predicate}; expected comparisons "
                "joined by AND"
            )
        if predicate.op in ("AND", "OR"):
            raise FrameQLAnalysisError(
                "OR in the WHERE clause is not supported by the optimizer"
            )
        predicate = _normalize_comparison(predicate)
        left, op, right = predicate.left, predicate.op, predicate.right

        if isinstance(left, ColumnRef) and left.name == "class" and op == "=":
            facts.object_class = str(_literal_value(right))
            continue
        if isinstance(left, ColumnRef) and left.name == "timestamp":
            value = float(_literal_value(right))
            if op in (">", ">="):
                facts.time_min = value
            elif op in ("<", "<="):
                facts.time_max = value
            else:
                raise FrameQLAnalysisError(
                    f"unsupported timestamp predicate operator {op!r}"
                )
            continue
        if isinstance(left, FunctionCall):
            name = left.name.lower()
            if len(left.args) != 1 or not isinstance(left.args[0], ColumnRef):
                raise FrameQLAnalysisError(
                    f"UDF predicates must take a single column argument: {left}"
                )
            column = left.args[0].name
            value = _literal_value(right)
            if name == "area" and column == "mask":
                if op in (">", ">="):
                    facts.min_area = float(value)
                elif op in ("<", "<="):
                    facts.max_area = float(value)
                else:
                    raise FrameQLAnalysisError(
                        f"unsupported area predicate operator {op!r}"
                    )
                continue
            if name in _SPATIAL_FUNCTIONS and column == "mask":
                facts.spatial_constraints.append(
                    SpatialConstraint(axis=name, op=op, value=float(value))
                )
                continue
            facts.udf_predicates.append(
                UdfPredicate(udf_name=name, column=column, op=op, value=value)
            )
            continue
        raise FrameQLAnalysisError(f"unsupported WHERE predicate {predicate}")
    return facts


# -- HAVING clause extraction (scrubbing & track duration) -------------------------


def _extract_min_counts(having: Expression | None) -> dict[str, int]:
    """Extract ``SUM(class='bus') >= 1`` style per-class count thresholds."""
    min_counts: dict[str, int] = {}
    for predicate in conjuncts(having):
        if not isinstance(predicate, BinaryOp):
            raise FrameQLAnalysisError(f"unsupported HAVING predicate {predicate}")
        predicate = _normalize_comparison(predicate)
        left, op, right = predicate.left, predicate.op, predicate.right
        if not isinstance(left, FunctionCall) or left.name.upper() not in ("SUM", "COUNT"):
            raise FrameQLAnalysisError(
                f"scrubbing HAVING predicates must be SUM/COUNT comparisons: {predicate}"
            )
        threshold = float(_literal_value(right))
        if op == ">=":
            min_count = int(threshold)
        elif op == ">":
            min_count = int(threshold) + 1
        elif op == "=":
            min_count = int(threshold)
        else:
            raise FrameQLAnalysisError(
                f"unsupported HAVING operator {op!r} for count predicates"
            )
        if len(left.args) != 1:
            raise FrameQLAnalysisError(
                f"expected a single argument in {left}"
            )
        arg = left.args[0]
        if isinstance(arg, BinaryOp) and arg.op == "=":
            inner = _normalize_comparison(arg)
            if isinstance(inner.left, ColumnRef) and inner.left.name == "class":
                object_class = str(_literal_value(inner.right))
                min_counts[object_class] = max(min_counts.get(object_class, 0), min_count)
                continue
        raise FrameQLAnalysisError(
            f"unsupported count predicate argument {arg}; expected class='<name>'"
        )
    return min_counts


def _extract_track_duration(having: Expression | None) -> int | None:
    """Extract a ``COUNT(*) > 15`` per-track duration constraint."""
    if having is None:
        return None
    duration: int | None = None
    for predicate in conjuncts(having):
        if not isinstance(predicate, BinaryOp):
            raise FrameQLAnalysisError(f"unsupported HAVING predicate {predicate}")
        predicate = _normalize_comparison(predicate)
        left, op, right = predicate.left, predicate.op, predicate.right
        if (
            isinstance(left, FunctionCall)
            and left.name.upper() == "COUNT"
            and len(left.args) == 1
            and isinstance(left.args[0], Star)
        ):
            threshold = float(_literal_value(right))
            if op == ">":
                duration = int(threshold) + 1
            elif op == ">=":
                duration = int(threshold)
            else:
                raise FrameQLAnalysisError(
                    f"unsupported track-duration operator {op!r}"
                )
            continue
        raise FrameQLAnalysisError(
            f"unsupported HAVING predicate for trackid grouping: {predicate}"
        )
    return duration


# -- classification -----------------------------------------------------------------


def _classify_aggregate(query: Query, facts: _WhereFacts) -> AggregateQuerySpec | None:
    if len(query.select) != 1:
        return None
    expression = query.select[0].expression
    if not _is_aggregate_call(expression):
        return None
    if query.group_by:
        return None
    call = expression
    name = call.name.upper()
    if name == "FCOUNT":
        aggregate = "fcount"
    elif name == "COUNT" and call.distinct:
        aggregate = "count_distinct"
    elif name == "COUNT":
        aggregate = "count"
    elif name == "AVG":
        aggregate = "avg"
    else:
        return None
    return AggregateQuerySpec(
        video=query.video,
        kind=QueryKind.AGGREGATE,
        raw_query=query,
        aggregate=aggregate,
        object_class=facts.object_class,
        error_tolerance=query.error_within,
        confidence=query.confidence if query.confidence is not None else 0.95,
        udf_predicates=facts.udf_predicates,
    )


def _classify_scrubbing(query: Query, facts: _WhereFacts) -> ScrubbingQuerySpec | None:
    group_columns = [c.name for c in query.group_by]
    if group_columns != ["timestamp"]:
        return None
    if len(query.select) != 1:
        return None
    selected = query.select[0].expression
    if not (isinstance(selected, ColumnRef) and selected.name == "timestamp"):
        return None
    min_counts = _extract_min_counts(query.having)
    if facts.object_class is not None and facts.object_class not in min_counts:
        min_counts[facts.object_class] = max(min_counts.get(facts.object_class, 0), 1)
    if not min_counts:
        raise FrameQLAnalysisError(
            "scrubbing queries need at least one class-count predicate in HAVING"
        )
    return ScrubbingQuerySpec(
        video=query.video,
        kind=QueryKind.SCRUBBING,
        raw_query=query,
        min_counts=min_counts,
        limit=query.limit if query.limit is not None else 10,
        gap=query.gap or 0,
    )


def _classify_selection(query: Query, facts: _WhereFacts) -> SelectionQuerySpec | None:
    group_columns = [c.name for c in query.group_by]
    if group_columns not in ([], ["trackid"]):
        return None
    select_star = any(isinstance(item.expression, Star) for item in query.select)
    select_columns: list[str] = []
    for item in query.select:
        if isinstance(item.expression, Star):
            continue
        if isinstance(item.expression, ColumnRef):
            select_columns.append(item.expression.name)
        else:
            return None
    min_track_frames = None
    if group_columns == ["trackid"]:
        min_track_frames = _extract_track_duration(query.having)
    elif query.having is not None:
        return None
    if facts.object_class is None and not facts.udf_predicates:
        # No content to select on; fall through to the exact plan.
        return None
    return SelectionQuerySpec(
        video=query.video,
        kind=QueryKind.SELECTION,
        raw_query=query,
        object_class=facts.object_class,
        udf_predicates=facts.udf_predicates,
        spatial_constraints=facts.spatial_constraints,
        min_area=facts.min_area,
        max_area=facts.max_area,
        min_track_frames=min_track_frames,
        time_range=(facts.time_min, facts.time_max),
        fnr_within=query.fnr_within,
        fpr_within=query.fpr_within,
        select_columns=select_columns,
        select_star=select_star,
    )


def analyze(query: Query) -> QuerySpec:
    """Validate and classify a parsed FrameQL query.

    Raises :class:`~repro.errors.FrameQLAnalysisError` for semantically
    invalid queries (unknown columns, unsupported predicate shapes).
    """
    if not query.video:
        raise FrameQLAnalysisError("query has no FROM video")
    if not query.select:
        raise FrameQLAnalysisError("query selects nothing")
    _validate_columns(query)
    facts = _extract_where_facts(query.where)

    scrubbing = _classify_scrubbing(query, facts)
    if scrubbing is not None:
        return scrubbing
    aggregate = _classify_aggregate(query, facts)
    if aggregate is not None:
        return aggregate
    selection = _classify_selection(query, facts)
    if selection is not None:
        return selection
    return ExactQuerySpec(
        video=query.video,
        kind=QueryKind.EXACT,
        raw_query=query,
        reason="query shape not recognised by the rule-based optimizer",
    )
