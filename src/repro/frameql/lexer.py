"""Tokenizer for FrameQL."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import FrameQLSyntaxError


class TokenType(enum.Enum):
    """Kinds of FrameQL tokens."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    END = "end"


#: Reserved words.  ``FCOUNT`` and ``COUNT`` are treated as identifiers so the
#: parser can handle them as ordinary function calls.
KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "LIMIT",
    "GAP",
    "ERROR",
    "WITHIN",
    "AT",
    "CONFIDENCE",
    "FPR",
    "FNR",
    "AND",
    "OR",
    "NOT",
    "AS",
    "DISTINCT",
}

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCTUATION = ("(", ")", ",", ";")


@dataclass(frozen=True)
class Token:
    """A single token with its source position."""

    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """Whether this token is the given keyword (case-insensitive)."""
        return self.type == TokenType.KEYWORD and self.value == word.upper()


def tokenize(text: str) -> list[Token]:
    """Tokenize a FrameQL query string.

    Raises :class:`~repro.errors.FrameQLSyntaxError` on unterminated strings
    or unexpected characters.
    """
    tokens: list[Token] = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            end = text.find("'", i + 1)
            if end == -1:
                raise FrameQLSyntaxError("unterminated string literal", i)
            tokens.append(Token(TokenType.STRING, text[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < length and text[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < length and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
                if text[i] == ".":
                    seen_dot = True
                i += 1
            tokens.append(Token(TokenType.NUMBER, text[start:i], start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        matched_operator = None
        for op in _OPERATORS:
            if text.startswith(op, i):
                matched_operator = op
                break
        if matched_operator is not None:
            tokens.append(Token(TokenType.OPERATOR, matched_operator, i))
            i += len(matched_operator)
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise FrameQLSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.END, "", length))
    return tokens
