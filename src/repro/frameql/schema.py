"""The FrameQL data schema (Table 1).

Each record represents one object appearing in one frame; a frame may have
many or no records.  The schema is *virtual*: rows are populated lazily, only
when the chosen query plan actually needs them (Section 4), which is what
makes the optimizations possible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.video.geometry import BoundingBox


@dataclass(frozen=True)
class FrameQLField:
    """Description of one column of the FrameQL relation."""

    name: str
    type_name: str
    description: str


#: The schema of Table 1, plus the ``content`` field described in the schema
#: prose (the pixels contained by ``mask``).
FRAMEQL_SCHEMA: dict[str, FrameQLField] = {
    "timestamp": FrameQLField(
        "timestamp", "float", "Time stamp; one-to-one with frames of the video."
    ),
    "class": FrameQLField(
        "class", "string", "Object class (e.g., bus, car, person)."
    ),
    "mask": FrameQLField(
        "mask",
        "(float, float)*",
        "Polygon containing the object of interest, typically a rectangle.",
    ),
    "trackid": FrameQLField(
        "trackid",
        "int",
        "Unique identifier for a continuous time segment when the object is visible.",
    ),
    "content": FrameQLField(
        "content", "pixels", "The pixels contained by mask."
    ),
    "features": FrameQLField(
        "features", "float*", "The feature vector output by the object detection method."
    ),
}


def is_valid_column(name: str) -> bool:
    """Whether ``name`` is a column of the FrameQL schema."""
    return name in FRAMEQL_SCHEMA


@dataclass
class FrameRecord:
    """One materialised row of the FrameQL relation.

    Produced by query execution when the plan populates rows (e.g. selection
    queries); aggregation plans typically never materialise records at all.
    """

    timestamp: float
    frame_index: int
    object_class: str
    mask: BoundingBox
    trackid: int | None = None
    features: np.ndarray | None = None
    confidence: float = 1.0
    color: tuple[float, float, float] | None = None
    color_name: str | None = None

    def field(self, name: str):
        """Access a schema column by name (``class`` maps to ``object_class``)."""
        if name == "class":
            return self.object_class
        if name == "mask":
            return self.mask
        if name in ("timestamp", "trackid", "features"):
            return getattr(self, name)
        if name == "content":
            return self.color
        raise KeyError(f"unknown FrameQL column {name!r}")
