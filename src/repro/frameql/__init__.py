"""FrameQL: a SQL-like query language for spatiotemporal information in video.

The package contains a real lexer and recursive-descent parser covering the
grammar exercised in the paper (Section 4): selection / projection /
aggregation over the virtual per-frame object relation, plus the video-specific
syntactic sugar of Table 2 (``FCOUNT``, ``ERROR WITHIN``, ``FPR``/``FNR
WITHIN``, ``CONFIDENCE``, ``GAP``).  The semantic analyzer turns a parsed
query into a typed query specification that the optimizer consumes.
"""

from repro.frameql.schema import FRAMEQL_SCHEMA, FrameQLField, FrameRecord
from repro.frameql.ast import (
    BinaryOp,
    ColumnRef,
    FunctionCall,
    Literal,
    Query,
    SelectItem,
    Star,
    UnaryOp,
)
from repro.frameql.lexer import Token, TokenType, tokenize
from repro.frameql.parser import parse
from repro.frameql.analyzer import (
    AggregateQuerySpec,
    ExactQuerySpec,
    QueryKind,
    QuerySpec,
    ScrubbingQuerySpec,
    SelectionQuerySpec,
    UdfPredicate,
    analyze,
)

__all__ = [
    "FRAMEQL_SCHEMA",
    "FrameQLField",
    "FrameRecord",
    "BinaryOp",
    "ColumnRef",
    "FunctionCall",
    "Literal",
    "Query",
    "SelectItem",
    "Star",
    "UnaryOp",
    "Token",
    "TokenType",
    "tokenize",
    "parse",
    "analyze",
    "QueryKind",
    "QuerySpec",
    "AggregateQuerySpec",
    "ScrubbingQuerySpec",
    "SelectionQuerySpec",
    "ExactQuerySpec",
    "UdfPredicate",
]
