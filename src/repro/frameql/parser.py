"""Recursive-descent parser for FrameQL.

Grammar (covering every query in Section 4 and the evaluation):

.. code-block:: text

    query        := SELECT select_list FROM ident clause* [';']
    clause       := WHERE expr
                  | GROUP BY column (',' column)*
                  | HAVING expr
                  | ERROR WITHIN number
                  | FPR WITHIN number
                  | FNR WITHIN number
                  | [AT] CONFIDENCE number ['%']
                  | LIMIT int [GAP int]
                  | GAP int
    select_list  := '*' | select_item (',' select_item)*
    select_item  := expr [AS ident]
    expr         := or_expr
    or_expr      := and_expr (OR and_expr)*
    and_expr     := not_expr (AND not_expr)*
    not_expr     := NOT not_expr | comparison
    comparison   := additive (('='|'!='|'<>'|'<'|'<='|'>'|'>=') additive)?
    additive     := multiplicative (('+'|'-') multiplicative)*
    multiplicative := unary (('*'|'/') unary)*
    unary        := '-' unary | primary
    primary      := number | string | '*' | '(' expr ')'
                  | ident '(' [DISTINCT] arg (',' arg)* ')' | ident '(' ')'
                  | ident
"""

from __future__ import annotations

from repro.errors import FrameQLSyntaxError
from repro.frameql.ast import (
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
    Query,
    SelectItem,
    Star,
    UnaryOp,
)
from repro.frameql.lexer import Token, TokenType, tokenize

_COMPARISON_OPS = {"=", "!=", "<>", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type != TokenType.END:
            self._pos += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise FrameQLSyntaxError(
                f"expected {word}, found {token.value or '<end>'}", token.position
            )
        return self._advance()

    def _match_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _expect_type(self, token_type: TokenType, what: str) -> Token:
        token = self._peek()
        if token.type != token_type:
            raise FrameQLSyntaxError(
                f"expected {what}, found {token.value or '<end>'}", token.position
            )
        return self._advance()

    def _match_operator(self, *operators: str) -> Token | None:
        token = self._peek()
        if token.type == TokenType.OPERATOR and token.value in operators:
            return self._advance()
        return None

    def _match_punct(self, value: str) -> bool:
        token = self._peek()
        if token.type == TokenType.PUNCT and token.value == value:
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> None:
        token = self._peek()
        if token.type != TokenType.PUNCT or token.value != value:
            raise FrameQLSyntaxError(
                f"expected {value!r}, found {token.value or '<end>'}", token.position
            )
        self._advance()

    # -- grammar ---------------------------------------------------------------

    def parse_query(self) -> Query:
        self._expect_keyword("SELECT")
        select = self._parse_select_list()
        self._expect_keyword("FROM")
        query = Query(select=select, video=self._parse_video_name())
        self._parse_clauses(query)
        self._match_punct(";")
        token = self._peek()
        if token.type != TokenType.END:
            raise FrameQLSyntaxError(
                f"unexpected trailing input {token.value!r}", token.position
            )
        return query

    def _parse_video_name(self) -> str:
        """Video names may contain hyphens (e.g. ``night-street`` from Table 3)."""
        parts = [self._expect_type(TokenType.IDENT, "video name").value]
        while True:
            token = self._peek()
            if token.type == TokenType.OPERATOR and token.value == "-":
                nxt = self._tokens[self._pos + 1]
                if nxt.type in (TokenType.IDENT, TokenType.NUMBER):
                    self._advance()
                    parts.append(self._advance().value)
                    continue
            break
        return "-".join(parts)

    def _parse_select_list(self) -> list[SelectItem]:
        items = [self._parse_select_item()]
        while self._match_punct(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        expression = self._parse_expression()
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect_type(TokenType.IDENT, "alias").value
        return SelectItem(expression=expression, alias=alias)

    def _parse_clauses(self, query: Query) -> None:
        while True:
            token = self._peek()
            if token.is_keyword("WHERE"):
                self._advance()
                query.where = self._parse_expression()
            elif token.is_keyword("GROUP"):
                self._advance()
                self._expect_keyword("BY")
                query.group_by = self._parse_column_list()
            elif token.is_keyword("HAVING"):
                self._advance()
                query.having = self._parse_expression()
            elif token.is_keyword("ERROR"):
                self._advance()
                self._expect_keyword("WITHIN")
                query.error_within = self._parse_number_value()
            elif token.is_keyword("FPR"):
                self._advance()
                self._expect_keyword("WITHIN")
                query.fpr_within = self._parse_number_value()
            elif token.is_keyword("FNR"):
                self._advance()
                self._expect_keyword("WITHIN")
                query.fnr_within = self._parse_number_value()
            elif token.is_keyword("AT") or token.is_keyword("CONFIDENCE"):
                if token.is_keyword("AT"):
                    self._advance()
                self._expect_keyword("CONFIDENCE")
                query.confidence = self._parse_confidence()
            elif token.is_keyword("LIMIT"):
                self._advance()
                query.limit = self._parse_int_value()
                if self._peek().is_keyword("GAP"):
                    self._advance()
                    query.gap = self._parse_int_value()
            elif token.is_keyword("GAP"):
                self._advance()
                query.gap = self._parse_int_value()
            else:
                return

    def _parse_column_list(self) -> list[ColumnRef]:
        columns = [ColumnRef(self._expect_type(TokenType.IDENT, "column name").value)]
        while self._match_punct(","):
            columns.append(
                ColumnRef(self._expect_type(TokenType.IDENT, "column name").value)
            )
        return columns

    def _parse_number_value(self) -> float:
        token = self._expect_type(TokenType.NUMBER, "number")
        return float(token.value)

    def _parse_int_value(self) -> int:
        token = self._expect_type(TokenType.NUMBER, "integer")
        value = float(token.value)
        if value != int(value):
            raise FrameQLSyntaxError(
                f"expected an integer, found {token.value}", token.position
            )
        return int(value)

    def _parse_confidence(self) -> float:
        value = self._parse_number_value()
        if self._match_operator("%"):
            value = value / 100.0
        elif value > 1.0:
            # "CONFIDENCE 95" without the percent sign still means 95%.
            value = value / 100.0
        return value

    # -- expressions ---------------------------------------------------------------

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._peek().is_keyword("OR"):
            self._advance()
            left = BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self._peek().is_keyword("AND"):
            self._advance()
            left = BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self._peek().is_keyword("NOT"):
            self._advance()
            return UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        operator = self._match_operator(*_COMPARISON_OPS)
        if operator is None:
            return left
        op = "!=" if operator.value == "<>" else operator.value
        return BinaryOp(op, left, self._parse_additive())

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            operator = self._match_operator("+", "-")
            if operator is None:
                return left
            left = BinaryOp(operator.value, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            operator = self._match_operator("/")
            if operator is None:
                # ``*`` is ambiguous with the wildcard; treat it as
                # multiplication only when something multipliable follows.
                saved = self._pos
                star = self._match_operator("*")
                if star is None:
                    return left
                nxt = self._peek()
                if nxt.type in (TokenType.NUMBER, TokenType.IDENT, TokenType.STRING) or (
                    nxt.type == TokenType.PUNCT and nxt.value == "("
                ):
                    left = BinaryOp("*", left, self._parse_unary())
                    continue
                self._pos = saved
                return left
            left = BinaryOp(operator.value, left, self._parse_unary())

    def _parse_unary(self) -> Expression:
        operator = self._match_operator("-")
        if operator is not None:
            return UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token.type == TokenType.NUMBER:
            self._advance()
            value = float(token.value)
            if value == int(value) and "." not in token.value:
                return Literal(int(value))
            return Literal(value)
        if token.type == TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.type == TokenType.OPERATOR and token.value == "*":
            self._advance()
            return Star()
        if token.type == TokenType.PUNCT and token.value == "(":
            self._advance()
            inner = self._parse_expression()
            self._expect_punct(")")
            return inner
        if token.type == TokenType.IDENT:
            self._advance()
            if self._peek().type == TokenType.PUNCT and self._peek().value == "(":
                return self._parse_call(token.value)
            return ColumnRef(token.value)
        raise FrameQLSyntaxError(
            f"unexpected token {token.value or '<end>'}", token.position
        )

    def _parse_call(self, name: str) -> FunctionCall:
        self._expect_punct("(")
        if self._match_punct(")"):
            return FunctionCall(name=name)
        distinct = self._match_keyword("DISTINCT")
        args = [self._parse_expression()]
        while self._match_punct(","):
            args.append(self._parse_expression())
        self._expect_punct(")")
        return FunctionCall(name=name, args=tuple(args), distinct=distinct)


def parse(text: str) -> Query:
    """Parse a FrameQL query string into a :class:`~repro.frameql.ast.Query`."""
    if not text or not text.strip():
        raise FrameQLSyntaxError("empty query")
    return _Parser(tokenize(text)).parse_query()
