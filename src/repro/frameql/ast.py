"""Abstract syntax tree for FrameQL queries."""

from __future__ import annotations

from dataclasses import dataclass, field


class Expression:
    """Base class for all FrameQL expressions.

    Expressions support the Python comparison and bitwise-logic operators as
    AST constructors, which is what the fluent query builder rides on:
    ``fn("redness", col("content")) >= 17.5`` builds the same ``BinaryOp``
    tree the parser produces for ``redness(content) >= 17.5``.  Equality is
    spelled ``.eq()`` / ``.ne()`` because ``==`` keeps its dataclass meaning
    (structural comparison of ASTs).
    """

    def _compare(self, op: str, other: object) -> "BinaryOp":
        return BinaryOp(op, self, _as_expression(other))

    def __lt__(self, other: object) -> "BinaryOp":
        return self._compare("<", other)

    def __le__(self, other: object) -> "BinaryOp":
        return self._compare("<=", other)

    def __gt__(self, other: object) -> "BinaryOp":
        return self._compare(">", other)

    def __ge__(self, other: object) -> "BinaryOp":
        return self._compare(">=", other)

    def eq(self, other: object) -> "BinaryOp":
        """The FrameQL ``=`` comparison (``==`` stays structural equality)."""
        return self._compare("=", other)

    def ne(self, other: object) -> "BinaryOp":
        """The FrameQL ``!=`` comparison."""
        return self._compare("!=", other)

    def __and__(self, other: object) -> "BinaryOp":
        return BinaryOp("AND", self, _as_expression(other))

    def __or__(self, other: object) -> "BinaryOp":
        return BinaryOp("OR", self, _as_expression(other))

    def __invert__(self) -> "UnaryOp":
        return UnaryOp("NOT", self)


def _as_expression(value: object) -> Expression:
    """Wrap plain Python literals so operator overloads accept them directly."""
    if isinstance(value, Expression):
        return value
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise TypeError(f"cannot use {value!r} as a FrameQL expression")
    return Literal(value)


@dataclass(frozen=True)
class Literal(Expression):
    """A numeric or string literal."""

    value: float | int | str

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to a column of the FrameQL schema."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Star(Expression):
    """The ``*`` wildcard, used in ``SELECT *`` and ``COUNT(*)``."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A function or aggregate call such as ``FCOUNT(*)`` or ``redness(content)``."""

    name: str
    args: tuple[Expression, ...] = ()
    distinct: bool = False

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary operation (comparison, boolean connective or arithmetic)."""

    op: str
    left: Expression
    right: Expression

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expression):
    """A unary operation (``NOT`` or arithmetic negation)."""

    op: str
    operand: Expression

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass(frozen=True)
class SelectItem:
    """One item of the SELECT list, with an optional alias."""

    expression: Expression
    alias: str | None = None

    def __str__(self) -> str:
        if self.alias:
            return f"{self.expression} AS {self.alias}"
        return str(self.expression)


@dataclass
class Query:
    """A parsed FrameQL query.

    The extra clauses beyond standard SQL carry the syntactic sugar of
    Table 2: ``error_within``, ``fpr_within``, ``fnr_within``, ``confidence``,
    ``limit`` and ``gap``.
    """

    select: list[SelectItem] = field(default_factory=list)
    video: str = ""
    where: Expression | None = None
    group_by: list[ColumnRef] = field(default_factory=list)
    having: Expression | None = None
    error_within: float | None = None
    fpr_within: float | None = None
    fnr_within: float | None = None
    confidence: float | None = None
    limit: int | None = None
    gap: int | None = None

    def __str__(self) -> str:
        parts = ["SELECT " + ", ".join(str(item) for item in self.select)]
        parts.append(f"FROM {self.video}")
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(str(c) for c in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having}")
        if self.error_within is not None:
            parts.append(f"ERROR WITHIN {self.error_within}")
        if self.fpr_within is not None:
            parts.append(f"FPR WITHIN {self.fpr_within}")
        if self.fnr_within is not None:
            parts.append(f"FNR WITHIN {self.fnr_within}")
        if self.confidence is not None:
            parts.append(f"AT CONFIDENCE {self.confidence * 100:g}%")
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.gap is not None:
            parts.append(f"GAP {self.gap}")
        return " ".join(parts)


def conjuncts(expression: Expression | None) -> list[Expression]:
    """Split a boolean expression into its top-level AND-ed conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, BinaryOp) and expression.op == "AND":
        return conjuncts(expression.left) + conjuncts(expression.right)
    return [expression]


def walk(expression: Expression):
    """Yield every node of an expression tree, depth first."""
    yield expression
    if isinstance(expression, BinaryOp):
        yield from walk(expression.left)
        yield from walk(expression.right)
    elif isinstance(expression, UnaryOp):
        yield from walk(expression.operand)
    elif isinstance(expression, FunctionCall):
        for arg in expression.args:
            yield from walk(arg)
