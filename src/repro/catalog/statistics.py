"""Per-video statistics computed from labeled sets (Section 5).

The cost-based optimizer needs a statistical picture of each registered video
to price alternative operator trees: how many frames a scan would touch, how
frequent each object class is, how variable its per-frame count is (which
drives the CLT sample-size estimates of the sampling operators), how expensive
one detector invocation is, and how selective inferred filters are likely to
be.  All of it is derived from the labeled set — the train/held-out detector
runs the engine already builds offline — so the catalog costs nothing extra.

Statistics are *estimates about the unseen test day* computed from the
held-out day; they steer planning and explanations, never correctness (every
plan remains exact or explicitly error-bounded regardless of how wrong the
statistics are).
"""

from __future__ import annotations

import io
import json
import zipfile
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import ConfigurationError
from repro.metrics.runtime import StandardCosts
from repro.persist import atomic_write_bytes, atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.labeled_set import LabeledSet

#: Safety factor applied to presence-rate-derived filter survival estimates:
#: no-false-negative thresholds keep every positive frame plus a margin of
#: negatives, so survivors exceed the raw presence rate.
_SURVIVAL_SLACK = 3.0

#: Additive floor on filter survival: even a rare class keeps a small residue
#: of false-positive frames past the calibrated thresholds.
_SURVIVAL_FLOOR = 0.15

_JSON_FORMAT = "statistics-catalog/v1"
_NPZ_FORMAT = "statistics-catalog/v2-npz"
#: Leading bytes of a zip archive, which is what an ``.npz`` file is.  Used
#: to sniff the on-disk format so ``load`` needs no format argument (the same
#: convention as ``SharedDetectionCache``).
_ZIP_MAGIC = b"PK\x03\x04"


@dataclass(frozen=True)
class ClassStatistics:
    """Summary statistics for one object class on one video's labeled set.

    Attributes
    ----------
    object_class:
        The class name (``"car"``, ``"bus"``, ...).
    training_positives:
        Training-day frames containing at least one instance; gates whether
        specialization is worth attempting (``min_training_positives``).
    presence_rate:
        Fraction of held-out frames containing at least one instance — the
        class frequency, and the lower bound of any no-false-negative filter's
        pass rate.
    mean_count:
        Held-out mean per-frame count (the quantity ``FCOUNT`` estimates).
    count_std:
        Held-out standard deviation of the per-frame count; drives the CLT
        sample-size estimates for the sampling operators.
    max_count:
        Largest per-frame count seen on either labeled day; ``max_count + 1``
        is the epsilon-net value range ``K``.
    """

    object_class: str
    training_positives: int
    presence_rate: float
    mean_count: float
    count_std: float
    max_count: int

    @property
    def value_range(self) -> float:
        """``K``, the per-frame count range used by the epsilon-net minimum."""
        return float(self.max_count + 1)


@dataclass(frozen=True, eq=False)
class VideoStatistics:
    """Everything the cost model knows about one registered video.

    Built once per video from its labeled set (see :meth:`from_labeled_set`)
    and held in the engine's :class:`StatisticsCatalog`.  The per-class count
    arrays of both labeled days are retained so conjunction event rates
    (scrubbing predicates over several classes) can be estimated for any
    query without re-reading the recordings.
    """

    video: str
    num_frames: int
    train_frames: int
    heldout_frames: int
    detector_seconds_per_call: float
    training_epochs: int
    classes: Mapping[str, ClassStatistics]
    _train_counts: Mapping[str, np.ndarray] = field(default_factory=dict, repr=False)
    _heldout_counts: Mapping[str, np.ndarray] = field(default_factory=dict, repr=False)

    @classmethod
    def from_labeled_set(
        cls,
        video: str,
        num_frames: int,
        labeled: LabeledSet,
        detector_seconds_per_call: float,
        training_epochs: int = 2,
    ) -> VideoStatistics:
        """Compute the full statistics block from a labeled set."""
        observed = sorted(
            labeled.train_recorded.observed_classes()
            | labeled.heldout_recorded.observed_classes()
        )
        train_counts: dict[str, np.ndarray] = {}
        heldout_counts: dict[str, np.ndarray] = {}
        classes: dict[str, ClassStatistics] = {}
        for object_class in observed:
            train = labeled.train_counts(object_class)
            heldout = labeled.heldout_counts(object_class)
            train_counts[object_class] = train
            heldout_counts[object_class] = heldout
            classes[object_class] = ClassStatistics(
                object_class=object_class,
                training_positives=int((train > 0).sum()),
                presence_rate=float((heldout > 0).mean()) if heldout.size else 0.0,
                mean_count=float(heldout.mean()) if heldout.size else 0.0,
                count_std=float(heldout.std(ddof=1)) if heldout.size > 1 else 0.0,
                max_count=int(
                    max(train.max(initial=0), heldout.max(initial=0))
                ),
            )
        return cls(
            video=video,
            num_frames=num_frames,
            train_frames=labeled.train_video.num_frames,
            heldout_frames=labeled.heldout_video.num_frames,
            detector_seconds_per_call=detector_seconds_per_call,
            training_epochs=training_epochs,
            classes=classes,
            _train_counts=train_counts,
            _heldout_counts=heldout_counts,
        )

    # -- per-class lookups ---------------------------------------------------------

    def class_stats(self, object_class: str | None) -> ClassStatistics | None:
        """Statistics for one class, or ``None`` when it was never observed."""
        if object_class is None:
            return None
        return self.classes.get(object_class)

    def count_std(self, object_class: str | None) -> float:
        """Held-out per-frame count standard deviation (0 for unseen classes)."""
        stats = self.class_stats(object_class)
        return stats.count_std if stats is not None else 0.0

    def value_range(self, object_class: str | None) -> float:
        """``K`` for the epsilon-net minimum, mirroring the plans' fallback.

        An unseen class has a labeled-set maximum count of zero, so its range
        is 1 — exactly what the aggregate plan computes at execution time.
        """
        stats = self.class_stats(object_class)
        if stats is not None:
            return stats.value_range
        return 1.0

    # -- query-shaped estimates ------------------------------------------------------

    def event_rate(self, min_counts: Mapping[str, int]) -> float:
        """Held-out fraction of frames satisfying a count conjunction.

        Classes never observed on the labeled days contribute zero counts, so
        a conjunction over an unknown class has rate 0 — matching the
        scrubbing plan's runtime fallback to an exhaustive scan.
        """
        if not min_counts or self.heldout_frames == 0:
            return 0.0
        mask = np.ones(self.heldout_frames, dtype=bool)
        for object_class, min_count in min_counts.items():
            counts = self._heldout_counts.get(object_class)
            if counts is None:
                return 0.0
            mask &= counts >= min_count
        return float(mask.mean())

    def training_event_count(self, min_counts: Mapping[str, int]) -> int:
        """Training-day frames satisfying a count conjunction.

        This is the same quantity the scrubbing plan checks at execution time
        to decide between importance ranking and the exhaustive fallback.
        """
        if not min_counts or self.train_frames == 0:
            return 0
        mask = np.ones(self.train_frames, dtype=bool)
        for object_class, min_count in min_counts.items():
            counts = self._train_counts.get(object_class)
            if counts is None:
                return 0
            mask &= counts >= min_count
        return int(mask.sum())

    def _heldout_window(self, start: int, end: int) -> tuple[int, int]:
        """Map a test-day frame range onto the held-out day's timeline.

        Shards partition the *test* video, whose statistics we only know by
        proxy: the held-out day covers the same scene over (possibly) a
        different frame count, so positions are scaled proportionally.  The
        window is widened outward (floor/ceil) and never empty.
        """
        if self.num_frames <= 0 or self.heldout_frames <= 0:
            return 0, 0
        scale = self.heldout_frames / self.num_frames
        lo = max(0, int(np.floor(start * scale)))
        hi = min(self.heldout_frames, int(np.ceil(end * scale)))
        if hi <= lo:
            hi = min(self.heldout_frames, lo + 1)
        return lo, hi

    def range_event_rate(self, min_counts: Mapping[str, int], start: int, end: int) -> float:
        """Held-out event rate of a count conjunction within one frame range.

        The per-shard analogue of :meth:`event_rate`, used by the video
        sharder to order shards by estimated hit density and to mark
        statically-cold shards prunable.  Estimates steer scheduling only —
        a pruned shard is still scanned if the query turns out to need it.
        """
        if not min_counts:
            return 0.0
        lo, hi = self._heldout_window(start, end)
        if hi <= lo:
            return 0.0
        mask = np.ones(hi - lo, dtype=bool)
        for object_class, min_count in min_counts.items():
            counts = self._heldout_counts.get(object_class)
            if counts is None:
                return 0.0
            mask &= counts[lo:hi] >= min_count
        return float(mask.mean())

    def range_presence_rate(self, object_class: str | None, start: int, end: int) -> float:
        """Held-out presence rate of one class within one frame range.

        Like :meth:`range_event_rate` but for single-class predicates
        (aggregates and selections).  A class the labeled set never observed
        yields 0.0 only when other classes *were* observed — with an empty
        catalog entry everything stays unpruned.
        """
        if object_class is None:
            return 1.0
        lo, hi = self._heldout_window(start, end)
        if hi <= lo:
            return 0.0
        counts = self._heldout_counts.get(object_class)
        if counts is None:
            return 0.0 if self._heldout_counts else 1.0
        return float((counts[lo:hi] > 0).mean())

    def selection_survival(self, object_class: str | None) -> float:
        """Estimated fraction of frames surviving an inferred filter cascade.

        No-false-negative calibration keeps every positive frame plus a
        data-dependent margin of negatives; the estimate is the presence rate
        with a generous slack and floor, clipped to 1.  A class the labeled
        set never saw gives no trainable filter, so everything survives.
        """
        stats = self.class_stats(object_class)
        if stats is None:
            return 1.0
        return float(
            min(1.0, stats.presence_rate * _SURVIVAL_SLACK + _SURVIVAL_FLOOR)
        )

    # -- persistence ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form, per-class count arrays included.

        The count arrays are what shard pruning and conjunction event rates
        are computed from, so persisting them keeps every catalog capability
        intact across processes.
        """
        return {
            "video": self.video,
            "num_frames": self.num_frames,
            "train_frames": self.train_frames,
            "heldout_frames": self.heldout_frames,
            "detector_seconds_per_call": self.detector_seconds_per_call,
            "training_epochs": self.training_epochs,
            "classes": {
                name: {
                    "training_positives": stats.training_positives,
                    "presence_rate": stats.presence_rate,
                    "mean_count": stats.mean_count,
                    "count_std": stats.count_std,
                    "max_count": stats.max_count,
                }
                for name, stats in self.classes.items()
            },
            "train_counts": {
                name: np.asarray(counts, dtype=np.int64).tolist()
                for name, counts in self._train_counts.items()
            },
            "heldout_counts": {
                name: np.asarray(counts, dtype=np.int64).tolist()
                for name, counts in self._heldout_counts.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> VideoStatistics:
        """Inverse of :meth:`to_dict`."""
        classes = {
            name: ClassStatistics(
                object_class=name,
                training_positives=int(entry["training_positives"]),
                presence_rate=float(entry["presence_rate"]),
                mean_count=float(entry["mean_count"]),
                count_std=float(entry["count_std"]),
                max_count=int(entry["max_count"]),
            )
            for name, entry in payload["classes"].items()
        }
        return cls(
            video=str(payload["video"]),
            num_frames=int(payload["num_frames"]),
            train_frames=int(payload["train_frames"]),
            heldout_frames=int(payload["heldout_frames"]),
            detector_seconds_per_call=float(payload["detector_seconds_per_call"]),
            training_epochs=int(payload["training_epochs"]),
            classes=classes,
            _train_counts={
                name: np.asarray(counts, dtype=np.int64)
                for name, counts in payload["train_counts"].items()
            },
            _heldout_counts={
                name: np.asarray(counts, dtype=np.int64)
                for name, counts in payload["heldout_counts"].items()
            },
        )

    # -- cost conversions ----------------------------------------------------------------

    def detector_seconds(self, calls: int) -> float:
        """Simulated seconds for ``calls`` detector invocations on this video."""
        return calls * self.detector_seconds_per_call

    def specialized_training_seconds(self) -> float:
        """Simulated cost of training one specialized NN on the labeled set.

        Matches the trainer's accounting: one ``specialized_nn_train`` charge
        per training example per epoch.
        """
        return (
            self.train_frames
            * self.training_epochs
            * StandardCosts.SPECIALIZED_NN_TRAIN.seconds_per_call
        )

    def specialized_inference_seconds(self, frames: int) -> float:
        """Simulated cost of running a specialized NN over ``frames`` frames."""
        return frames * StandardCosts.SPECIALIZED_NN.seconds_per_call

    def filter_seconds(self, frames: int) -> float:
        """Simulated cost of one simple (non-NN) filter pass over ``frames``."""
        return frames * StandardCosts.SIMPLE_FILTER.seconds_per_call


class StatisticsCatalog:
    """Registry of :class:`VideoStatistics`, one entry per registered video."""

    def __init__(self) -> None:
        self._stats: dict[str, VideoStatistics] = {}

    def register(self, stats: VideoStatistics) -> None:
        """Insert (or replace) the statistics block for one video."""
        self._stats[stats.video] = stats

    def register_from_labeled_set(
        self,
        video: str,
        num_frames: int,
        labeled: LabeledSet,
        detector_seconds_per_call: float,
        training_epochs: int = 2,
    ) -> VideoStatistics:
        """Compute and register statistics for a video's labeled set."""
        stats = VideoStatistics.from_labeled_set(
            video,
            num_frames,
            labeled,
            detector_seconds_per_call,
            training_epochs=training_epochs,
        )
        self.register(stats)
        return stats

    def get(self, video: str) -> VideoStatistics | None:
        """The statistics block for a video, or ``None`` if never registered."""
        return self._stats.get(video)

    def names(self) -> list[str]:
        """Names of all videos with registered statistics."""
        return sorted(self._stats)

    # -- persistence ------------------------------------------------------------------

    def save(self, path: str | Path, format: str = "json") -> None:
        """Write every video's statistics (count arrays included) to disk.

        ``format="json"`` (the default) keeps the human-readable v1 layout;
        ``format="npz"`` writes the binary columnar layout, which stops the
        large per-class count arrays round-tripping through JSON text.
        Either way the file round-trips through :meth:`load` (which sniffs
        the format), so shard pruning and cost estimates survive across
        sessions without re-running the detector over the labeled days.  The
        write is atomic (temp file + rename), so a process killed mid-save
        never corrupts the catalog.
        """
        if format not in ("json", "npz"):
            raise ConfigurationError(
                f"unknown catalog format {format!r}: expected 'json' or 'npz'"
            )
        if format == "json":
            payload = {
                "format": _JSON_FORMAT,
                "videos": [self._stats[name].to_dict() for name in self.names()],
            }
            atomic_write_text(path, json.dumps(payload))
            return
        metas: list[dict[str, Any]] = []
        arrays: dict[str, np.ndarray] = {
            "catalog_format": np.asarray(_NPZ_FORMAT)
        }
        for position, name in enumerate(self.names()):
            entry = self._stats[name].to_dict()
            train = entry.pop("train_counts")
            heldout = entry.pop("heldout_counts")
            count_classes = sorted(set(train) | set(heldout))
            entry["count_classes"] = count_classes
            metas.append(entry)
            for column, class_name in enumerate(count_classes):
                arrays[f"train_{position}_{column}"] = np.asarray(
                    train.get(class_name, []), dtype=np.int64
                )
                arrays[f"heldout_{position}_{column}"] = np.asarray(
                    heldout.get(class_name, []), dtype=np.int64
                )
        arrays["meta"] = np.asarray(json.dumps(metas))
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **arrays)
        atomic_write_bytes(path, buffer.getvalue())

    @classmethod
    def load(cls, path: str | Path) -> StatisticsCatalog:
        """Rebuild a catalog saved by :meth:`save` (either format).

        The on-disk format is sniffed from the leading bytes — ``.npz``
        archives are zip files — so old JSON catalogs keep loading
        unchanged.  The result can be handed straight to
        ``BlazeIt(catalog=...)``; registering a video with a labeled set
        later still refreshes its entry.
        """
        raw_bytes = Path(path).read_bytes()
        if raw_bytes[:4] == _ZIP_MAGIC:
            return cls._load_npz(raw_bytes, path)
        raw = json.loads(raw_bytes.decode("utf-8"))
        if raw.get("format") != _JSON_FORMAT:
            raise ConfigurationError(f"{path} is not a statistics-catalog file")
        catalog = cls()
        for entry in raw["videos"]:
            catalog.register(VideoStatistics.from_dict(entry))
        return catalog

    @classmethod
    def _load_npz(cls, raw: bytes, path: str | Path) -> StatisticsCatalog:
        """Decode the binary columnar layout written by ``save(format='npz')``."""
        try:
            with np.load(io.BytesIO(raw), allow_pickle=False) as archive:
                if "catalog_format" not in archive.files or (
                    str(np.asarray(archive["catalog_format"])) != _NPZ_FORMAT
                ):
                    raise ConfigurationError(
                        f"{path} is not a statistics-catalog file"
                    )
                metas = json.loads(str(np.asarray(archive["meta"])))
                catalog = cls()
                for position, entry in enumerate(metas):
                    count_classes = entry.pop("count_classes")
                    entry["train_counts"] = {
                        name: np.asarray(
                            archive[f"train_{position}_{column}"], dtype=np.int64
                        )
                        for column, name in enumerate(count_classes)
                    }
                    entry["heldout_counts"] = {
                        name: np.asarray(
                            archive[f"heldout_{position}_{column}"], dtype=np.int64
                        )
                        for column, name in enumerate(count_classes)
                    }
                    catalog.register(VideoStatistics.from_dict(entry))
        except ConfigurationError:
            raise
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            raise ConfigurationError(
                f"{path} is not a statistics-catalog file: {exc}"
            ) from exc
        return catalog

    def __contains__(self, video: str) -> bool:
        return video in self._stats

    def __len__(self) -> int:
        return len(self._stats)
