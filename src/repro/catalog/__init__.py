"""Statistics catalog: per-video and per-class statistics for the optimizer.

The catalog is the data side of the cost-based optimizer (Section 5): while
the operator library describes *how* a query could run, the catalog describes
*what the data looks like* — frame counts, class frequencies, per-frame count
variance, detector cost and filter selectivities, all computed once from the
labeled set that every accelerated plan already depends on.
"""

from repro.catalog.statistics import (
    ClassStatistics,
    StatisticsCatalog,
    VideoStatistics,
)

__all__ = [
    "ClassStatistics",
    "StatisticsCatalog",
    "VideoStatistics",
]
