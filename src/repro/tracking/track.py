"""Resolved tracks produced by entity resolution."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detection.base import Detection


@dataclass
class ResolvedTrack:
    """A group of detections the tracker considers the same object.

    ``trackid`` in the FrameQL schema (Table 1): "a unique identifier for a
    continuous time segment when the object is visible.  If the object exists
    and re-enters the scene, it will be assigned a new trackid."
    """

    track_id: int
    object_class: str
    detections: list[Detection] = field(default_factory=list)

    @property
    def start_frame(self) -> int:
        """First frame index of the track."""
        return min(d.frame_index for d in self.detections)

    @property
    def end_frame(self) -> int:
        """Last frame index of the track (inclusive)."""
        return max(d.frame_index for d in self.detections)

    @property
    def length(self) -> int:
        """Number of detections grouped into this track."""
        return len(self.detections)

    def add(self, detection: Detection) -> None:
        """Append a detection, stamping it with this track's id."""
        detection.track_id = self.track_id
        self.detections.append(detection)
