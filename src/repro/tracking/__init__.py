"""Entity resolution substrate: assigning ``trackid`` across frames."""

from repro.tracking.track import ResolvedTrack
from repro.tracking.iou_tracker import IoUTracker

__all__ = ["ResolvedTrack", "IoUTracker"]
