"""Motion-IoU entity resolution.

The paper's default implementation for computing ``trackid`` (Section 9):
given the objects in two consecutive frames, compute the pairwise IoU of each
object and call an object the same across consecutive frames when the IoU is
at least 0.7.  The tracker is greedy (highest IoU pair first), matches within
a class only, and closes a track when it goes unmatched for more than
``max_gap`` consecutive processed frames.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detection.base import Detection, DetectionResult
from repro.tracking.track import ResolvedTrack


@dataclass
class _ActiveTrack:
    track: ResolvedTrack
    last_detection: Detection
    last_frame: int


class IoUTracker:
    """Greedy IoU matching across consecutive processed frames."""

    def __init__(self, iou_threshold: float = 0.7, max_gap: int = 1) -> None:
        if not 0.0 < iou_threshold <= 1.0:
            raise ValueError(f"iou_threshold must be in (0, 1], got {iou_threshold}")
        if max_gap < 1:
            raise ValueError(f"max_gap must be >= 1, got {max_gap}")
        self.iou_threshold = iou_threshold
        self.max_gap = max_gap
        self._active: list[_ActiveTrack] = []
        self._finished: list[ResolvedTrack] = []
        self._next_track_id = 0

    def reset(self) -> None:
        """Discard all state so the tracker can be reused on another video."""
        self._active.clear()
        self._finished.clear()
        self._next_track_id = 0

    def process(self, result: DetectionResult) -> None:
        """Feed one frame's detections to the tracker.

        Frames must be fed in increasing frame-index order.
        """
        frame_index = result.frame_index
        self._retire_stale(frame_index)
        unmatched = list(result.detections)
        # Build all candidate (iou, active, detection) pairs and match greedily.
        candidates: list[tuple[float, _ActiveTrack, Detection]] = []
        for active in self._active:
            for det in unmatched:
                if det.object_class != active.track.object_class:
                    continue
                iou = det.box.iou(active.last_detection.box)
                if iou >= self.iou_threshold:
                    candidates.append((iou, active, det))
        candidates.sort(key=lambda item: item[0], reverse=True)
        matched_tracks: set[int] = set()
        matched_detections: set[int] = set()
        for iou, active, det in candidates:
            if id(active) in matched_tracks or id(det) in matched_detections:
                continue
            active.track.add(det)
            active.last_detection = det
            active.last_frame = frame_index
            matched_tracks.add(id(active))
            matched_detections.add(id(det))
        for det in unmatched:
            if id(det) in matched_detections:
                continue
            track = ResolvedTrack(
                track_id=self._next_track_id, object_class=det.object_class
            )
            self._next_track_id += 1
            track.add(det)
            self._active.append(
                _ActiveTrack(track=track, last_detection=det, last_frame=frame_index)
            )

    def _retire_stale(self, current_frame: int) -> None:
        still_active = []
        for active in self._active:
            if current_frame - active.last_frame > self.max_gap:
                self._finished.append(active.track)
            else:
                still_active.append(active)
        self._active = still_active

    def finish(self) -> list[ResolvedTrack]:
        """Close all open tracks and return every resolved track."""
        self._finished.extend(active.track for active in self._active)
        self._active.clear()
        tracks = sorted(self._finished, key=lambda t: t.track_id)
        self._finished = list(tracks)
        return tracks

    def resolve(self, results: list[DetectionResult]) -> list[ResolvedTrack]:
        """Convenience: feed a list of frame results in order and finish."""
        self.reset()
        for result in sorted(results, key=lambda r: r.frame_index):
            self.process(result)
        return self.finish()
