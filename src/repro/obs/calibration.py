"""Optimizer estimate-error report from EXPLAIN ANALYZE profiles.

``python -m repro.obs calibration`` runs one representative query of each
class over a built-in scenario with catalog statistics, executes each with
``analyze=True``, and reports how far the optimizer's per-operator
detector-call estimates diverged from the actuals the spans recorded — the
feedback loop for re-calibrating the cost model's constants.
"""

from __future__ import annotations

from typing import Any

from repro.obs.profile import ExecutionProfile, estimate_errors

#: One representative query per class over the calibration scenario.
CALIBRATION_QUERIES: tuple[tuple[str, str], ...] = (
    ("aggregate", "SELECT FCOUNT(*) FROM v WHERE class = '{cls}'"),
    (
        "scrubbing",
        "SELECT timestamp FROM v GROUP BY timestamp "
        "HAVING COUNT(class = '{cls}') >= 1 LIMIT 5 GAP 30",
    ),
    ("selection", "SELECT * FROM v WHERE class = '{cls}'"),
    ("exact", "SELECT * FROM v"),
)

DEFAULT_FRAMES = 600


def collect_profiles(num_frames: int = DEFAULT_FRAMES) -> list[ExecutionProfile]:
    """Execute the calibration workload and return its EXPLAIN ANALYZE
    profiles (one per query class)."""
    from repro.core.config import BlazeItConfig
    from repro.core.engine import BlazeIt
    from repro.video.scenarios import generate_scenario

    engine = BlazeIt(config=BlazeItConfig(seed=0))
    engine.register_video(
        "v",
        test_video=generate_scenario("rialto", "test", num_frames),
        train_video=generate_scenario("rialto", "train", num_frames),
        heldout_video=generate_scenario("rialto", "heldout", num_frames),
    )
    cls = engine.store.get("v").object_class_names[0]
    profiles = []
    with engine.session() as session:
        for _, template in CALIBRATION_QUERIES:
            prepared = session.prepare(template.format(cls=cls))
            result = prepared.execute(analyze=True)
            if result.profile is not None:
                profiles.append(result.profile)
    return profiles


def calibration_report(num_frames: int = DEFAULT_FRAMES) -> dict[str, Any]:
    """The estimate-error report: per-operator rows plus a summary."""
    profiles = collect_profiles(num_frames)
    rows = estimate_errors(profiles)
    worst = max((abs(r["relative_error"]) for r in rows), default=0.0)
    return {
        "frames": num_frames,
        "queries": len(profiles),
        "rows": rows,
        "worst_relative_error": worst,
    }


def render_report(report: dict[str, Any]) -> str:
    """Human-readable calibration table."""
    lines = [
        f"optimizer calibration over {report['queries']} queries "
        f"({report['frames']} frames)",
        f"{'kind':<10} {'operator':<24} {'estimated':>10} {'actual':>10} {'error':>8}",
    ]
    for row in report["rows"]:
        lines.append(
            f"{row['kind']:<10} {row['operator']:<24} "
            f"{row['estimated_detector_calls']:>10} "
            f"{row['actual_detector_calls']:>10} "
            f"{row['relative_error']:>+8.2f}"
        )
    lines.append(f"worst relative error: {report['worst_relative_error']:.2f}")
    return "\n".join(lines)


__all__ = ["calibration_report", "collect_profiles", "render_report"]
