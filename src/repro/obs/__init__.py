"""Observability layer: span tracing, metrics registry, EXPLAIN ANALYZE.

Three pieces, deliberately decoupled from the execution engine:

* :mod:`repro.obs.trace` — zero-overhead-when-disabled span tracing.  A
  :class:`~repro.obs.trace.Tracer` rides on the
  :class:`~repro.core.context.ExecutionContext` (``context.tracer``, ``None``
  by default); every span is a context manager, so it closes on all exception
  paths by construction (enforced project-wide by analyzer rule RPR008).
  Span ids derive from the execution ``SeedSequence`` path and creation
  order — never from wall-clock time — so the same query replays to the same
  trace tree.  Spans *record* wall time for display; nothing downstream may
  read it back into result-bearing values (also RPR008).

* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges and
  histograms with a Prometheus text exporter (served by the query service at
  ``GET /metrics``) and a JSON snapshot (on the status route).

* :mod:`repro.obs.profile` — ``execute(analyze=True)`` attaches an
  :class:`~repro.obs.profile.ExecutionProfile` to results: per-operator
  actual vs estimated detector calls and seconds, feeding the optimizer
  estimate-error report (``python -m repro.obs calibration``).
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.profile import ExecutionProfile, OperatorProfile, build_profile
from repro.obs.trace import SpanRecord, Tracer, maybe_span, operator_scope

__all__ = [
    "ExecutionProfile",
    "MetricsRegistry",
    "OperatorProfile",
    "SpanRecord",
    "Tracer",
    "build_profile",
    "get_registry",
    "maybe_span",
    "operator_scope",
]
