"""Process-wide metrics registry with a Prometheus-text exporter.

One registry per process (:func:`get_registry`); the engine and service
record into it at query granularity (terminal-ledger fold-ins, admission
waits, TTFE, quota rejections, shard prune counts, index serve counters) and
the service exports it two ways:

* ``GET /metrics`` — Prometheus text exposition format
  (``text/plain; version=0.0.4``), scrapeable as-is;
* the JSON :meth:`MetricsRegistry.snapshot` on the service status route.

Metric values are observability-only: analyzer rule RPR008 forbids reading
them back into result-bearing code, so recording can never perturb results.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping

#: Default histogram buckets: query-latency shaped (seconds).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any] | None) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: _LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*key, *extra]
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs)
    return "{" + body + "}"


def _flat_name(name: str, key: _LabelKey) -> str:
    return f"{name}{_render_labels(key)}"


class _Histogram:
    """Cumulative-bucket histogram state for one label set."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        if index < len(self.counts):
            self.counts[index] += 1
        self.total += value
        self.count += 1


class MetricsRegistry:
    """Counters, gauges and histograms keyed by ``(name, sorted labels)``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, dict[_LabelKey, float]] = {}
        self._gauges: dict[str, dict[_LabelKey, float]] = {}
        self._histograms: dict[str, dict[_LabelKey, _Histogram]] = {}
        self._help: dict[str, str] = {}
        self._buckets: dict[str, tuple[float, ...]] = {}

    # -- recording -----------------------------------------------------------------

    def inc(
        self,
        name: str,
        amount: float = 1.0,
        labels: Mapping[str, Any] | None = None,
        help: str = "",
    ) -> None:
        """Increment a counter (created on first use)."""
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0.0) + float(amount)
            if help:
                self._help.setdefault(name, help)

    def set_gauge(
        self,
        name: str,
        value: float,
        labels: Mapping[str, Any] | None = None,
        help: str = "",
    ) -> None:
        """Set a gauge to an absolute value."""
        key = _label_key(labels)
        with self._lock:
            self._gauges.setdefault(name, {})[key] = float(value)
            if help:
                self._help.setdefault(name, help)

    def observe(
        self,
        name: str,
        value: float,
        labels: Mapping[str, Any] | None = None,
        help: str = "",
        buckets: Iterable[float] | None = None,
    ) -> None:
        """Record one observation into a histogram."""
        key = _label_key(labels)
        with self._lock:
            if name not in self._buckets:
                self._buckets[name] = (
                    tuple(sorted(buckets)) if buckets is not None else DEFAULT_BUCKETS
                )
            series = self._histograms.setdefault(name, {})
            histogram = series.get(key)
            if histogram is None:
                histogram = series[key] = _Histogram(self._buckets[name])
            histogram.observe(float(value))
            if help:
                self._help.setdefault(name, help)

    def reset(self) -> None:
        """Drop every series (test isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._help.clear()
            self._buckets.clear()

    # -- export (observability layer only; see RPR008) -----------------------------

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        with self._lock:
            for name in sorted(self._counters):
                lines.append(f"# HELP {name} {self._help.get(name, name)}")
                lines.append(f"# TYPE {name} counter")
                for key, value in sorted(self._counters[name].items()):
                    lines.append(f"{name}{_render_labels(key)} {value:g}")
            for name in sorted(self._gauges):
                lines.append(f"# HELP {name} {self._help.get(name, name)}")
                lines.append(f"# TYPE {name} gauge")
                for key, value in sorted(self._gauges[name].items()):
                    lines.append(f"{name}{_render_labels(key)} {value:g}")
            for name in sorted(self._histograms):
                lines.append(f"# HELP {name} {self._help.get(name, name)}")
                lines.append(f"# TYPE {name} histogram")
                for key, histogram in sorted(self._histograms[name].items()):
                    cumulative = 0
                    for bound, count in zip(histogram.buckets, histogram.counts):
                        cumulative += count
                        le = _render_labels(key, (("le", f"{bound:g}"),))
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    le = _render_labels(key, (("le", "+Inf"),))
                    lines.append(f"{name}_bucket{le} {histogram.count}")
                    lines.append(
                        f"{name}_sum{_render_labels(key)} {histogram.total:g}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(key)} {histogram.count}"
                    )
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict[str, Any]:
        """JSON form of every series (served on the service status route)."""
        with self._lock:
            return {
                "counters": {
                    _flat_name(name, key): value
                    for name, series in sorted(self._counters.items())
                    for key, value in sorted(series.items())
                },
                "gauges": {
                    _flat_name(name, key): value
                    for name, series in sorted(self._gauges.items())
                    for key, value in sorted(series.items())
                },
                "histograms": {
                    _flat_name(name, key): {
                        "count": histogram.count,
                        "sum": histogram.total,
                        "buckets": {
                            f"{bound:g}": count
                            for bound, count in zip(
                                histogram.buckets, histogram.counts
                            )
                        },
                    }
                    for name, series in sorted(self._histograms.items())
                    for key, histogram in sorted(series.items())
                },
            }


_PROCESS_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every component records into."""
    return _PROCESS_REGISTRY


def record_execution_ledger(kind: str, ledger: Any) -> None:
    """Fold one execution's terminal ledger into the process registry.

    Called once per completed query (by the session layer); ``kind`` labels
    the query class.  Only counters are read off the ledger — never written
    back — so this is a strictly one-way flow out of the execution engine.
    """
    registry = get_registry()
    labels = {"kind": kind}
    registry.inc(
        "repro_queries_total", 1, labels, help="Completed query executions"
    )
    registry.inc(
        "repro_detector_calls_total",
        ledger.detector_calls,
        labels,
        help="Charged detector calls",
    )
    registry.inc(
        "repro_frames_decoded_total",
        ledger.frames_decoded,
        labels,
        help="Frames decoded from video",
    )
    registry.inc(
        "repro_detection_cache_hits_total",
        ledger.detection_cache_hits,
        labels,
        help="Per-execution detection cache hits",
    )
    registry.inc(
        "repro_shared_cache_hits_total",
        ledger.shared_cache_hits,
        labels,
        help="Shared cross-query cache hits",
    )
    registry.inc(
        "repro_index_hits_total",
        ledger.index_hits,
        labels,
        help="Frames served from the persistent index",
    )
    registry.inc(
        "repro_index_skips_total",
        ledger.index_skips,
        labels,
        help="Frames skipped via index range sketches",
    )
    registry.observe(
        "repro_query_wall_seconds",
        ledger.wall_seconds,
        labels,
        help="Query wall time (driver-observed)",
    )


__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "get_registry",
    "record_execution_ledger",
]
