"""EXPLAIN ANALYZE: per-operator actual vs estimated cost profiles.

``execute(analyze=True)`` attaches an :class:`ExecutionProfile` to the
result: the optimizer's per-operator estimates (from the statistics catalog)
next to the *actual* detector calls and wall seconds each operator's span
recorded.  :meth:`ExecutionProfile.render` is the human-readable EXPLAIN
ANALYZE output; :func:`estimate_errors` feeds the optimizer calibration
report (``python -m repro.obs calibration``).

Profiles are display-only: they ride on results and over the wire, but
:func:`repro.service.protocol.result_fingerprint` excludes them, so a traced
result stays byte-identical to an untraced one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.results import OperatorNode
from repro.obs.trace import SpanRecord, Tracer


@dataclass(frozen=True)
class OperatorProfile:
    """One operator row: the estimate it was planned at vs what it did.

    ``actual_detector_calls``/``actual_seconds`` are ``None`` for operators
    whose span never opened (branches the adaptive plans skipped at runtime).
    """

    name: str
    detail: str = ""
    depth: int = 0
    estimated_detector_calls: int | None = None
    estimated_seconds: float | None = None
    actual_detector_calls: int | None = None
    actual_seconds: float | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "detail": self.detail,
            "depth": self.depth,
            "estimated_detector_calls": self.estimated_detector_calls,
            "estimated_seconds": self.estimated_seconds,
            "actual_detector_calls": self.actual_detector_calls,
            "actual_seconds": self.actual_seconds,
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "OperatorProfile":
        return cls(
            name=str(payload["name"]),
            detail=str(payload["detail"]),
            depth=int(payload["depth"]),
            estimated_detector_calls=payload["estimated_detector_calls"],
            estimated_seconds=payload["estimated_seconds"],
            actual_detector_calls=payload["actual_detector_calls"],
            actual_seconds=payload["actual_seconds"],
        )


@dataclass(frozen=True)
class ExecutionProfile:
    """The EXPLAIN ANALYZE payload attached to a traced result."""

    kind: str
    plan_summary: str
    trace_id: str
    operators: tuple[OperatorProfile, ...] = ()
    spans: tuple[SpanRecord, ...] = field(default_factory=tuple, compare=False)

    def render(self) -> str:
        """EXPLAIN ANALYZE table: operator tree with actual vs estimated."""
        lines = [f"{self.kind}: {self.plan_summary}  [trace {self.trace_id}]"]
        for op in self.operators:
            label = f"{op.name}({op.detail})" if op.detail else op.name
            est = (
                f"~{op.estimated_detector_calls} calls"
                if op.estimated_detector_calls is not None
                else "~? calls"
            )
            if op.actual_detector_calls is None:
                actual = "(not executed)"
            else:
                actual = f"{op.actual_detector_calls} calls"
                if op.actual_seconds is not None:
                    actual += f", {op.actual_seconds:.3f}s"
            lines.append(
                "  " * (op.depth + 1) + f"{label}  est {est} -> actual {actual}"
            )
        return "\n".join(lines)

    def explain(self) -> str:
        """Alias of :meth:`render` (the EXPLAIN ANALYZE surface)."""
        return self.render()

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "plan_summary": self.plan_summary,
            "trace_id": self.trace_id,
            "operators": [op.to_json() for op in self.operators],
            "spans": [span.to_json() for span in self.spans],
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "ExecutionProfile":
        return cls(
            kind=str(payload["kind"]),
            plan_summary=str(payload["plan_summary"]),
            trace_id=str(payload["trace_id"]),
            operators=tuple(
                OperatorProfile.from_json(op) for op in payload["operators"]
            ),
            spans=tuple(SpanRecord.from_json(span) for span in payload["spans"]),
        )


def _flatten_tree(node: OperatorNode, depth: int = 0) -> list[tuple[OperatorNode, int]]:
    rows = [(node, depth)]
    for child in node.children:
        rows.extend(_flatten_tree(child, depth + 1))
    return rows


def build_profile(
    kind: str,
    plan_summary: str,
    tree: OperatorNode,
    tracer: Tracer,
) -> ExecutionProfile:
    """Join the plan's estimated operator tree with the recorded spans.

    Operator spans are matched by operator name; multiple activations of the
    same operator (e.g. per-chunk scans) are summed.  When the tree holds
    duplicate names, the aggregate is attributed to the first occurrence.
    """
    spans = tuple(tracer.records())
    actual_calls: dict[str, int] = {}
    actual_seconds: dict[str, float] = {}
    for span in spans:
        if span.attributes.get("kind") != "operator":
            continue
        actual_calls[span.name] = actual_calls.get(span.name, 0) + int(
            span.attributes.get("detector_calls", 0)
        )
        actual_seconds[span.name] = (
            actual_seconds.get(span.name, 0.0) + span.wall_duration
        )
    operators = []
    claimed: set[str] = set()
    for node, depth in _flatten_tree(tree):
        if node.name in actual_calls and node.name not in claimed:
            claimed.add(node.name)
            calls: int | None = actual_calls[node.name]
            seconds: float | None = actual_seconds[node.name]
        else:
            calls = None
            seconds = None
        operators.append(
            OperatorProfile(
                name=node.name,
                detail=node.detail,
                depth=depth,
                estimated_detector_calls=node.estimated_detector_calls,
                estimated_seconds=node.estimated_seconds,
                actual_detector_calls=calls,
                actual_seconds=seconds,
            )
        )
    return ExecutionProfile(
        kind=kind,
        plan_summary=plan_summary,
        trace_id=tracer.trace_id,
        operators=tuple(operators),
        spans=spans,
    )


def estimate_errors(profiles: list[ExecutionProfile]) -> list[dict[str, Any]]:
    """Per-operator estimate-error rows across a batch of profiles.

    Only operators that both carry an estimate and actually executed
    contribute; the relative error is ``(actual - estimated) / max(1, est)``
    on detector calls — the currency the optimizer prices plans in.
    """
    rows: list[dict[str, Any]] = []
    for profile in profiles:
        for op in profile.operators:
            if (
                op.estimated_detector_calls is None
                or op.actual_detector_calls is None
            ):
                continue
            estimated = op.estimated_detector_calls
            actual = op.actual_detector_calls
            rows.append(
                {
                    "kind": profile.kind,
                    "operator": op.name,
                    "estimated_detector_calls": estimated,
                    "actual_detector_calls": actual,
                    "relative_error": (actual - estimated) / max(1, estimated),
                }
            )
    return rows


__all__ = [
    "ExecutionProfile",
    "OperatorProfile",
    "build_profile",
    "estimate_errors",
]
