"""Span tracer: deterministic ids, wall-clock display times, zero cost off.

The tracer is attached to an :class:`~repro.core.context.ExecutionContext`
(``context.tracer``); every call site checks ``tracer is None`` first (or
goes through :func:`maybe_span`), so a disabled run pays a single attribute
read per span site — no objects, no locks, no clock reads.

**Determinism contract.**  Span *identity* (trace id, span ids, parent
links, names, counter attributes) is a pure function of the execution: the
trace id derives from the execution ``SeedSequence`` spawn path, span ids
from per-parent creation order, worker span ids from shard ids.  Span
*timing* (``wall_start``, ``wall_duration``) is real wall-clock time and is
display-only: analyzer rule RPR008 forbids reading it outside the
observability/service layers, and :func:`repro.service.protocol.result_fingerprint`
excludes the whole profile — so a traced run is byte-identical to an
untraced one.

This module is the sanctioned home for span clock reads (excluded from
RPR001 alongside the service layer).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, ContextManager, Iterator

import numpy as np

#: Shared no-op context manager returned for disabled call sites.
_NULL_SPAN: ContextManager[None] = nullcontext()


@dataclass
class SpanRecord:
    """One recorded span.  Identity fields are deterministic; wall fields
    (``wall_start`` offset from trace origin, ``wall_duration``) are
    display-only and never compared or fed back into results."""

    span_id: str
    parent_id: str | None
    name: str
    wall_start: float = 0.0
    wall_duration: float = 0.0
    attributes: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "wall_start": self.wall_start,
            "wall_duration": self.wall_duration,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "SpanRecord":
        return cls(
            span_id=str(payload["span_id"]),
            parent_id=payload["parent_id"],
            name=str(payload["name"]),
            wall_start=float(payload["wall_start"]),
            wall_duration=float(payload["wall_duration"]),
            attributes=dict(payload["attributes"]),
        )


class Tracer:
    """Collects the span tree of one query execution.

    Thread-safe for recording (the driver opens spans; parallel workers ship
    span payloads back over the executor transport and the driver stitches
    them in), but the parent stack is thread-local: only the driver thread
    nests spans directly.
    """

    def __init__(self, trace_id: str = "trace") -> None:
        self.trace_id = trace_id
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._children: dict[str | None, int] = {}
        self._open = 0
        self._stack = threading.local()
        # Wall origin of the trace; offsets are display-only.
        self._origin = time.perf_counter()  # repro: allow[RPR001]: span wall stamping (display only)

    @classmethod
    def from_seed_sequence(
        cls, seed_sequence: "np.random.SeedSequence | None"
    ) -> "Tracer":
        """Trace id from the execution's seed-sequence spawn path.

        Stable across runs of the same execution (the engine hands each
        execution a deterministic spawn path from its root seed), and never
        wall-clock derived.
        """
        if seed_sequence is None:
            return cls()
        path = ".".join(str(k) for k in seed_sequence.spawn_key) or "root"
        return cls(trace_id=f"seed:{seed_sequence.entropy}/{path}")

    # -- recording -----------------------------------------------------------------

    def _next_id(self, parent_id: str | None) -> str:
        with self._lock:
            ordinal = self._children.get(parent_id, 0)
            self._children[parent_id] = ordinal + 1
        return f"{parent_id}.{ordinal}" if parent_id else f"s{ordinal}"

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[SpanRecord]:
        """Open a span under the current one; always closes (use ``with``)."""
        parent = getattr(self._stack, "current", None)
        record = SpanRecord(
            span_id=self._next_id(parent),
            parent_id=parent,
            name=name,
            attributes=dict(attributes),
        )
        record.wall_start = (
            time.perf_counter() - self._origin  # repro: allow[RPR001]: span wall stamping (display only)
        )
        with self._lock:
            self._records.append(record)
            self._open += 1
        self._stack.current = record.span_id
        started = time.perf_counter()  # repro: allow[RPR001]: span wall stamping (display only)
        try:
            yield record
        finally:
            record.wall_duration = (
                time.perf_counter() - started  # repro: allow[RPR001]: span wall stamping (display only)
            )
            self._stack.current = parent
            with self._lock:
                self._open -= 1

    @contextmanager
    def operator_span(self, name: str, ledger: Any = None) -> Iterator[SpanRecord]:
        """A span around one physical operator's work.

        Snapshots the execution ledger's detector-call counter on entry and
        exit, so the span carries the operator's *actual* charged detector
        calls — the number EXPLAIN ANALYZE reports against the estimate.
        """
        with self.span(name, kind="operator") as record:
            calls_before = ledger.detector_calls if ledger is not None else 0
            try:
                yield record
            finally:
                if ledger is not None:
                    record.attributes["detector_calls"] = (
                        ledger.detector_calls - calls_before
                    )

    def synthetic_span(
        self, name: str, wall_duration: float, **attributes: Any
    ) -> SpanRecord:
        """Record an already-finished span (e.g. prepare-time parse/optimize
        durations replayed into an execution's trace)."""
        parent = getattr(self._stack, "current", None)
        record = SpanRecord(
            span_id=self._next_id(parent),
            parent_id=parent,
            name=name,
            wall_duration=wall_duration,
            attributes=dict(attributes),
        )
        with self._lock:
            self._records.append(record)
        return record

    def attach_worker_spans(self, payloads: list[dict[str, Any]]) -> None:
        """Stitch shard-worker span payloads (shipped over the executor
        transport) into the tree under the current span.

        Span ids derive from the shard id — stable across runs and across
        thread/process backends.
        """
        parent = getattr(self._stack, "current", None)
        records = []
        for payload in payloads:
            shard_id = int(payload.get("shard_id", 0))
            span_id = f"{parent}.w{shard_id}" if parent else f"w{shard_id}"
            attributes = {
                key: value
                for key, value in payload.items()
                if key not in ("shard_id", "name", "wall_duration")
            }
            attributes["shard_id"] = shard_id
            records.append(
                SpanRecord(
                    span_id=span_id,
                    parent_id=parent,
                    name=str(payload.get("name", "shard_worker")),
                    wall_duration=float(payload.get("wall_duration", 0.0)),
                    attributes=attributes,
                )
            )
        with self._lock:
            self._records.extend(records)

    # -- reading (observability layer only; see RPR008) ----------------------------

    def records(self) -> list[SpanRecord]:
        """Snapshot of every recorded span, in creation order."""
        with self._lock:
            return list(self._records)

    def open_spans(self) -> int:
        """Number of spans opened but not yet closed (0 after a clean run —
        the span-leak assertion the wire tests gate on)."""
        with self._lock:
            return self._open


def maybe_span(tracer: Tracer | None, name: str, **attributes: Any) -> ContextManager[Any]:
    """``tracer.span(...)`` when tracing is on; a shared no-op otherwise."""
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attributes)


def operator_scope(
    context: Any, name: str, ledger: Any = None
) -> ContextManager[Any]:
    """Operator span for an inline plan stage with no operator object.

    Some plan stages (selection's verification loop, predicate evaluation)
    are written inline rather than as :class:`PhysicalOperator` instances but
    still appear as nodes in the operator tree; this gives them the same
    EXPLAIN ANALYZE span as ``op.traced(context, ledger)`` gives real
    operators.  ``name`` must match the operator-tree node name.
    """
    tracer = getattr(context, "tracer", None)
    if tracer is None:
        return _NULL_SPAN
    return tracer.operator_span(name, ledger)


__all__ = ["SpanRecord", "Tracer", "maybe_span", "operator_scope"]
