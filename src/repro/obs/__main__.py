"""CLI for the observability layer.

``python -m repro.obs calibration [--frames N] [--json]`` — run the
calibration workload and print the optimizer estimate-error report.

``python -m repro.obs metrics`` — print the process registry in Prometheus
text form (mostly useful under a driver that has executed queries first).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.calibration import DEFAULT_FRAMES, calibration_report, render_report
from repro.obs.metrics import get_registry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    cal = sub.add_parser(
        "calibration", help="optimizer estimate-error report (EXPLAIN ANALYZE)"
    )
    cal.add_argument("--frames", type=int, default=DEFAULT_FRAMES)
    cal.add_argument("--json", action="store_true", help="machine-readable output")
    sub.add_parser("metrics", help="dump the process metrics registry")
    args = parser.parse_args(argv)

    if args.command == "calibration":
        report = calibration_report(args.frames)
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(render_report(report))
        return 0
    if args.command == "metrics":
        sys.stdout.write(get_registry().render_prometheus())
        return 0
    return 2  # pragma: no cover - argparse enforces the subcommand


if __name__ == "__main__":
    sys.exit(main())
