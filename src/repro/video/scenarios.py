"""The six evaluation scenarios of the paper (Table 3).

Each scenario is parameterised so that the generated video matches the
statistics the paper reports for the corresponding YouTube stream: the object
classes present, their occupancy (fraction of frames with at least one
object), their average dwell time, the frame rate and resolution.  The
absolute video length is scaled down (the paper uses 18-33 hours per stream;
we default to tens of minutes) — every optimization in the paper depends on
per-frame statistics, not on the absolute number of frames, so this preserves
the comparison shapes while keeping the reproduction laptop-sized.

The paper uses three days per stream: one for training labels, one for
threshold/held-out computation and one for testing.  :func:`generate_scenario`
exposes the same splits by re-seeding the generator per split ("different days
drawn from the same distribution").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.video.synthetic import ObjectClassSpec, SyntheticVideo, VideoSpec

#: Default number of frames generated per split.  Roughly ten minutes of
#: 30 fps video; small enough to iterate on, large enough that rare events
#: (Table 6) have a handful of instances.
DEFAULT_SPLIT_FRAMES = 18_000

#: The named splits the paper uses (Section 10.1).
SPLITS = ("train", "heldout", "test", "test2")

_SPLIT_SEED_OFFSETS = {"train": 0, "heldout": 1, "test": 2, "test2": 3}


@dataclass(frozen=True)
class ScenarioClassSpec:
    """Per-class statistics a scenario promises to reproduce (from Table 3)."""

    name: str
    occupancy: float
    mean_duration_seconds: float
    size_range: tuple[float, float]
    color_weights: dict[str, float]
    burstiness: float = 0.3
    region: tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0)
    speed: float = 4.0


@dataclass(frozen=True)
class ScenarioSpec:
    """A named evaluation scenario."""

    name: str
    width: int
    height: int
    fps: float
    classes: tuple[ScenarioClassSpec, ...]
    base_seed: int
    #: The primary object class queried in the paper's evaluation.
    primary_class: str

    def arrival_rate(self, class_spec: ScenarioClassSpec) -> float:
        """Arrival rate (tracks per frame) implied by occupancy and duration.

        With Poisson arrivals at rate ``lambda`` and mean dwell ``d`` frames,
        the number of objects present is Poisson with mean ``lambda * d``, so
        occupancy is ``1 - exp(-lambda * d)``.
        """
        duration_frames = max(1.0, class_spec.mean_duration_seconds * self.fps)
        occupancy = min(max(class_spec.occupancy, 1e-6), 0.999)
        return -math.log(1.0 - occupancy) / duration_frames

    def to_video_spec(self, split: str, num_frames: int) -> VideoSpec:
        """Concrete :class:`VideoSpec` for one split of this scenario."""
        if split not in _SPLIT_SEED_OFFSETS:
            raise ValueError(f"unknown split {split!r}; expected one of {SPLITS}")
        object_classes = tuple(
            ObjectClassSpec(
                name=cls.name,
                arrival_rate=self.arrival_rate(cls),
                mean_duration=max(2.0, cls.mean_duration_seconds * self.fps),
                size_range=cls.size_range,
                color_weights=cls.color_weights,
                burstiness=cls.burstiness,
                region=cls.region,
                speed=cls.speed,
            )
            for cls in self.classes
        )
        return VideoSpec(
            name=f"{self.name}-{split}",
            width=self.width,
            height=self.height,
            fps=self.fps,
            num_frames=num_frames,
            object_classes=object_classes,
            seed=self.base_seed * 1000 + _SPLIT_SEED_OFFSETS[split],
        )


_CAR_COLORS = {
    "white": 3.0,
    "black": 3.0,
    "silver": 2.5,
    "red": 1.0,
    "blue": 1.0,
    "green": 0.3,
}
_BUS_COLORS = {"white": 3.5, "red": 2.0, "blue": 0.5, "yellow": 0.5}
_BOAT_COLORS = {"white": 4.0, "blue": 1.5, "red": 0.8, "black": 0.5}
_PERSON_COLORS = {"black": 2.0, "white": 1.5, "blue": 1.5, "red": 1.0, "green": 0.5}


SCENARIOS: dict[str, ScenarioSpec] = {
    "taipei": ScenarioSpec(
        name="taipei",
        width=1280,
        height=720,
        fps=30.0,
        primary_class="car",
        base_seed=11,
        classes=(
            ScenarioClassSpec(
                name="bus",
                occupancy=0.119,
                mean_duration_seconds=2.82,
                size_range=(280.0, 560.0),
                color_weights=_BUS_COLORS,
                burstiness=0.25,
                region=(0.1, 0.35, 0.95, 0.95),
                speed=5.0,
            ),
            ScenarioClassSpec(
                name="car",
                occupancy=0.644,
                mean_duration_seconds=1.43,
                size_range=(60.0, 180.0),
                color_weights=_CAR_COLORS,
                burstiness=0.5,
                region=(0.0, 0.3, 1.0, 1.0),
                speed=8.0,
            ),
        ),
    ),
    "night-street": ScenarioSpec(
        name="night-street",
        width=1280,
        height=720,
        fps=30.0,
        primary_class="car",
        base_seed=23,
        classes=(
            ScenarioClassSpec(
                name="car",
                occupancy=0.281,
                mean_duration_seconds=3.94,
                size_range=(70.0, 200.0),
                color_weights=_CAR_COLORS,
                burstiness=0.45,
                region=(0.0, 0.4, 1.0, 1.0),
                speed=6.0,
            ),
        ),
    ),
    "rialto": ScenarioSpec(
        name="rialto",
        width=1280,
        height=720,
        fps=30.0,
        primary_class="boat",
        base_seed=37,
        classes=(
            ScenarioClassSpec(
                name="boat",
                occupancy=0.899,
                mean_duration_seconds=10.7,
                size_range=(100.0, 300.0),
                color_weights=_BOAT_COLORS,
                burstiness=0.4,
                region=(0.0, 0.45, 1.0, 0.95),
                speed=3.0,
            ),
        ),
    ),
    "grand-canal": ScenarioSpec(
        name="grand-canal",
        width=1920,
        height=1080,
        fps=60.0,
        primary_class="boat",
        base_seed=41,
        classes=(
            ScenarioClassSpec(
                name="boat",
                occupancy=0.577,
                mean_duration_seconds=9.50,
                size_range=(120.0, 380.0),
                color_weights=_BOAT_COLORS,
                burstiness=0.4,
                region=(0.05, 0.4, 0.95, 0.95),
                speed=2.5,
            ),
        ),
    ),
    "amsterdam": ScenarioSpec(
        name="amsterdam",
        width=1280,
        height=720,
        fps=30.0,
        primary_class="car",
        base_seed=53,
        classes=(
            ScenarioClassSpec(
                name="car",
                occupancy=0.447,
                mean_duration_seconds=7.88,
                size_range=(60.0, 170.0),
                color_weights=_CAR_COLORS,
                burstiness=0.35,
                region=(0.0, 0.35, 1.0, 1.0),
                speed=3.5,
            ),
            ScenarioClassSpec(
                name="person",
                occupancy=0.30,
                mean_duration_seconds=5.0,
                size_range=(30.0, 80.0),
                color_weights=_PERSON_COLORS,
                burstiness=0.3,
                region=(0.0, 0.5, 1.0, 1.0),
                speed=1.5,
            ),
        ),
    ),
    "archie": ScenarioSpec(
        name="archie",
        width=3840,
        height=2160,
        fps=30.0,
        primary_class="car",
        base_seed=67,
        classes=(
            ScenarioClassSpec(
                name="car",
                occupancy=0.518,
                mean_duration_seconds=0.30,
                size_range=(80.0, 240.0),
                color_weights=_CAR_COLORS,
                burstiness=0.6,
                region=(0.0, 0.3, 1.0, 1.0),
                speed=14.0,
            ),
        ),
    ),
}


def list_scenarios() -> list[str]:
    """Names of all built-in scenarios."""
    return sorted(SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario spec by name."""
    try:
        return SCENARIOS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(list_scenarios())}"
        ) from exc


def generate_scenario(
    name: str,
    split: str = "test",
    num_frames: int = DEFAULT_SPLIT_FRAMES,
) -> SyntheticVideo:
    """Generate one split ("day") of a named scenario.

    Parameters
    ----------
    name:
        One of the scenario names in :data:`SCENARIOS`.
    split:
        ``"train"``, ``"heldout"``, ``"test"`` or ``"test2"``; each split is a
        different random realisation of the same scene statistics, mirroring
        the paper's use of different days of the same stream.
    num_frames:
        Length of the generated split in frames.
    """
    scenario = get_scenario(name)
    return SyntheticVideo.generate(scenario.to_video_spec(split, num_frames))


def generate_scenario_days(
    name: str,
    num_frames: int = DEFAULT_SPLIT_FRAMES,
    splits: tuple[str, ...] = ("train", "heldout", "test"),
) -> dict[str, SyntheticVideo]:
    """Generate several splits of a scenario keyed by split name."""
    return {split: generate_scenario(name, split, num_frames) for split in splits}
