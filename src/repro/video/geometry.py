"""Geometric primitives: points and axis-aligned bounding boxes.

FrameQL's ``mask`` field is "a polygon containing the object of interest,
typically a rectangle" (Table 1); like the paper we only consider axis-aligned
bounding boxes.  The intersection-over-union computation here is the basis of
the motion-IoU entity resolution (Section 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    """A 2-D point in pixel coordinates."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to another point."""
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned bounding box in pixel coordinates.

    Coordinates follow the image convention: ``x`` grows to the right and
    ``y`` grows downwards.  ``x_max``/``y_max`` are exclusive edges, so a
    degenerate box with ``x_min == x_max`` has zero area.
    """

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        # Coordinates are normalised to float so a box survives any wire
        # round-trip byte-identically: the process-backend shard transport
        # packs boxes into float64 arrays, and an int-valued coordinate
        # (e.g. a clip to an integer frame width) would otherwise serialise
        # as `1280` sequentially but `1280.0` after the round-trip.
        object.__setattr__(self, "x_min", float(self.x_min))
        object.__setattr__(self, "y_min", float(self.y_min))
        object.__setattr__(self, "x_max", float(self.x_max))
        object.__setattr__(self, "y_max", float(self.y_max))
        if self.x_max < self.x_min or self.y_max < self.y_min:
            raise ValueError(
                f"invalid box: ({self.x_min}, {self.y_min}, {self.x_max}, {self.y_max})"
            )

    @property
    def width(self) -> float:
        """Box width in pixels."""
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        """Box height in pixels."""
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        """Box area in square pixels."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Geometric centre of the box."""
        return Point((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    def contains_point(self, point: Point) -> bool:
        """Whether ``point`` lies inside the box (inclusive of edges)."""
        return (
            self.x_min <= point.x <= self.x_max
            and self.y_min <= point.y <= self.y_max
        )

    def intersection(self, other: "BoundingBox") -> float:
        """Area of overlap with another box (zero when disjoint)."""
        overlap_w = min(self.x_max, other.x_max) - max(self.x_min, other.x_min)
        overlap_h = min(self.y_max, other.y_max) - max(self.y_min, other.y_min)
        if overlap_w <= 0 or overlap_h <= 0:
            return 0.0
        return overlap_w * overlap_h

    def union(self, other: "BoundingBox") -> float:
        """Area of the union with another box."""
        return self.area + other.area - self.intersection(other)

    def iou(self, other: "BoundingBox") -> float:
        """Intersection over union with another box, in ``[0, 1]``."""
        union = self.union(other)
        if union == 0:
            return 0.0
        return self.intersection(other) / union

    def intersects(self, other: "BoundingBox") -> bool:
        """Whether the two boxes overlap with positive area."""
        return self.intersection(other) > 0.0

    def clip_to(self, width: float, height: float) -> "BoundingBox":
        """Clip the box to an image of the given dimensions."""
        return BoundingBox(
            x_min=min(max(self.x_min, 0.0), width),
            y_min=min(max(self.y_min, 0.0), height),
            x_max=min(max(self.x_max, 0.0), width),
            y_max=min(max(self.y_max, 0.0), height),
        )

    def translate(self, dx: float, dy: float) -> "BoundingBox":
        """Return a copy shifted by ``(dx, dy)``."""
        return BoundingBox(
            self.x_min + dx, self.y_min + dy, self.x_max + dx, self.y_max + dy
        )

    def expand(self, margin: float) -> "BoundingBox":
        """Return a copy grown by ``margin`` pixels on every side."""
        return BoundingBox(
            self.x_min - margin,
            self.y_min - margin,
            self.x_max + margin,
            self.y_max + margin,
        )

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return ``(x_min, y_min, x_max, y_max)``."""
        return (self.x_min, self.y_min, self.x_max, self.y_max)

    @classmethod
    def from_center(
        cls, center_x: float, center_y: float, width: float, height: float
    ) -> "BoundingBox":
        """Build a box from its centre point and dimensions."""
        half_w = width / 2.0
        half_h = height / 2.0
        return cls(center_x - half_w, center_y - half_h, center_x + half_w, center_y + half_h)
