"""Synthetic video substrate.

The paper evaluates on six YouTube webcam streams (Table 3).  This package
replaces the raw video with a generative scene model that produces the same
*statistics* the optimizations depend on: object tracks with class, bounding
box, colour and dwell time, parameterised per scenario to match the paper's
occupancy / duration / distinct-count figures.
"""

from repro.video.geometry import BoundingBox, Point
from repro.video.frame import Frame, GroundTruthObject
from repro.video.frame_batch import FrameBatch
from repro.video.synthetic import FrameObjectTable, SyntheticVideo, Track, VideoSpec
from repro.video.scenarios import SCENARIOS, ScenarioSpec, generate_scenario, list_scenarios
from repro.video.store import VideoStore
from repro.video.codec import DecodeCostModel

__all__ = [
    "BoundingBox",
    "Point",
    "Frame",
    "FrameBatch",
    "FrameObjectTable",
    "GroundTruthObject",
    "SyntheticVideo",
    "Track",
    "VideoSpec",
    "SCENARIOS",
    "ScenarioSpec",
    "generate_scenario",
    "list_scenarios",
    "VideoStore",
    "DecodeCostModel",
]
