"""Columnar frame batches: feature matrices instead of ``Frame`` objects.

A :class:`FrameBatch` is a set of frame indices of one video plus the
(lazily computed, shared) feature matrix for those frames.  Feature-scoring
consumers — the selection filter cascade foremost — score the matrix with
one model call per batch instead of materialising
:class:`~repro.video.frame.Frame` objects, and narrow the batch with boolean
masks (:meth:`FrameBatch.select`) so the features are gathered exactly once
for a whole cascade.  (Plan-level chunking of detector work is separate: it
lives in ``ExecutionControl.batch_allowance`` and
``ExecutionContext.detect_batch``.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.video.synthetic import SyntheticVideo


class FrameBatch:
    """A columnar batch of frames: indices plus their shared feature matrix."""

    def __init__(
        self,
        video: SyntheticVideo,
        frame_indices: np.ndarray | list[int] | None = None,
        features: np.ndarray | None = None,
    ) -> None:
        self.video = video
        if frame_indices is None:
            frame_indices = np.arange(video.num_frames, dtype=np.int64)
        self.indices = np.asarray(frame_indices, dtype=np.int64)
        if features is not None and features.shape[0] != self.indices.size:
            raise ValueError(
                f"feature/index length mismatch: {features.shape[0]} vs "
                f"{self.indices.size}"
            )
        self._features = features

    def __len__(self) -> int:
        return int(self.indices.size)

    def __repr__(self) -> str:
        loaded = "loaded" if self._features is not None else "lazy"
        return f"FrameBatch({self.video.name!r}, {len(self)} frames, features={loaded})"

    # -- columns -------------------------------------------------------------

    @property
    def features(self) -> np.ndarray:
        """The batch's feature matrix, computed once and shared by selections."""
        if self._features is None:
            self._features = self.video.frame_features(self.indices)
        return self._features

    @property
    def features_loaded(self) -> bool:
        """Whether the feature matrix has been materialised yet."""
        return self._features is not None

    # -- narrowing -----------------------------------------------------------

    def select(self, mask: np.ndarray) -> "FrameBatch":
        """A sub-batch selected by a boolean mask (or index array) over rows.

        The feature matrix, if already computed, is sliced — not recomputed —
        so a filter cascade shares one gather across all its stages.
        """
        mask = np.asarray(mask)
        features = self._features[mask] if self._features is not None else None
        return FrameBatch(self.video, self.indices[mask], features)

    def restrict_to(self, frame_indices: np.ndarray) -> "FrameBatch":
        """The sub-batch whose frames appear in ``frame_indices``."""
        return self.select(np.isin(self.indices, frame_indices))
