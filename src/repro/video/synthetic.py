"""Generative scene model that stands in for real video.

The paper's optimizations exploit statistical structure in video: objects
arrive and dwell for a while (temporal coherence), most frames are "boring"
(low counts), and high-count or unusual frames are rare and bursty.  This
module generates synthetic *tracks* — an object of some class entering the
scene, moving along a linear trajectory, and leaving — from a per-class
arrival process with diurnal and bursty rate modulation.  The resulting
per-frame ground truth is what the simulated object detector perturbs and what
specialized NNs learn to approximate from cheap frame features.

Nothing downstream of this module may read the ground truth directly without
paying the simulated detection cost; query execution goes through
:mod:`repro.detection`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.rng import RekeyedPhilox
from repro.video.frame import COLOR_PALETTE, Frame, GroundTruthObject
from repro.video.geometry import BoundingBox

#: Number of grid cells along each axis used for the cheap frame features.
FEATURE_GRID = 4

#: Channels stored per grid cell: three colour channels (area-weighted), an
#: occupancy count, and a total-area channel.  The area channel is what lets
#: specialized models distinguish large object classes (buses, boats) from
#: small ones (cars, people) the way a tiny CNN would from appearance.
FEATURE_CHANNELS = 5

#: Length of the per-frame feature vector: the per-cell grid plus three global
#: terms (total object count proxy, total covered area, background brightness).
FEATURE_DIM = FEATURE_GRID * FEATURE_GRID * FEATURE_CHANNELS + 3


@dataclass(frozen=True)
class ObjectClassSpec:
    """Statistical description of one object class in a scenario.

    Parameters
    ----------
    name:
        Object class label (``"car"``, ``"bus"``, ``"boat"``, ``"person"``).
    arrival_rate:
        Mean number of new tracks per frame before rate modulation.
    mean_duration:
        Mean dwell time of a track, in frames.
    size_range:
        ``(min, max)`` box side length in pixels; width and height are drawn
        independently from this range.
    color_weights:
        Mapping from colour name (see :data:`~repro.video.frame.COLOR_PALETTE`)
        to sampling weight.
    burstiness:
        Strength of the bursty rate modulation in ``[0, 1)``; higher values
        produce occasional frames with many simultaneous objects.
    region:
        ``(x_min, y_min, x_max, y_max)`` fraction of the frame in which the
        class appears; used by spatial-filter experiments.
    speed:
        Mean speed in pixels per frame.
    """

    name: str
    arrival_rate: float
    mean_duration: float
    size_range: tuple[float, float]
    color_weights: dict[str, float]
    burstiness: float = 0.3
    region: tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0)
    speed: float = 4.0


@dataclass(frozen=True)
class VideoSpec:
    """Full description of a synthetic video."""

    name: str
    width: int
    height: int
    fps: float
    num_frames: int
    object_classes: tuple[ObjectClassSpec, ...]
    seed: int = 0

    @property
    def duration_seconds(self) -> float:
        """Length of the video in seconds."""
        return self.num_frames / self.fps

    def class_spec(self, name: str) -> ObjectClassSpec:
        """Look up the spec for one object class."""
        for spec in self.object_classes:
            if spec.name == name:
                return spec
        raise KeyError(f"no object class named {name!r} in video {self.name!r}")


@dataclass(frozen=True)
class Track:
    """A single object track: one object visible over a contiguous frame range."""

    track_id: int
    object_class: str
    start_frame: int
    end_frame: int  # exclusive
    start_x: float
    start_y: float
    velocity_x: float
    velocity_y: float
    width: float
    height: float
    color_name: str
    color: tuple[float, float, float]

    @property
    def duration(self) -> int:
        """Number of frames the track is visible."""
        return self.end_frame - self.start_frame

    def box_at(self, frame_index: int) -> BoundingBox:
        """Bounding box of the object at a given frame."""
        if not self.start_frame <= frame_index < self.end_frame:
            raise ValueError(
                f"frame {frame_index} outside track range "
                f"[{self.start_frame}, {self.end_frame})"
            )
        elapsed = frame_index - self.start_frame
        center_x = self.start_x + self.velocity_x * elapsed
        center_y = self.start_y + self.velocity_y * elapsed
        return BoundingBox.from_center(center_x, center_y, self.width, self.height)

    def visible_at(self, frame_index: int) -> bool:
        """Whether the track is visible at the given frame."""
        return self.start_frame <= frame_index < self.end_frame


def _rate_profile(
    num_frames: int, base_rate: float, burstiness: float, rng: np.random.Generator
) -> np.ndarray:
    """Per-frame arrival rate: diurnal sinusoid plus random bursts.

    The sinusoid models slow traffic-volume variation over the day; the bursts
    model rush periods, which is what makes high simultaneous counts possible
    but rare (the structure the scrubbing experiments need).
    """
    frames = np.arange(num_frames)
    # One and a half slow cycles over the video, amplitude 40% of the base.
    diurnal = 1.0 + 0.4 * np.sin(2.0 * np.pi * 1.5 * frames / max(num_frames, 1))
    rate = base_rate * diurnal
    if burstiness > 0:
        n_bursts = max(1, int(num_frames / 4000))
        burst_starts = rng.integers(0, max(num_frames - 1, 1), size=n_bursts)
        burst_lengths = rng.integers(100, 600, size=n_bursts)
        burst_gains = 1.0 + burstiness * rng.uniform(2.0, 6.0, size=n_bursts)
        for start, length, gain in zip(burst_starts, burst_lengths, burst_gains, strict=True):
            end = min(num_frames, int(start + length))
            rate[start:end] *= gain
    return rate


@dataclass(frozen=True)
class FrameObjectTable:
    """Columnar ground-truth objects for a batch of frames.

    One row per visible (frame, track) pair; frame ``i`` of the requesting
    batch owns rows ``offsets[i]:offsets[i + 1]``, in the order
    :meth:`SyntheticVideo.objects_at` lists objects.  Boxes are clipped to
    the frame, exactly as ``GroundTruthObject.box`` would be.
    """

    frame_row: np.ndarray
    offsets: np.ndarray
    track_ids: np.ndarray
    class_codes: np.ndarray
    class_names: list[str]
    x_min: np.ndarray
    y_min: np.ndarray
    x_max: np.ndarray
    y_max: np.ndarray
    colors: np.ndarray
    color_codes: np.ndarray
    color_names: list[str]

    def __len__(self) -> int:
        return int(self.track_ids.size)


class SyntheticVideo:
    """A fully generated synthetic video.

    The video is represented compactly as a list of :class:`Track` objects
    plus index arrays that map frame indices to the tracks visible in them.
    Frames (with ground-truth objects and cheap features) are materialised on
    demand.
    """

    def __init__(self, spec: VideoSpec, tracks: list[Track]) -> None:
        self.spec = spec
        self.tracks = tracks
        self._build_index()
        #: Switch between the vectorized feature path (default) and the
        #: per-frame scalar reference.  The two are bit-for-bit identical;
        #: the flag exists so benchmarks and equivalence tests can time and
        #: compare both on the same video.
        self.use_vectorized_features: bool = True
        # Scalar-reference memo (one vector per frame, like the seed code).
        self._feature_cache: dict[int, np.ndarray] = {}
        # Vectorized-path memo: a dense (num_frames, FEATURE_DIM) matrix plus
        # a readiness mask, allocated lazily on the first feature request.
        self._feature_memo: np.ndarray | None = None
        self._feature_ready: np.ndarray | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def generate(cls, spec: VideoSpec) -> "SyntheticVideo":
        """Generate a video from a :class:`VideoSpec`."""
        rng = np.random.default_rng(spec.seed)
        tracks: list[Track] = []
        track_id = 0
        for class_spec in spec.object_classes:
            rate = _rate_profile(
                spec.num_frames, class_spec.arrival_rate, class_spec.burstiness, rng
            )
            arrivals = rng.poisson(rate)
            arrival_frames = np.repeat(np.arange(spec.num_frames), arrivals)
            region = class_spec.region
            x_lo, x_hi = region[0] * spec.width, region[2] * spec.width
            y_lo, y_hi = region[1] * spec.height, region[3] * spec.height
            color_names = list(class_spec.color_weights.keys())
            weights = np.array(list(class_spec.color_weights.values()), dtype=float)
            weights = weights / weights.sum()
            for start in arrival_frames:
                duration = max(2, int(rng.exponential(class_spec.mean_duration)))
                end = min(spec.num_frames, int(start) + duration)
                if end <= start:
                    continue
                width = rng.uniform(*class_spec.size_range)
                height = rng.uniform(*class_spec.size_range)
                start_x = rng.uniform(x_lo, x_hi)
                start_y = rng.uniform(y_lo, y_hi)
                angle = rng.uniform(0.0, 2.0 * math.pi)
                speed = max(0.0, rng.normal(class_spec.speed, class_spec.speed * 0.25))
                color_name = str(rng.choice(color_names, p=weights))
                tracks.append(
                    Track(
                        track_id=track_id,
                        object_class=class_spec.name,
                        start_frame=int(start),
                        end_frame=int(end),
                        start_x=start_x,
                        start_y=start_y,
                        velocity_x=speed * math.cos(angle),
                        velocity_y=speed * math.sin(angle),
                        width=width,
                        height=height,
                        color_name=color_name,
                        color=COLOR_PALETTE[color_name],
                    )
                )
                track_id += 1
        tracks.sort(key=lambda t: (t.start_frame, t.track_id))
        return cls(spec, tracks)

    def _build_index(self) -> None:
        """Build (frame, track) pair arrays for fast per-frame lookups."""
        self._build_track_columns()
        if not self.tracks:
            self._pair_frames = np.zeros(0, dtype=np.int64)
            self._pair_tracks = np.zeros(0, dtype=np.int64)
            self._frame_offsets = np.zeros(self.spec.num_frames + 1, dtype=np.int64)
            return
        frame_chunks = []
        track_chunks = []
        for idx, track in enumerate(self.tracks):
            frames = np.arange(track.start_frame, track.end_frame, dtype=np.int64)
            frame_chunks.append(frames)
            track_chunks.append(np.full(frames.shape, idx, dtype=np.int64))
        pair_frames = np.concatenate(frame_chunks)
        pair_tracks = np.concatenate(track_chunks)
        order = np.argsort(pair_frames, kind="stable")
        self._pair_frames = pair_frames[order]
        self._pair_tracks = pair_tracks[order]
        # Offsets so that tracks visible at frame f live in
        # _pair_tracks[_frame_offsets[f]:_frame_offsets[f + 1]].
        counts = np.bincount(self._pair_frames, minlength=self.spec.num_frames)
        self._frame_offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
        )

    def _build_track_columns(self) -> None:
        """Columnar (struct-of-arrays) view of the track list.

        The vectorized feature and detection paths compute geometry for
        thousands of (frame, track) pairs as one array program; they index
        these columns by track position instead of touching ``Track`` objects.
        """
        n = len(self.tracks)
        self._track_start = np.fromiter(
            (t.start_frame for t in self.tracks), dtype=np.int64, count=n
        )
        self._track_sx = np.fromiter(
            (t.start_x for t in self.tracks), dtype=np.float64, count=n
        )
        self._track_sy = np.fromiter(
            (t.start_y for t in self.tracks), dtype=np.float64, count=n
        )
        self._track_vx = np.fromiter(
            (t.velocity_x for t in self.tracks), dtype=np.float64, count=n
        )
        self._track_vy = np.fromiter(
            (t.velocity_y for t in self.tracks), dtype=np.float64, count=n
        )
        self._track_w = np.fromiter(
            (t.width for t in self.tracks), dtype=np.float64, count=n
        )
        self._track_h = np.fromiter(
            (t.height for t in self.tracks), dtype=np.float64, count=n
        )
        self._track_id = np.fromiter(
            (t.track_id for t in self.tracks), dtype=np.int64, count=n
        )
        self._track_color = np.array(
            [t.color for t in self.tracks], dtype=np.float64
        ).reshape(n, 3)
        # Class / colour names as small code tables (first-seen order).
        class_names: list[str] = []
        class_codes = np.zeros(n, dtype=np.int64)
        color_names: list[str] = []
        color_codes = np.zeros(n, dtype=np.int64)
        class_index: dict[str, int] = {}
        color_index: dict[str, int] = {}
        for idx, track in enumerate(self.tracks):
            code = class_index.get(track.object_class)
            if code is None:
                code = class_index[track.object_class] = len(class_names)
                class_names.append(track.object_class)
            class_codes[idx] = code
            code = color_index.get(track.color_name)
            if code is None:
                code = color_index[track.color_name] = len(color_names)
                color_names.append(track.color_name)
            color_codes[idx] = code
        self._track_class_names = class_names
        self._track_class_code = class_codes
        self._track_color_names = color_names
        self._track_color_code = color_codes

    # -- basic accessors ----------------------------------------------------

    @property
    def name(self) -> str:
        """Name of the video (scenario name plus split)."""
        return self.spec.name

    @property
    def num_frames(self) -> int:
        """Number of frames in the video."""
        return self.spec.num_frames

    @property
    def fps(self) -> float:
        """Frame rate of the video."""
        return self.spec.fps

    @property
    def object_class_names(self) -> list[str]:
        """Names of the object classes present in the scenario spec."""
        return [spec.name for spec in self.spec.object_classes]

    def timestamp_of(self, frame_index: int) -> float:
        """Timestamp in seconds of a frame index."""
        return frame_index / self.spec.fps

    def frame_of_timestamp(self, timestamp: float) -> int:
        """Frame index corresponding to a timestamp in seconds."""
        return int(round(timestamp * self.spec.fps))

    # -- ground truth access (internal to the substrate) --------------------

    def tracks_at(self, frame_index: int) -> list[Track]:
        """Tracks visible at a frame index."""
        self._check_frame(frame_index)
        lo = self._frame_offsets[frame_index]
        hi = self._frame_offsets[frame_index + 1]
        return [self.tracks[i] for i in self._pair_tracks[lo:hi]]

    def objects_at(self, frame_index: int) -> list[GroundTruthObject]:
        """Ground-truth objects visible at a frame index."""
        objects = []
        for track in self.tracks_at(frame_index):
            objects.append(
                GroundTruthObject(
                    track_id=track.track_id,
                    object_class=track.object_class,
                    box=track.box_at(frame_index).clip_to(
                        self.spec.width, self.spec.height
                    ),
                    color=track.color,
                    color_name=track.color_name,
                )
            )
        return objects

    def get_frame(self, frame_index: int, with_features: bool = False) -> Frame:
        """Materialise a frame, optionally with its feature vector."""
        self._check_frame(frame_index)
        frame = Frame(
            index=frame_index,
            timestamp=self.timestamp_of(frame_index),
            width=self.spec.width,
            height=self.spec.height,
            objects=self.objects_at(frame_index),
        )
        if with_features:
            frame.features = self.frame_features(np.array([frame_index]))[0]
        return frame

    def _check_frame(self, frame_index: int) -> None:
        if not 0 <= frame_index < self.spec.num_frames:
            raise IndexError(
                f"frame {frame_index} out of range for video of "
                f"{self.spec.num_frames} frames"
            )

    # -- aggregate ground truth (used by tests and benchmark harnesses) -----

    def class_counts(self, object_class: str) -> np.ndarray:
        """Per-frame ground-truth count of one object class.

        This is the quantity the simulated "full object detector" reports
        (up to its noise model); benchmark harnesses use it to compute the
        true value of aggregate queries.
        """
        counts = np.zeros(self.spec.num_frames, dtype=np.int64)
        for track in self.tracks:
            if track.object_class == object_class:
                counts[track.start_frame : track.end_frame] += 1
        return counts

    def occupancy(self, object_class: str) -> float:
        """Fraction of frames in which at least one object of the class appears."""
        counts = self.class_counts(object_class)
        if counts.size == 0:
            return 0.0
        return float(np.mean(counts > 0))

    def distinct_count(self, object_class: str) -> int:
        """Number of distinct tracks of the class (the paper's "distinct count")."""
        return sum(1 for track in self.tracks if track.object_class == object_class)

    def mean_duration_seconds(self, object_class: str) -> float:
        """Mean dwell time of tracks of the class, in seconds."""
        durations = [
            track.duration for track in self.tracks if track.object_class == object_class
        ]
        if not durations:
            return 0.0
        return float(np.mean(durations)) / self.spec.fps

    def max_count(self, object_class: str) -> int:
        """Maximum simultaneous count of the class over the whole video."""
        counts = self.class_counts(object_class)
        if counts.size == 0:
            return 0
        return int(counts.max())

    # -- cheap frame features ------------------------------------------------

    def frame_features(self, frame_indices: np.ndarray | list[int]) -> np.ndarray:
        """Cheap per-frame features used by specialized NNs and content filters.

        For each frame we compute a ``FEATURE_GRID x FEATURE_GRID`` grid; each
        cell accumulates the colours of objects whose centre falls in it
        (weighted by relative object area) and an occupancy count.  A global
        brightness term and per-frame observation noise are added.  The noise
        is deterministic per frame so repeated reads agree.

        The default implementation is columnar: an N-frame feature matrix is
        one array program over the (frame, track) pair index (scatter-adds via
        ``np.add.at``) backed by a dense memo array, bit-for-bit identical to
        the per-frame scalar path (:meth:`frame_features_reference`).
        """
        if not self.use_vectorized_features:
            return self.frame_features_reference(frame_indices)
        indices = np.asarray(frame_indices, dtype=np.int64)
        if indices.size == 0:
            return np.zeros((0, FEATURE_DIM), dtype=np.float64)
        bad = (indices < 0) | (indices >= self.spec.num_frames)
        if bad.any():
            self._check_frame(int(indices[np.argmax(bad)]))
        if self._feature_memo is None or self._feature_ready is None:
            self._feature_memo = np.zeros(
                (self.spec.num_frames, FEATURE_DIM), dtype=np.float64
            )
            self._feature_ready = np.zeros(self.spec.num_frames, dtype=bool)
        missing = np.unique(indices[~self._feature_ready[indices]])
        if missing.size:
            self._feature_memo[missing] = self._compute_feature_rows(missing)
            self._feature_ready[missing] = True
        return self._feature_memo[indices]

    def frame_features_reference(
        self, frame_indices: np.ndarray | list[int]
    ) -> np.ndarray:
        """Scalar per-frame reference implementation of :meth:`frame_features`.

        One Python loop per frame and per visible track, memoised in a
        per-frame dict — exactly the seed behaviour.  Kept as the ground
        truth the vectorized path is tested against (and as the baseline the
        perf-regression bench times).
        """
        indices = np.asarray(frame_indices, dtype=np.int64)
        out = np.zeros((indices.size, FEATURE_DIM), dtype=np.float64)
        for row, frame_index in enumerate(indices):
            out[row] = self._features_for(int(frame_index))
        return out

    # -- vectorized feature/geometry kernels ---------------------------------

    def _pair_positions(
        self, frame_indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Positions into the pair arrays for a batch of frames.

        Returns ``(row_of_pair, pair_pos)``: for every (frame, track) pair of
        every requested frame, the row of the requesting frame in the input
        batch and the pair's position in ``_pair_frames`` / ``_pair_tracks``.
        Pairs appear in the same order the scalar path iterates them.
        """
        starts = self._frame_offsets[frame_indices]
        lengths = self._frame_offsets[frame_indices + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        row_of_pair = np.repeat(np.arange(frame_indices.size, dtype=np.int64), lengths)
        cum = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(lengths)])
        pair_pos = (
            np.arange(total, dtype=np.int64)
            - np.repeat(cum[:-1], lengths)
            + np.repeat(starts, lengths)
        )
        return row_of_pair, pair_pos

    def _pair_boxes(
        self, pair_pos: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Clipped bounding boxes for (frame, track) pairs, as columns.

        Replicates ``Track.box_at(...).clip_to(width, height)`` operation for
        operation so the vectorized paths are bit-for-bit identical to the
        scalar ones.  Returns ``(track_idx, x_min, y_min, x_max, y_max)``.
        """
        track_idx = self._pair_tracks[pair_pos]
        elapsed = (self._pair_frames[pair_pos] - self._track_start[track_idx]).astype(
            np.float64
        )
        center_x = self._track_sx[track_idx] + self._track_vx[track_idx] * elapsed
        center_y = self._track_sy[track_idx] + self._track_vy[track_idx] * elapsed
        half_w = self._track_w[track_idx] / 2.0
        half_h = self._track_h[track_idx] / 2.0
        width = float(self.spec.width)
        height = float(self.spec.height)
        x_min = np.minimum(np.maximum(center_x - half_w, 0.0), width)
        y_min = np.minimum(np.maximum(center_y - half_h, 0.0), height)
        x_max = np.minimum(np.maximum(center_x + half_w, 0.0), width)
        y_max = np.minimum(np.maximum(center_y + half_h, 0.0), height)
        return track_idx, x_min, y_min, x_max, y_max

    def _compute_feature_rows(self, frames: np.ndarray) -> np.ndarray:
        """Feature matrix for a batch of frames, as one array program."""
        grid = FEATURE_GRID
        cell_w = self.spec.width / grid
        cell_h = self.spec.height / grid
        frame_area = float(self.spec.width * self.spec.height)
        out = np.zeros((frames.size, FEATURE_DIM), dtype=np.float64)
        row_of_pair, pair_pos = self._pair_positions(frames)
        if pair_pos.size:
            _, x_min, y_min, x_max, y_max = self._pair_boxes(pair_pos)
            track_idx = self._pair_tracks[pair_pos]
            area_fraction = ((x_max - x_min) * (y_max - y_min)) / frame_area
            center_x = (x_min + x_max) / 2.0
            center_y = (y_min + y_max) / 2.0
            col = np.clip(np.floor_divide(center_x, cell_w), 0, grid - 1).astype(
                np.int64
            )
            row = np.clip(np.floor_divide(center_y, cell_h), 0, grid - 1).astype(
                np.int64
            )
            cell = row * grid + col
            weight = np.minimum(1.0, 3.0 * np.sqrt(area_fraction))
            colors = self._track_color[track_idx]
            area_term = 10.0 * area_fraction
            base = row_of_pair * FEATURE_DIM + cell * FEATURE_CHANNELS
            flat = out.reshape(-1)
            # np.add.at is unbuffered: repeated cells accumulate in pair
            # order, matching the scalar loop's per-track addition order.
            np.add.at(flat, base + 0, weight * colors[:, 0] / 255.0)
            np.add.at(flat, base + 1, weight * colors[:, 1] / 255.0)
            np.add.at(flat, base + 2, weight * colors[:, 2] / 255.0)
            np.add.at(flat, base + 3, 1.0)
            np.add.at(flat, base + 4, area_term)
            global_base = row_of_pair * FEATURE_DIM
            np.add.at(flat, global_base + (FEATURE_DIM - 3), 1.0)
            np.add.at(flat, global_base + (FEATURE_DIM - 2), area_term)
        out[:, FEATURE_DIM - 1] = 0.5 + 0.1 * np.sin(
            2.0 * np.pi * frames / max(self.spec.num_frames, 1)
        )
        # Per-frame observation noise: the same Philox-keyed streams the
        # scalar path draws, produced by re-keying one bit generator.
        noise_streams = RekeyedPhilox(self.spec.seed & 0xFFFFFFFF)
        for row_idx, frame_index in enumerate(frames.tolist()):
            out[row_idx] += noise_streams.rekey(frame_index).normal(
                0.0, 0.03, size=FEATURE_DIM
            )
        return out

    def _features_for(self, frame_index: int) -> np.ndarray:
        cached = self._feature_cache.get(frame_index)
        if cached is not None:
            return cached
        self._check_frame(frame_index)
        grid = FEATURE_GRID
        cell_w = self.spec.width / grid
        cell_h = self.spec.height / grid
        features = np.zeros(FEATURE_DIM, dtype=np.float64)
        frame_area = float(self.spec.width * self.spec.height)
        total_occupancy = 0.0
        total_area = 0.0
        for track in self.tracks_at(frame_index):
            box = track.box_at(frame_index).clip_to(self.spec.width, self.spec.height)
            center = box.center
            col = min(grid - 1, max(0, int(center.x // cell_w)))
            row = min(grid - 1, max(0, int(center.y // cell_h)))
            cell = row * grid + col
            area_fraction = box.area / frame_area
            # Weight colour contributions by the object's *linear* size
            # fraction (square root of area).  A real specialized CNN sees the
            # frame resized to ~65x65 pixels, where visibility scales with
            # linear extent, so small-but-real objects (e.g. cars in the 4K
            # archie stream) stay above the observation-noise floor.
            weight = min(1.0, 3.0 * math.sqrt(area_fraction))
            base = cell * FEATURE_CHANNELS
            features[base + 0] += weight * track.color[0] / 255.0
            features[base + 1] += weight * track.color[1] / 255.0
            features[base + 2] += weight * track.color[2] / 255.0
            features[base + 3] += 1.0
            features[base + 4] += 10.0 * area_fraction
            total_occupancy += 1.0
            total_area += 10.0 * area_fraction
        features[-3] = total_occupancy
        features[-2] = total_area
        # Global brightness: background level plus slow variation over the day.
        features[-1] = 0.5 + 0.1 * math.sin(
            2.0 * math.pi * frame_index / max(self.spec.num_frames, 1)
        )
        noise_rng = np.random.Generator(
            np.random.Philox(key=[self.spec.seed & 0xFFFFFFFF, frame_index])
        )
        features += noise_rng.normal(0.0, 0.03, size=FEATURE_DIM)
        if len(self._feature_cache) < 500_000:
            self._feature_cache[frame_index] = features
        return features

    # -- columnar object access (vectorized detection path) ------------------

    def frame_object_table(self, frame_indices: np.ndarray | list[int]) -> "FrameObjectTable":
        """Columnar ground-truth objects for a batch of frames.

        The struct-of-arrays counterpart of calling :meth:`objects_at` per
        frame: one row per visible (frame, track) pair, in the exact order
        ``objects_at`` lists them, with boxes already clipped to the frame.
        The simulated detector's batch path consumes this instead of
        materialising ``GroundTruthObject`` instances.
        """
        indices = np.asarray(frame_indices, dtype=np.int64)
        bad = (indices < 0) | (indices >= self.spec.num_frames)
        if bad.any():
            self._check_frame(int(indices[np.argmax(bad)]))
        row_of_pair, pair_pos = self._pair_positions(indices)
        lengths = self._frame_offsets[indices + 1] - self._frame_offsets[indices]
        offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(lengths, dtype=np.int64)]
        )
        if pair_pos.size == 0:
            empty_f = np.zeros(0, dtype=np.float64)
            empty_i = np.zeros(0, dtype=np.int64)
            return FrameObjectTable(
                frame_row=empty_i,
                offsets=offsets,
                track_ids=empty_i,
                class_codes=empty_i,
                class_names=list(self._track_class_names),
                x_min=empty_f,
                y_min=empty_f,
                x_max=empty_f,
                y_max=empty_f,
                colors=np.zeros((0, 3), dtype=np.float64),
                color_codes=empty_i,
                color_names=list(self._track_color_names),
            )
        track_idx, x_min, y_min, x_max, y_max = self._pair_boxes(pair_pos)
        return FrameObjectTable(
            frame_row=row_of_pair,
            offsets=offsets,
            track_ids=self._track_id[track_idx],
            class_codes=self._track_class_code[track_idx],
            class_names=list(self._track_class_names),
            x_min=x_min,
            y_min=y_min,
            x_max=x_max,
            y_max=y_max,
            colors=self._track_color[track_idx],
            color_codes=self._track_color_code[track_idx],
            color_names=list(self._track_color_names),
        )

    # -- splitting -----------------------------------------------------------

    def slice(self, start_frame: int, end_frame: int, name: str | None = None) -> "SyntheticVideo":
        """Return a new video containing only ``[start_frame, end_frame)``.

        Track frame indices are re-based so the slice starts at frame zero,
        mirroring how the paper splits a stream into training / held-out /
        test days.
        """
        if not 0 <= start_frame < end_frame <= self.spec.num_frames:
            raise ValueError(
                f"invalid slice [{start_frame}, {end_frame}) of "
                f"{self.spec.num_frames} frames"
            )
        new_tracks = []
        for track in self.tracks:
            lo = max(track.start_frame, start_frame)
            hi = min(track.end_frame, end_frame)
            if lo >= hi:
                continue
            elapsed = lo - track.start_frame
            new_tracks.append(
                Track(
                    track_id=track.track_id,
                    object_class=track.object_class,
                    start_frame=lo - start_frame,
                    end_frame=hi - start_frame,
                    start_x=track.start_x + track.velocity_x * elapsed,
                    start_y=track.start_y + track.velocity_y * elapsed,
                    velocity_x=track.velocity_x,
                    velocity_y=track.velocity_y,
                    width=track.width,
                    height=track.height,
                    color_name=track.color_name,
                    color=track.color,
                )
            )
        new_spec = VideoSpec(
            name=name or f"{self.spec.name}[{start_frame}:{end_frame}]",
            width=self.spec.width,
            height=self.spec.height,
            fps=self.spec.fps,
            num_frames=end_frame - start_frame,
            object_classes=self.spec.object_classes,
            seed=self.spec.seed,
        )
        return SyntheticVideo(new_spec, new_tracks)
