"""Generative scene model that stands in for real video.

The paper's optimizations exploit statistical structure in video: objects
arrive and dwell for a while (temporal coherence), most frames are "boring"
(low counts), and high-count or unusual frames are rare and bursty.  This
module generates synthetic *tracks* — an object of some class entering the
scene, moving along a linear trajectory, and leaving — from a per-class
arrival process with diurnal and bursty rate modulation.  The resulting
per-frame ground truth is what the simulated object detector perturbs and what
specialized NNs learn to approximate from cheap frame features.

Nothing downstream of this module may read the ground truth directly without
paying the simulated detection cost; query execution goes through
:mod:`repro.detection`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.video.frame import COLOR_PALETTE, Frame, GroundTruthObject
from repro.video.geometry import BoundingBox

#: Number of grid cells along each axis used for the cheap frame features.
FEATURE_GRID = 4

#: Channels stored per grid cell: three colour channels (area-weighted), an
#: occupancy count, and a total-area channel.  The area channel is what lets
#: specialized models distinguish large object classes (buses, boats) from
#: small ones (cars, people) the way a tiny CNN would from appearance.
FEATURE_CHANNELS = 5

#: Length of the per-frame feature vector: the per-cell grid plus three global
#: terms (total object count proxy, total covered area, background brightness).
FEATURE_DIM = FEATURE_GRID * FEATURE_GRID * FEATURE_CHANNELS + 3


@dataclass(frozen=True)
class ObjectClassSpec:
    """Statistical description of one object class in a scenario.

    Parameters
    ----------
    name:
        Object class label (``"car"``, ``"bus"``, ``"boat"``, ``"person"``).
    arrival_rate:
        Mean number of new tracks per frame before rate modulation.
    mean_duration:
        Mean dwell time of a track, in frames.
    size_range:
        ``(min, max)`` box side length in pixels; width and height are drawn
        independently from this range.
    color_weights:
        Mapping from colour name (see :data:`~repro.video.frame.COLOR_PALETTE`)
        to sampling weight.
    burstiness:
        Strength of the bursty rate modulation in ``[0, 1)``; higher values
        produce occasional frames with many simultaneous objects.
    region:
        ``(x_min, y_min, x_max, y_max)`` fraction of the frame in which the
        class appears; used by spatial-filter experiments.
    speed:
        Mean speed in pixels per frame.
    """

    name: str
    arrival_rate: float
    mean_duration: float
    size_range: tuple[float, float]
    color_weights: dict[str, float]
    burstiness: float = 0.3
    region: tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0)
    speed: float = 4.0


@dataclass(frozen=True)
class VideoSpec:
    """Full description of a synthetic video."""

    name: str
    width: int
    height: int
    fps: float
    num_frames: int
    object_classes: tuple[ObjectClassSpec, ...]
    seed: int = 0

    @property
    def duration_seconds(self) -> float:
        """Length of the video in seconds."""
        return self.num_frames / self.fps

    def class_spec(self, name: str) -> ObjectClassSpec:
        """Look up the spec for one object class."""
        for spec in self.object_classes:
            if spec.name == name:
                return spec
        raise KeyError(f"no object class named {name!r} in video {self.name!r}")


@dataclass(frozen=True)
class Track:
    """A single object track: one object visible over a contiguous frame range."""

    track_id: int
    object_class: str
    start_frame: int
    end_frame: int  # exclusive
    start_x: float
    start_y: float
    velocity_x: float
    velocity_y: float
    width: float
    height: float
    color_name: str
    color: tuple[float, float, float]

    @property
    def duration(self) -> int:
        """Number of frames the track is visible."""
        return self.end_frame - self.start_frame

    def box_at(self, frame_index: int) -> BoundingBox:
        """Bounding box of the object at a given frame."""
        if not self.start_frame <= frame_index < self.end_frame:
            raise ValueError(
                f"frame {frame_index} outside track range "
                f"[{self.start_frame}, {self.end_frame})"
            )
        elapsed = frame_index - self.start_frame
        center_x = self.start_x + self.velocity_x * elapsed
        center_y = self.start_y + self.velocity_y * elapsed
        return BoundingBox.from_center(center_x, center_y, self.width, self.height)

    def visible_at(self, frame_index: int) -> bool:
        """Whether the track is visible at the given frame."""
        return self.start_frame <= frame_index < self.end_frame


def _rate_profile(
    num_frames: int, base_rate: float, burstiness: float, rng: np.random.Generator
) -> np.ndarray:
    """Per-frame arrival rate: diurnal sinusoid plus random bursts.

    The sinusoid models slow traffic-volume variation over the day; the bursts
    model rush periods, which is what makes high simultaneous counts possible
    but rare (the structure the scrubbing experiments need).
    """
    frames = np.arange(num_frames)
    # One and a half slow cycles over the video, amplitude 40% of the base.
    diurnal = 1.0 + 0.4 * np.sin(2.0 * np.pi * 1.5 * frames / max(num_frames, 1))
    rate = base_rate * diurnal
    if burstiness > 0:
        n_bursts = max(1, int(num_frames / 4000))
        burst_starts = rng.integers(0, max(num_frames - 1, 1), size=n_bursts)
        burst_lengths = rng.integers(100, 600, size=n_bursts)
        burst_gains = 1.0 + burstiness * rng.uniform(2.0, 6.0, size=n_bursts)
        for start, length, gain in zip(burst_starts, burst_lengths, burst_gains):
            end = min(num_frames, int(start + length))
            rate[start:end] *= gain
    return rate


class SyntheticVideo:
    """A fully generated synthetic video.

    The video is represented compactly as a list of :class:`Track` objects
    plus index arrays that map frame indices to the tracks visible in them.
    Frames (with ground-truth objects and cheap features) are materialised on
    demand.
    """

    def __init__(self, spec: VideoSpec, tracks: list[Track]) -> None:
        self.spec = spec
        self.tracks = tracks
        self._build_index()
        self._feature_cache: dict[int, np.ndarray] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def generate(cls, spec: VideoSpec) -> "SyntheticVideo":
        """Generate a video from a :class:`VideoSpec`."""
        rng = np.random.default_rng(spec.seed)
        tracks: list[Track] = []
        track_id = 0
        for class_spec in spec.object_classes:
            rate = _rate_profile(
                spec.num_frames, class_spec.arrival_rate, class_spec.burstiness, rng
            )
            arrivals = rng.poisson(rate)
            arrival_frames = np.repeat(np.arange(spec.num_frames), arrivals)
            region = class_spec.region
            x_lo, x_hi = region[0] * spec.width, region[2] * spec.width
            y_lo, y_hi = region[1] * spec.height, region[3] * spec.height
            color_names = list(class_spec.color_weights.keys())
            weights = np.array(list(class_spec.color_weights.values()), dtype=float)
            weights = weights / weights.sum()
            for start in arrival_frames:
                duration = max(2, int(rng.exponential(class_spec.mean_duration)))
                end = min(spec.num_frames, int(start) + duration)
                if end <= start:
                    continue
                width = rng.uniform(*class_spec.size_range)
                height = rng.uniform(*class_spec.size_range)
                start_x = rng.uniform(x_lo, x_hi)
                start_y = rng.uniform(y_lo, y_hi)
                angle = rng.uniform(0.0, 2.0 * math.pi)
                speed = max(0.0, rng.normal(class_spec.speed, class_spec.speed * 0.25))
                color_name = str(rng.choice(color_names, p=weights))
                tracks.append(
                    Track(
                        track_id=track_id,
                        object_class=class_spec.name,
                        start_frame=int(start),
                        end_frame=int(end),
                        start_x=start_x,
                        start_y=start_y,
                        velocity_x=speed * math.cos(angle),
                        velocity_y=speed * math.sin(angle),
                        width=width,
                        height=height,
                        color_name=color_name,
                        color=COLOR_PALETTE[color_name],
                    )
                )
                track_id += 1
        tracks.sort(key=lambda t: (t.start_frame, t.track_id))
        return cls(spec, tracks)

    def _build_index(self) -> None:
        """Build (frame, track) pair arrays for fast per-frame lookups."""
        if not self.tracks:
            self._pair_frames = np.zeros(0, dtype=np.int64)
            self._pair_tracks = np.zeros(0, dtype=np.int64)
            self._frame_offsets = np.zeros(self.spec.num_frames + 1, dtype=np.int64)
            return
        frame_chunks = []
        track_chunks = []
        for idx, track in enumerate(self.tracks):
            frames = np.arange(track.start_frame, track.end_frame, dtype=np.int64)
            frame_chunks.append(frames)
            track_chunks.append(np.full(frames.shape, idx, dtype=np.int64))
        pair_frames = np.concatenate(frame_chunks)
        pair_tracks = np.concatenate(track_chunks)
        order = np.argsort(pair_frames, kind="stable")
        self._pair_frames = pair_frames[order]
        self._pair_tracks = pair_tracks[order]
        # Offsets so that tracks visible at frame f live in
        # _pair_tracks[_frame_offsets[f]:_frame_offsets[f + 1]].
        counts = np.bincount(self._pair_frames, minlength=self.spec.num_frames)
        self._frame_offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
        )

    # -- basic accessors ----------------------------------------------------

    @property
    def name(self) -> str:
        """Name of the video (scenario name plus split)."""
        return self.spec.name

    @property
    def num_frames(self) -> int:
        """Number of frames in the video."""
        return self.spec.num_frames

    @property
    def fps(self) -> float:
        """Frame rate of the video."""
        return self.spec.fps

    @property
    def object_class_names(self) -> list[str]:
        """Names of the object classes present in the scenario spec."""
        return [spec.name for spec in self.spec.object_classes]

    def timestamp_of(self, frame_index: int) -> float:
        """Timestamp in seconds of a frame index."""
        return frame_index / self.spec.fps

    def frame_of_timestamp(self, timestamp: float) -> int:
        """Frame index corresponding to a timestamp in seconds."""
        return int(round(timestamp * self.spec.fps))

    # -- ground truth access (internal to the substrate) --------------------

    def tracks_at(self, frame_index: int) -> list[Track]:
        """Tracks visible at a frame index."""
        self._check_frame(frame_index)
        lo = self._frame_offsets[frame_index]
        hi = self._frame_offsets[frame_index + 1]
        return [self.tracks[i] for i in self._pair_tracks[lo:hi]]

    def objects_at(self, frame_index: int) -> list[GroundTruthObject]:
        """Ground-truth objects visible at a frame index."""
        objects = []
        for track in self.tracks_at(frame_index):
            objects.append(
                GroundTruthObject(
                    track_id=track.track_id,
                    object_class=track.object_class,
                    box=track.box_at(frame_index).clip_to(
                        self.spec.width, self.spec.height
                    ),
                    color=track.color,
                    color_name=track.color_name,
                )
            )
        return objects

    def get_frame(self, frame_index: int, with_features: bool = False) -> Frame:
        """Materialise a frame, optionally with its feature vector."""
        self._check_frame(frame_index)
        frame = Frame(
            index=frame_index,
            timestamp=self.timestamp_of(frame_index),
            width=self.spec.width,
            height=self.spec.height,
            objects=self.objects_at(frame_index),
        )
        if with_features:
            frame.features = self.frame_features(np.array([frame_index]))[0]
        return frame

    def _check_frame(self, frame_index: int) -> None:
        if not 0 <= frame_index < self.spec.num_frames:
            raise IndexError(
                f"frame {frame_index} out of range for video of "
                f"{self.spec.num_frames} frames"
            )

    # -- aggregate ground truth (used by tests and benchmark harnesses) -----

    def class_counts(self, object_class: str) -> np.ndarray:
        """Per-frame ground-truth count of one object class.

        This is the quantity the simulated "full object detector" reports
        (up to its noise model); benchmark harnesses use it to compute the
        true value of aggregate queries.
        """
        counts = np.zeros(self.spec.num_frames, dtype=np.int64)
        for track in self.tracks:
            if track.object_class == object_class:
                counts[track.start_frame : track.end_frame] += 1
        return counts

    def occupancy(self, object_class: str) -> float:
        """Fraction of frames in which at least one object of the class appears."""
        counts = self.class_counts(object_class)
        if counts.size == 0:
            return 0.0
        return float(np.mean(counts > 0))

    def distinct_count(self, object_class: str) -> int:
        """Number of distinct tracks of the class (the paper's "distinct count")."""
        return sum(1 for track in self.tracks if track.object_class == object_class)

    def mean_duration_seconds(self, object_class: str) -> float:
        """Mean dwell time of tracks of the class, in seconds."""
        durations = [
            track.duration for track in self.tracks if track.object_class == object_class
        ]
        if not durations:
            return 0.0
        return float(np.mean(durations)) / self.spec.fps

    def max_count(self, object_class: str) -> int:
        """Maximum simultaneous count of the class over the whole video."""
        counts = self.class_counts(object_class)
        if counts.size == 0:
            return 0
        return int(counts.max())

    # -- cheap frame features ------------------------------------------------

    def frame_features(self, frame_indices: np.ndarray | list[int]) -> np.ndarray:
        """Cheap per-frame features used by specialized NNs and content filters.

        For each frame we compute a ``FEATURE_GRID x FEATURE_GRID`` grid; each
        cell accumulates the colours of objects whose centre falls in it
        (weighted by relative object area) and an occupancy count.  A global
        brightness term and per-frame observation noise are added.  The noise
        is deterministic per frame so repeated reads agree.
        """
        indices = np.asarray(frame_indices, dtype=np.int64)
        out = np.zeros((indices.size, FEATURE_DIM), dtype=np.float64)
        for row, frame_index in enumerate(indices):
            out[row] = self._features_for(int(frame_index))
        return out

    def _features_for(self, frame_index: int) -> np.ndarray:
        cached = self._feature_cache.get(frame_index)
        if cached is not None:
            return cached
        self._check_frame(frame_index)
        grid = FEATURE_GRID
        cell_w = self.spec.width / grid
        cell_h = self.spec.height / grid
        features = np.zeros(FEATURE_DIM, dtype=np.float64)
        frame_area = float(self.spec.width * self.spec.height)
        total_occupancy = 0.0
        total_area = 0.0
        for track in self.tracks_at(frame_index):
            box = track.box_at(frame_index).clip_to(self.spec.width, self.spec.height)
            center = box.center
            col = min(grid - 1, max(0, int(center.x // cell_w)))
            row = min(grid - 1, max(0, int(center.y // cell_h)))
            cell = row * grid + col
            area_fraction = box.area / frame_area
            # Weight colour contributions by the object's *linear* size
            # fraction (square root of area).  A real specialized CNN sees the
            # frame resized to ~65x65 pixels, where visibility scales with
            # linear extent, so small-but-real objects (e.g. cars in the 4K
            # archie stream) stay above the observation-noise floor.
            weight = min(1.0, 3.0 * math.sqrt(area_fraction))
            base = cell * FEATURE_CHANNELS
            features[base + 0] += weight * track.color[0] / 255.0
            features[base + 1] += weight * track.color[1] / 255.0
            features[base + 2] += weight * track.color[2] / 255.0
            features[base + 3] += 1.0
            features[base + 4] += 10.0 * area_fraction
            total_occupancy += 1.0
            total_area += 10.0 * area_fraction
        features[-3] = total_occupancy
        features[-2] = total_area
        # Global brightness: background level plus slow variation over the day.
        features[-1] = 0.5 + 0.1 * math.sin(
            2.0 * math.pi * frame_index / max(self.spec.num_frames, 1)
        )
        noise_rng = np.random.Generator(
            np.random.Philox(key=[self.spec.seed & 0xFFFFFFFF, frame_index])
        )
        features += noise_rng.normal(0.0, 0.03, size=FEATURE_DIM)
        if len(self._feature_cache) < 500_000:
            self._feature_cache[frame_index] = features
        return features

    # -- splitting -----------------------------------------------------------

    def slice(self, start_frame: int, end_frame: int, name: str | None = None) -> "SyntheticVideo":
        """Return a new video containing only ``[start_frame, end_frame)``.

        Track frame indices are re-based so the slice starts at frame zero,
        mirroring how the paper splits a stream into training / held-out /
        test days.
        """
        if not 0 <= start_frame < end_frame <= self.spec.num_frames:
            raise ValueError(
                f"invalid slice [{start_frame}, {end_frame}) of "
                f"{self.spec.num_frames} frames"
            )
        new_tracks = []
        for track in self.tracks:
            lo = max(track.start_frame, start_frame)
            hi = min(track.end_frame, end_frame)
            if lo >= hi:
                continue
            elapsed = lo - track.start_frame
            new_tracks.append(
                Track(
                    track_id=track.track_id,
                    object_class=track.object_class,
                    start_frame=lo - start_frame,
                    end_frame=hi - start_frame,
                    start_x=track.start_x + track.velocity_x * elapsed,
                    start_y=track.start_y + track.velocity_y * elapsed,
                    velocity_x=track.velocity_x,
                    velocity_y=track.velocity_y,
                    width=track.width,
                    height=track.height,
                    color_name=track.color_name,
                    color=track.color,
                )
            )
        new_spec = VideoSpec(
            name=name or f"{self.spec.name}[{start_frame}:{end_frame}]",
            width=self.spec.width,
            height=self.spec.height,
            fps=self.spec.fps,
            num_frames=end_frame - start_frame,
            object_classes=self.spec.object_classes,
            seed=self.spec.seed,
        )
        return SyntheticVideo(new_spec, new_tracks)
