"""Simulated video decode cost model.

The paper excludes decode time from its throughput measurements (Section
10.1), but decoding is still part of the ingestion pipeline (Section 9), so
the reproduction models it explicitly and excludes it from the same reported
numbers.  Decode cost scales with resolution relative to 720p.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.runtime import OperatorCost, RuntimeLedger, StandardCosts


@dataclass(frozen=True)
class DecodeCostModel:
    """Per-frame decode cost as a function of resolution.

    Parameters
    ----------
    base_cost:
        Decode cost for a 720p frame.
    reference_pixels:
        Pixel count the base cost refers to (1280x720 by default).
    """

    base_cost: OperatorCost = StandardCosts.VIDEO_DECODE
    reference_pixels: int = 1280 * 720

    def cost_for_resolution(self, width: int, height: int) -> OperatorCost:
        """Decode cost for a frame of the given resolution."""
        scale = (width * height) / self.reference_pixels
        return OperatorCost(
            name=self.base_cost.name,
            seconds_per_call=self.base_cost.seconds_per_call * scale,
        )

    def charge_decode(
        self, ledger: RuntimeLedger, width: int, height: int, num_frames: int
    ) -> float:
        """Charge the decode cost of ``num_frames`` frames to a ledger."""
        return ledger.charge(self.cost_for_resolution(width, height), num_frames)
