"""Frame-level representations of the synthetic video.

A :class:`Frame` is what the rest of the system sees when it asks the video
store for a specific timestamp: the frame index, the list of ground-truth
objects visible in it (used by the simulated detector), and a cheap feature
vector (used by specialized NNs and content filters in place of real pixels).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.video.geometry import BoundingBox

# Canonical colours used by the synthetic scene generator.  UDFs such as
# ``redness`` operate on the per-object colour plus observation noise.
COLOR_PALETTE: dict[str, tuple[float, float, float]] = {
    "red": (200.0, 40.0, 40.0),
    "white": (220.0, 220.0, 220.0),
    "blue": (40.0, 60.0, 200.0),
    "black": (30.0, 30.0, 30.0),
    "silver": (170.0, 170.0, 180.0),
    "yellow": (220.0, 200.0, 40.0),
    "green": (40.0, 170.0, 60.0),
    "brown": (120.0, 80.0, 40.0),
}


@dataclass(frozen=True)
class GroundTruthObject:
    """An object visible in a single frame of the synthetic world.

    This is the *ground truth* the simulated detector perturbs; it is never
    exposed directly to query execution (which must pay for detection).
    """

    track_id: int
    object_class: str
    box: BoundingBox
    color: tuple[float, float, float]
    color_name: str

    @property
    def area(self) -> float:
        """Area of the object's bounding box in square pixels."""
        return self.box.area


@dataclass
class Frame:
    """A single frame of video.

    Attributes
    ----------
    index:
        Zero-based frame index within the video.
    timestamp:
        Seconds since the start of the video (``index / fps``).
    width, height:
        Frame resolution in pixels.
    objects:
        Ground-truth objects visible in the frame.
    features:
        Cheap per-frame feature vector (grid colour/occupancy summary with
        observation noise).  Computed lazily by the video store; ``None``
        until requested.
    """

    index: int
    timestamp: float
    width: int
    height: int
    objects: list[GroundTruthObject] = field(default_factory=list)
    features: np.ndarray | None = None

    def objects_of_class(self, object_class: str) -> list[GroundTruthObject]:
        """Objects in the frame with the given class."""
        return [obj for obj in self.objects if obj.object_class == object_class]

    def count(self, object_class: str | None = None) -> int:
        """Number of objects, optionally restricted to one class."""
        if object_class is None:
            return len(self.objects)
        return sum(1 for obj in self.objects if obj.object_class == object_class)

    @property
    def is_empty(self) -> bool:
        """Whether no objects are visible in the frame."""
        return not self.objects
