"""Video store: named access to registered videos.

The store plays the role of the paper's OpenCV ingestion layer (Section 9):
it hands out frames and per-frame features, charging decode cost to a runtime
ledger when one is supplied.  FrameQL queries reference videos by name
(``FROM taipei``); the store is where those names are resolved.
"""

from __future__ import annotations

import numpy as np

from repro.errors import UnknownVideoError
from repro.metrics.runtime import RuntimeLedger
from repro.video.codec import DecodeCostModel
from repro.video.frame import Frame
from repro.video.synthetic import SyntheticVideo


class VideoStore:
    """Registry of videos addressable by name."""

    def __init__(self, decode_model: DecodeCostModel | None = None) -> None:
        self._videos: dict[str, SyntheticVideo] = {}
        self._decode_model = decode_model or DecodeCostModel()

    def register(self, name: str, video: SyntheticVideo) -> None:
        """Register a video under ``name``, replacing any previous entry."""
        self._videos[name] = video

    def unregister(self, name: str) -> None:
        """Remove a video from the store."""
        self._videos.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._videos

    def names(self) -> list[str]:
        """Names of all registered videos."""
        return sorted(self._videos)

    def get(self, name: str) -> SyntheticVideo:
        """Look up a video by name."""
        try:
            return self._videos[name]
        except KeyError as exc:
            available = ", ".join(self.names()) or "<none>"
            raise UnknownVideoError(
                f"video {name!r} is not registered (available: {available})"
            ) from exc

    def get_frame(
        self,
        name: str,
        frame_index: int,
        ledger: RuntimeLedger | None = None,
        with_features: bool = False,
    ) -> Frame:
        """Fetch one decoded frame, charging decode cost if a ledger is given."""
        video = self.get(name)
        if ledger is not None:
            self._decode_model.charge_decode(
                ledger, video.spec.width, video.spec.height, 1
            )
        return video.get_frame(frame_index, with_features=with_features)

    def frame_features(
        self,
        name: str,
        frame_indices: np.ndarray | list[int],
        ledger: RuntimeLedger | None = None,
    ) -> np.ndarray:
        """Fetch cheap features for many frames, charging decode cost once per frame."""
        video = self.get(name)
        indices = np.asarray(frame_indices, dtype=np.int64)
        if ledger is not None:
            self._decode_model.charge_decode(
                ledger, video.spec.width, video.spec.height, int(indices.size)
            )
        return video.frame_features(indices)

    def num_frames(self, name: str) -> int:
        """Number of frames in a registered video."""
        return self.get(name).num_frames
