"""Physical plan interface: the pull-based streaming execution protocol.

Every plan executes as a generator of typed
:class:`~repro.core.events.ExecutionEvent` objects (``Progress``,
``EstimateUpdate``, ``ScrubbingHit``, ``SelectionWindow``, terminated by a
single ``Completed`` carrying the full result).  Three consumption styles are
built on the one abstract hook ``_stream``:

* :meth:`PhysicalPlan.run` — the raw event generator (used by
  ``session.stream()``);
* :meth:`PhysicalPlan.open` — a :class:`PlanCursor` with explicit
  ``next_batch()`` / ``close()`` for pull-based executors;
* :meth:`PhysicalPlan.execute` — blocking execution, defined as draining the
  stream and returning the terminal result, so blocking and streamed results
  are identical by construction.
"""

from __future__ import annotations

import abc
from collections.abc import Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.context import ExecutionContext
from repro.core.events import (
    DEFAULT_BATCH_SIZE,
    Completed,
    ExecutionControl,
    ExecutionEvent,
    timed_stream,
)
from repro.core.results import OperatorNode, QueryResult
from repro.errors import ExecutionError
from repro.metrics.runtime import StandardCosts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.statistics import VideoStatistics


@dataclass(frozen=True)
class CostEstimate:
    """Estimated cost of one physical plan (or one operator), pre-execution.

    Detector invocations dominate every realistic query, so they are tracked
    both as a count (the unit the paper reasons in) and as simulated seconds;
    the remaining buckets separate specialization training, specialized-NN
    inference and simple-filter passes so explanations can show where the
    non-detector time goes.
    """

    detector_calls: int = 0
    detector_seconds: float = 0.0
    training_seconds: float = 0.0
    inference_seconds: float = 0.0
    filter_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Total estimated simulated runtime."""
        return (
            self.detector_seconds
            + self.training_seconds
            + self.inference_seconds
            + self.filter_seconds
        )

    def describe(self) -> str:
        """Compact human-readable form used by plan explanations."""
        return f"~{self.detector_calls} detector calls, ~{self.total_seconds:.2f}s"


class PhysicalPlan(abc.ABC):
    """A runnable execution strategy for one query."""

    #: The cost estimate the optimizer priced this plan at when it chose it
    #: (``None`` for plans built outside the optimizer).  The parallelism
    #: model reads it so its "expected detector work" agrees with the very
    #: numbers the plan was selected on.
    planned_cost: CostEstimate | None = None

    @abc.abstractmethod
    def _stream(
        self, context: ExecutionContext, control: ExecutionControl
    ) -> Iterator[ExecutionEvent]:
        """Yield execution events, ending with exactly one ``Completed``.

        Implementations check ``control`` at every batch boundary (stop
        conditions, cooperative cancellation) and always finalise a
        well-formed — possibly partial — result.
        """

    def _default_control(self) -> ExecutionControl:
        """A fresh control honouring the plan's hints (chunk size only)."""
        hints = getattr(self, "hints", None)
        batch_size = getattr(hints, "batch_size", None)
        return ExecutionControl(
            batch_size=batch_size if batch_size is not None else DEFAULT_BATCH_SIZE
        )

    def run(
        self, context: ExecutionContext, control: ExecutionControl | None = None
    ) -> Iterator[ExecutionEvent]:
        """The plan's event stream, with per-execution ledger bookkeeping."""
        return timed_stream(
            self._stream(context, control or self._default_control())
        )

    def open(
        self, context: ExecutionContext, control: ExecutionControl | None = None
    ) -> PlanCursor:
        """Open a pull-based cursor over the plan's event stream."""
        control = control or self._default_control()
        return PlanCursor(self.run(context, control), control)

    def execute(
        self, context: ExecutionContext, control: ExecutionControl | None = None
    ) -> QueryResult:
        """Execute the plan to completion by draining its event stream."""
        result: QueryResult | None = None
        for event in self.run(context, control):
            if isinstance(event, Completed):
                result = event.result
        if result is None:
            raise ExecutionError(
                f"{type(self).__name__} finished without a Completed event"
            )
        return result

    def describe(self) -> str:
        """Human-readable description of the plan."""
        return type(self).__name__

    def parallel_profitable(self, context: ExecutionContext) -> bool:
        """Statistics-free fallback gate for *default* parallelism routing.

        When hints or the engine configuration route a query through the
        parallel engine and the statistics catalog has an entry for the
        video, the optimizer's :class:`~repro.optimizer.cost.ParallelismModel`
        prices the decision per query and this hook is not consulted.  It
        remains the fallback when no statistics exist: a plan that knows
        sharded prefetch cannot pay off (e.g. an importance-ordered scrubbing
        scan, whose ranked access order defeats contiguous-shard speculation)
        returns ``False`` and runs on the classic sequential path.  An
        explicit per-call ``parallelism=`` always wins — the caller asked for
        shards, they get shards.
        """
        return True

    def operator_tree(
        self,
        num_frames: int | None = None,
        stats: VideoStatistics | None = None,
    ) -> OperatorNode:
        """The plan's operator tree, for structured explanations.

        Plans that pick their strategy at execution time (e.g. Algorithm 1's
        accuracy gate) report the full decision pipeline rather than the
        branch that will eventually run.  When ``num_frames`` and ``stats``
        are given, nodes carry per-operator cost estimates (detector calls
        and simulated seconds) from the statistics catalog.
        """
        return OperatorNode(name=type(self).__name__)

    def estimate_detector_calls(
        self, num_frames: int, stats: VideoStatistics | None = None
    ) -> int:
        """Upper estimate of detector invocations over ``num_frames``.

        The contract (checked by the estimate-invariant tests) is that the
        estimate *bounds* the ``detector_calls`` the execution ledger will
        actually record under default statistics.  The conservative default
        is an exhaustive scan; plans tighten it when ``stats`` from the
        statistics catalog make a smaller bound defensible.
        """
        return num_frames

    def estimate_cost(
        self, num_frames: int, stats: VideoStatistics | None = None
    ) -> CostEstimate:
        """Full cost estimate: detector calls plus specialization overheads.

        The default prices the detector-call estimate at the catalog's
        per-call detector cost (falling back to the paper's Mask R-CNN rate);
        plans with training or filtering stages override to fill the other
        buckets.
        """
        calls = self.estimate_detector_calls(num_frames, stats)
        per_call = (
            stats.detector_seconds_per_call
            if stats is not None
            else StandardCosts.MASK_RCNN.seconds_per_call
        )
        return CostEstimate(detector_calls=calls, detector_seconds=calls * per_call)


class PlanCursor:
    """Explicit ``open()/next_batch()/close()`` adapter over a plan's stream.

    The cursor form of the streaming protocol, for executors that pull work
    in discrete steps rather than iterating a generator.  ``next_batch``
    returns up to ``max_events`` events (default: the control's batch size)
    and an empty list once the stream is exhausted.
    """

    def __init__(
        self, events: Iterator[ExecutionEvent], control: ExecutionControl
    ) -> None:
        self._events = events
        self.control = control
        self._exhausted = False
        self._result: QueryResult | None = None

    @property
    def result(self) -> QueryResult | None:
        """The terminal result, once the ``Completed`` event has been pulled."""
        return self._result

    @property
    def exhausted(self) -> bool:
        """Whether the underlying stream has ended."""
        return self._exhausted

    def next_batch(self, max_events: int | None = None) -> list[ExecutionEvent]:
        """Pull up to ``max_events`` events; empty list means the stream ended."""
        if self._exhausted:
            return []
        count = max_events if max_events is not None else self.control.batch_size
        if count < 1:
            raise ValueError(f"max_events must be >= 1, got {count}")
        batch: list[ExecutionEvent] = []
        for event in self._events:
            batch.append(event)
            if isinstance(event, Completed):
                self._result = event.result
                self._exhausted = True
                break
            if len(batch) >= count:
                break
        else:
            self._exhausted = True
        return batch

    def close(self) -> None:
        """Cancel the execution and dispose of the underlying generator."""
        self.control.cancel()
        closer = getattr(self._events, "close", None)
        if closer is not None:
            closer()
        self._exhausted = True
