"""Physical plan interface."""

from __future__ import annotations

import abc

from repro.core.context import ExecutionContext
from repro.core.results import OperatorNode, QueryResult


class PhysicalPlan(abc.ABC):
    """A runnable execution strategy for one query."""

    @abc.abstractmethod
    def execute(self, context: ExecutionContext) -> QueryResult:
        """Execute the plan against the unseen video and return the result."""

    def describe(self) -> str:
        """Human-readable description of the plan."""
        return type(self).__name__

    def operator_tree(self) -> OperatorNode:
        """The plan's operator tree, for structured explanations.

        Plans that pick their strategy at execution time (e.g. Algorithm 1's
        accuracy gate) report the full decision pipeline rather than the
        branch that will eventually run.
        """
        return OperatorNode(name=type(self).__name__)

    def estimate_detector_calls(self, num_frames: int) -> int:
        """Rough upper estimate of detector invocations over ``num_frames``.

        Used only for explanations, never for planning; the conservative
        default is an exhaustive scan.
        """
        return num_frames
