"""Physical plan interface."""

from __future__ import annotations

import abc

from repro.core.context import ExecutionContext
from repro.core.results import QueryResult


class PhysicalPlan(abc.ABC):
    """A runnable execution strategy for one query."""

    @abc.abstractmethod
    def execute(self, context: ExecutionContext) -> QueryResult:
        """Execute the plan against the unseen video and return the result."""

    def describe(self) -> str:
        """Human-readable description of the plan."""
        return type(self).__name__
