"""Physical plan interface: the pull-based streaming execution protocol.

Every plan executes as a generator of typed
:class:`~repro.core.events.ExecutionEvent` objects (``Progress``,
``EstimateUpdate``, ``ScrubbingHit``, ``SelectionWindow``, terminated by a
single ``Completed`` carrying the full result).  Three consumption styles are
built on the one abstract hook ``_stream``:

* :meth:`PhysicalPlan.run` — the raw event generator (used by
  ``session.stream()``);
* :meth:`PhysicalPlan.open` — a :class:`PlanCursor` with explicit
  ``next_batch()`` / ``close()`` for pull-based executors;
* :meth:`PhysicalPlan.execute` — blocking execution, defined as draining the
  stream and returning the terminal result, so blocking and streamed results
  are identical by construction.
"""

from __future__ import annotations

import abc
from collections.abc import Iterator

from repro.core.context import ExecutionContext
from repro.core.events import (
    DEFAULT_BATCH_SIZE,
    Completed,
    ExecutionControl,
    ExecutionEvent,
    timed_stream,
)
from repro.core.results import OperatorNode, QueryResult
from repro.errors import ExecutionError


class PhysicalPlan(abc.ABC):
    """A runnable execution strategy for one query."""

    @abc.abstractmethod
    def _stream(
        self, context: ExecutionContext, control: ExecutionControl
    ) -> Iterator[ExecutionEvent]:
        """Yield execution events, ending with exactly one ``Completed``.

        Implementations check ``control`` at every batch boundary (stop
        conditions, cooperative cancellation) and always finalise a
        well-formed — possibly partial — result.
        """

    def _default_control(self) -> ExecutionControl:
        """A fresh control honouring the plan's hints (chunk size only)."""
        hints = getattr(self, "hints", None)
        batch_size = getattr(hints, "batch_size", None)
        return ExecutionControl(
            batch_size=batch_size if batch_size is not None else DEFAULT_BATCH_SIZE
        )

    def run(
        self, context: ExecutionContext, control: ExecutionControl | None = None
    ) -> Iterator[ExecutionEvent]:
        """The plan's event stream, with per-execution ledger bookkeeping."""
        return timed_stream(
            self._stream(context, control or self._default_control())
        )

    def open(
        self, context: ExecutionContext, control: ExecutionControl | None = None
    ) -> PlanCursor:
        """Open a pull-based cursor over the plan's event stream."""
        control = control or self._default_control()
        return PlanCursor(self.run(context, control), control)

    def execute(
        self, context: ExecutionContext, control: ExecutionControl | None = None
    ) -> QueryResult:
        """Execute the plan to completion by draining its event stream."""
        result: QueryResult | None = None
        for event in self.run(context, control):
            if isinstance(event, Completed):
                result = event.result
        if result is None:
            raise ExecutionError(
                f"{type(self).__name__} finished without a Completed event"
            )
        return result

    def describe(self) -> str:
        """Human-readable description of the plan."""
        return type(self).__name__

    def operator_tree(self) -> OperatorNode:
        """The plan's operator tree, for structured explanations.

        Plans that pick their strategy at execution time (e.g. Algorithm 1's
        accuracy gate) report the full decision pipeline rather than the
        branch that will eventually run.
        """
        return OperatorNode(name=type(self).__name__)

    def estimate_detector_calls(self, num_frames: int) -> int:
        """Rough upper estimate of detector invocations over ``num_frames``.

        Used only for explanations, never for planning; the conservative
        default is an exhaustive scan.
        """
        return num_frames


class PlanCursor:
    """Explicit ``open()/next_batch()/close()`` adapter over a plan's stream.

    The cursor form of the streaming protocol, for executors that pull work
    in discrete steps rather than iterating a generator.  ``next_batch``
    returns up to ``max_events`` events (default: the control's batch size)
    and an empty list once the stream is exhausted.
    """

    def __init__(
        self, events: Iterator[ExecutionEvent], control: ExecutionControl
    ) -> None:
        self._events = events
        self.control = control
        self._exhausted = False
        self._result: QueryResult | None = None

    @property
    def result(self) -> QueryResult | None:
        """The terminal result, once the ``Completed`` event has been pulled."""
        return self._result

    @property
    def exhausted(self) -> bool:
        """Whether the underlying stream has ended."""
        return self._exhausted

    def next_batch(self, max_events: int | None = None) -> list[ExecutionEvent]:
        """Pull up to ``max_events`` events; empty list means the stream ended."""
        if self._exhausted:
            return []
        count = max_events if max_events is not None else self.control.batch_size
        if count < 1:
            raise ValueError(f"max_events must be >= 1, got {count}")
        batch: list[ExecutionEvent] = []
        for event in self._events:
            batch.append(event)
            if isinstance(event, Completed):
                self._result = event.result
                self._exhausted = True
                break
            if len(batch) >= count:
                break
        else:
            self._exhausted = True
        return batch

    def close(self) -> None:
        """Cancel the execution and dispose of the underlying generator."""
        self.control.cancel()
        closer = getattr(self._events, "close", None)
        if closer is not None:
            closer()
        self._exhausted = True
