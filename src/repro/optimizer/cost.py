"""Cost-based plan selection over the physical operator library (Section 5).

The optimizer works in three steps:

1. :func:`~repro.optimizer.logical.build_logical_plan` restates the analyzed
   query as a logical tree;
2. the logical shape is expanded into every *eligible* physical candidate —
   alternative compositions of the operator library (exhaustive scan,
   sampling, specialized rewrite, control variates, importance ranking,
   filter cascades);
3. each candidate is priced from the statistics catalog in **estimated
   detector calls plus specialization training cost**, and the cheapest wins.

Two deliberate asymmetries keep planning honest:

* The *adaptive* candidate of each query class (Algorithm 1's accuracy gate,
  the scrubbing fallback rule) is listed first and priced at the best of the
  strategies it can choose at runtime, because that is what it will actually
  do — it therefore wins ties against the forced variants it subsumes.
* A forced variant must beat the adaptive default by a clear margin
  (the ``SELECTION_TOLERANCE_*`` constants) before it is chosen over it:
  catalog statistics are held-out estimates, and the adaptive plans are
  robust to their errors in a way a forced strategy is not.

On the paper's target workloads (rare events, specializable classes) the
winner is therefore the same plan the historical rules produced — results
included, bit for bit.  When the statistics clearly contradict the rules
(e.g. scrubbing an event so common that a sequential scan crosses the limit
in a handful of detections, while ranking would first train a specialized NN
over the whole labeled set), the cheaper candidate wins instead; that is the
point of having a cost model.

``QueryHints.force_plan`` bypasses the choice entirely and picks a candidate
by name — the escape hatch for benchmarks and for users who know better.
"""

from __future__ import annotations

import math

from repro.api.hints import NO_HINTS, QueryHints, require_hints
from repro.core.config import AggregateMethod, BlazeItConfig
from repro.metrics.runtime import StandardCosts
from repro.core.results import PlanCandidateSummary, PlanExplanation
from repro.errors import PlanningError, UnknownUDFError
from repro.frameql.analyzer import (
    AggregateQuerySpec,
    ExactQuerySpec,
    QuerySpec,
    ScrubbingQuerySpec,
    SelectionQuerySpec,
)
from repro.catalog.statistics import StatisticsCatalog, VideoStatistics
from repro.optimizer.aggregates import (
    ASSUMED_CV_CORRELATION,
    AggregateQueryPlan,
    sampling_calls_estimate,
)
from repro.optimizer.base import CostEstimate, PhysicalPlan
from repro.optimizer.exact import ExactQueryPlan
from repro.optimizer.logical import LogicalPlan, build_logical_plan
from repro.optimizer.scrubbing import ScrubbingQueryPlan
from repro.optimizer.selection import SelectionQueryPlan
from repro.udf.registry import UDFRegistry

#: Relative + absolute margin a forced variant must clear to displace the
#: adaptive default candidate (see the module docstring).
SELECTION_TOLERANCE_RELATIVE = 0.10
SELECTION_TOLERANCE_SECONDS = 0.5

#: Expected detector verifications down an importance ranking, in multiples
#: of the limit: an informative ranking concentrates true positives at the
#: front, so verification touches roughly the limit plus overshoot — far
#: fewer frames than a sequential scan needs to cross the same number of
#: events (``limit / event_rate``).  Capped at the sequential figure: an
#: uninformative ranking degrades to random order, never below it.
RANKING_OVERSHOOT = 2


class PlanCandidate:
    """One priced physical alternative for a query."""

    def __init__(
        self,
        name: str,
        plan: PhysicalPlan,
        cost: CostEstimate,
        reason: str = "",
    ) -> None:
        self.name = name
        self.plan = plan
        self.cost = cost
        self.reason = reason

    def __repr__(self) -> str:
        return f"PlanCandidate({self.name!r}, {self.cost.describe()})"

    def summary(self, chosen: bool) -> PlanCandidateSummary:
        """The explanation-facing summary of this candidate."""
        return PlanCandidateSummary(
            name=self.name,
            detector_calls=self.cost.detector_calls,
            total_seconds=self.cost.total_seconds,
            chosen=chosen,
            reason=self.reason,
        )


class CostBasedOptimizer:
    """Chooses the cheapest eligible physical plan for an analyzed query."""

    def __init__(
        self,
        udf_registry: UDFRegistry,
        catalog: StatisticsCatalog | None = None,
        config: BlazeItConfig | None = None,
    ) -> None:
        self.udf_registry = udf_registry
        self.catalog = catalog if catalog is not None else StatisticsCatalog()
        self.config = config if config is not None else BlazeItConfig()

    # -- public surface ------------------------------------------------------------

    def plan(self, spec: QuerySpec, hints: QueryHints | None = None) -> PhysicalPlan:
        """Build the physical plan for ``spec``.

        Parameters
        ----------
        spec:
            Analyzed query specification.
        hints:
            Typed execution hints (see :class:`~repro.api.hints.QueryHints`).
            ``hints.force_plan`` selects a candidate by name instead of by
            cost.
        """
        require_hints(hints)
        hints = hints or NO_HINTS
        self._validate_udfs(spec)
        candidates = self.candidates(spec, hints)
        if hints.force_plan is not None:
            return self._forced(candidates, hints.force_plan).plan
        if self._config_forces_strategy(spec):
            return candidates[0].plan
        return self.choose(candidates, self.statistics_for(spec)).plan

    def logical_plan(self, spec: QuerySpec) -> LogicalPlan:
        """The logical plan the physical enumeration starts from."""
        return build_logical_plan(spec)

    def statistics_for(self, spec: QuerySpec) -> VideoStatistics | None:
        """Catalog statistics for the query's video, if registered."""
        return self.catalog.get(spec.video)

    def candidates(
        self,
        spec: QuerySpec,
        hints: QueryHints | None = None,
        num_frames: int | None = None,
    ) -> list[PlanCandidate]:
        """Every eligible physical candidate for ``spec``, default first.

        ``num_frames`` sizes the costing when the statistics catalog has no
        entry for the query's video (explanations pass the store's frame
        count); with catalog statistics it is taken from them.
        """
        require_hints(hints)
        hints = hints or NO_HINTS
        logical = self.logical_plan(spec)
        stats = self.statistics_for(spec)
        if stats is not None:
            num_frames = stats.num_frames
        elif num_frames is None:
            num_frames = 0
        if isinstance(spec, AggregateQuerySpec):
            return self._aggregate_candidates(spec, logical, hints, stats, num_frames)
        if isinstance(spec, ScrubbingQuerySpec):
            return self._scrubbing_candidates(spec, hints, stats, num_frames)
        if isinstance(spec, SelectionQuerySpec):
            return self._selection_candidates(spec, hints, stats, num_frames)
        if isinstance(spec, ExactQuerySpec):
            return self._exact_candidates(spec, hints, stats, num_frames)
        raise PlanningError(
            f"no plan rule for query spec of type {type(spec).__name__}"
        )

    def choose(
        self, candidates: list[PlanCandidate], stats: VideoStatistics | None
    ) -> PlanCandidate:
        """Pick the cheapest candidate, with the adaptive-default preference.

        Without statistics there is nothing to price, so the default (first)
        candidate — the historical rule-based mapping — is chosen outright.
        """
        if stats is None or len(candidates) == 1:
            return candidates[0]
        best = min(candidate.cost.total_seconds for candidate in candidates)
        threshold = best * (1.0 + SELECTION_TOLERANCE_RELATIVE) + (
            SELECTION_TOLERANCE_SECONDS
        )
        for candidate in candidates:
            if candidate.cost.total_seconds <= threshold:
                return candidate
        return candidates[0]  # pragma: no cover - threshold >= best is total

    def explain_plan(
        self,
        spec: QuerySpec,
        plan: PhysicalPlan,
        hints: QueryHints | None,
        num_frames: int,
    ) -> PlanExplanation:
        """Structured explanation of ``plan``, with per-operator costs."""
        hints = hints or NO_HINTS
        stats = self.statistics_for(spec)
        candidates = self.candidates(spec, hints, num_frames=num_frames)
        if hints.force_plan is not None:
            chosen = self._forced(candidates, hints.force_plan).name
        elif self._config_forces_strategy(spec):
            chosen = candidates[0].name
        else:
            chosen = self.choose(candidates, stats).name
        return PlanExplanation(
            kind=spec.kind.value,
            plan_summary=plan.describe(),
            operators=plan.operator_tree(num_frames=num_frames, stats=stats),
            estimated_detector_calls=plan.estimate_detector_calls(num_frames, stats),
            hints_applied=hints.describe(),
            candidates=tuple(
                candidate.summary(chosen=candidate.name == chosen)
                for candidate in candidates
            ),
        )

    # -- shared pieces -------------------------------------------------------------

    def _validate_udfs(self, spec: QuerySpec) -> None:
        predicates = getattr(spec, "udf_predicates", [])
        for predicate in predicates:
            if predicate.udf_name not in self.udf_registry:
                raise UnknownUDFError(
                    f"query uses unregistered UDF {predicate.udf_name!r}"
                )

    def _config_forces_strategy(self, spec: QuerySpec) -> bool:
        """Whether the engine configuration pins this query's strategy.

        A non-``AUTO`` ``aggregate_method`` is an explicit user override
        (the Figure 4/5 benchmark knob): cost-based choice is bypassed and
        the default candidate — which carries that method — is used as-is.
        """
        return (
            isinstance(spec, AggregateQuerySpec)
            and self._default_aggregate_method() is not None
        )

    def _forced(
        self, candidates: list[PlanCandidate], name: str
    ) -> PlanCandidate:
        for candidate in candidates:
            if candidate.name == name:
                return candidate
        valid = ", ".join(candidate.name for candidate in candidates)
        raise PlanningError(
            f"force_plan={name!r} names no eligible candidate for this query; "
            f"eligible candidates: {valid}"
        )

    def _detector_cost(
        self, calls: int, stats: VideoStatistics | None
    ) -> CostEstimate:
        if stats is not None:
            seconds = stats.detector_seconds(calls)
        else:
            # No catalog entry: price at the paper's Mask R-CNN rate so
            # explanations still show meaningful magnitudes.
            seconds = calls * StandardCosts.MASK_RCNN.seconds_per_call
        return CostEstimate(detector_calls=calls, detector_seconds=seconds)

    # -- per-class enumeration -----------------------------------------------------

    def _default_aggregate_method(self) -> AggregateMethod | None:
        """The method the default candidate will actually run.

        The engine configuration can force a strategy for every aggregate
        query (the Figure 4/5 benchmark knob); baking it into the default
        plan keeps that plan's cost estimates bounding what execution will
        really do.  ``AUTO`` stays ``None``: Algorithm 1 decides at runtime.
        """
        if self.config.aggregate_method == AggregateMethod.AUTO:
            return None
        return self.config.aggregate_method

    def _aggregate_candidates(
        self,
        spec: AggregateQuerySpec,
        logical: LogicalPlan,
        hints: QueryHints,
        stats: VideoStatistics | None,
        num_frames: int,
    ) -> list[PlanCandidate]:
        exact_cost = self._detector_cost(num_frames, stats)
        default_method = self._default_aggregate_method()
        if not logical.approximate:
            return [
                PlanCandidate(
                    "exact",
                    AggregateQueryPlan(spec, hints=hints),
                    exact_cost,
                    reason="no error tolerance (or COUNT DISTINCT): "
                    "every frame must be detected",
                )
            ]

        error_tolerance = spec.error_tolerance
        assert error_tolerance is not None  # guaranteed by logical.approximate
        class_stats = stats.class_stats(spec.object_class) if stats else None
        sigma = class_stats.count_std if class_stats is not None else 0.0
        value_range = (
            stats.value_range(spec.object_class) if stats is not None else 2.0
        )
        aqp_calls = sampling_calls_estimate(
            num_frames, sigma, error_tolerance, spec.confidence, value_range
        )
        aqp_cost = self._detector_cost(aqp_calls, stats)

        specializable = (
            class_stats is not None
            and class_stats.training_positives >= self.config.min_training_positives
        )
        rewrite_cost = aqp_cost
        cv_cost = aqp_cost
        if specializable and stats is not None:
            training = stats.specialized_training_seconds()
            inference = stats.specialized_inference_seconds(num_frames)
            rewrite_cost = CostEstimate(
                detector_calls=0,
                training_seconds=training,
                inference_seconds=inference,
            )
            residual_sigma = sigma * math.sqrt(1.0 - ASSUMED_CV_CORRELATION**2)
            cv_calls = sampling_calls_estimate(
                num_frames,
                residual_sigma,
                error_tolerance,
                spec.confidence,
                value_range,
            )
            cv_cost = CostEstimate(
                detector_calls=cv_calls,
                detector_seconds=stats.detector_seconds(cv_calls),
                training_seconds=training,
                inference_seconds=inference,
            )

        # The default candidate runs whatever the engine configuration forces
        # (normally AUTO); its price reflects that actual behaviour.
        if default_method == AggregateMethod.EXACT:
            auto_cost = exact_cost
            auto_reason = "engine configuration forces the exact scan"
        elif default_method == AggregateMethod.NAIVE_AQP:
            auto_cost = aqp_cost
            auto_reason = "engine configuration forces adaptive sampling"
        elif default_method == AggregateMethod.SPECIALIZED_REWRITE:
            auto_cost = rewrite_cost
            auto_reason = "engine configuration forces the specialized rewrite"
        elif default_method == AggregateMethod.CONTROL_VARIATES:
            auto_cost = cv_cost
            auto_reason = "engine configuration forces control variates"
        elif specializable and stats is not None:
            # The adaptive plan runs whichever branch its accuracy gate
            # admits; price it at the better of the two.
            auto_cost = min(
                (rewrite_cost, cv_cost), key=lambda cost: cost.total_seconds
            )
            auto_reason = (
                "Algorithm 1: bootstrap gate picks rewrite or "
                "control variates at runtime"
            )
        else:
            auto_cost = aqp_cost
            auto_reason = "too few training positives: adaptive sampling"
        candidates: list[PlanCandidate] = [
            PlanCandidate(
                "auto",
                AggregateQueryPlan(spec, hints=hints, method=default_method),
                auto_cost,
                reason=auto_reason,
            )
        ]
        candidates.append(
            PlanCandidate(
                "exact",
                AggregateQueryPlan(spec, hints=hints, method=AggregateMethod.EXACT),
                exact_cost,
                reason="detection on every frame",
            )
        )
        candidates.append(
            PlanCandidate(
                "naive_aqp",
                AggregateQueryPlan(
                    spec, hints=hints, method=AggregateMethod.NAIVE_AQP
                ),
                aqp_cost,
                reason="uniform sampling, CLT stop",
            )
        )
        if specializable and stats is not None:
            candidates.append(
                PlanCandidate(
                    "specialized_rewrite",
                    AggregateQueryPlan(
                        spec, hints=hints, method=AggregateMethod.SPECIALIZED_REWRITE
                    ),
                    rewrite_cost,
                    reason="specialized NN replaces the detector outright",
                )
            )
            candidates.append(
                PlanCandidate(
                    "control_variates",
                    AggregateQueryPlan(
                        spec, hints=hints, method=AggregateMethod.CONTROL_VARIATES
                    ),
                    cv_cost,
                    reason="variance-reduced sampling, NN auxiliary",
                )
            )
        return candidates

    def _scrubbing_candidates(
        self,
        spec: ScrubbingQuerySpec,
        hints: QueryHints,
        stats: VideoStatistics | None,
        num_frames: int,
    ) -> list[PlanCandidate]:
        importance = ScrubbingQueryPlan(spec, hints=hints)
        exhaustive = ScrubbingQueryPlan(spec, hints=hints, strategy="exhaustive")
        # Expected verification work, not the conservative per-plan bound:
        # a sequential scan crosses ``limit / event_rate`` frames before the
        # limit-th event, while an informative ranking concentrates the true
        # positives at the front and verifies only a small multiple of the
        # limit (capped at the sequential figure — an uninformative ranking
        # degrades to random order, never below it).
        rate = stats.event_rate(spec.min_counts) if stats is not None else 0.0
        if rate > 0.0:
            # A GAP constraint makes the sequential scan cross (limit-1)*gap
            # frames no matter how common the event is; on bursty videos the
            # empty stretches between bursts are charged, so they are priced
            # in full.
            sequential_calls = min(
                num_frames,
                math.ceil(spec.limit / rate) + (spec.limit - 1) * spec.gap,
            )
        else:
            sequential_calls = num_frames
        trained = (
            stats is not None and stats.training_event_count(spec.min_counts) > 0
        )
        exhaustive_cost = self._detector_cost(sequential_calls, stats)
        if trained and stats is not None:
            ranked_calls = min(spec.limit * RANKING_OVERSHOOT, sequential_calls)
            importance_cost = CostEstimate(
                detector_calls=ranked_calls,
                detector_seconds=stats.detector_seconds(ranked_calls),
                training_seconds=(
                    0.0 if importance.indexed else stats.specialized_training_seconds()
                ),
                inference_seconds=(
                    0.0
                    if importance.indexed
                    else stats.specialized_inference_seconds(num_frames)
                ),
            )
        else:
            # No training instances: the plan falls back to the sequential
            # scan at runtime without training anything.
            importance_cost = exhaustive_cost
        return [
            PlanCandidate(
                "importance",
                importance,
                importance_cost,
                reason=(
                    "NN ranks frames; detector verifies down the ranking"
                    if trained
                    else "no training instances: falls back to the "
                    "sequential scan at runtime"
                ),
            ),
            PlanCandidate(
                "exhaustive",
                exhaustive,
                exhaustive_cost,
                reason="sequential detection scan until the limit is met",
            ),
        ]

    def _selection_candidates(
        self,
        spec: SelectionQuerySpec,
        hints: QueryHints,
        stats: VideoStatistics | None,
        num_frames: int,
    ) -> list[PlanCandidate]:
        filtered = SelectionQueryPlan(spec, hints=hints)
        exhaustive = SelectionQueryPlan(
            spec, enabled_filter_classes=set(), hints=hints
        )
        return [
            PlanCandidate(
                "filtered",
                filtered,
                filtered.estimate_cost(num_frames, stats),
                reason="no-false-negative filter cascade before detection",
            ),
            PlanCandidate(
                "exhaustive",
                exhaustive,
                exhaustive.estimate_cost(num_frames, stats),
                reason="detect every frame, no filters",
            ),
        ]

    def _exact_candidates(
        self,
        spec: ExactQuerySpec,
        hints: QueryHints,
        stats: VideoStatistics | None,
        num_frames: int,
    ) -> list[PlanCandidate]:
        return [
            PlanCandidate(
                "exhaustive",
                ExactQueryPlan(spec, hints=hints),
                self._detector_cost(num_frames, stats),
                reason="unrecognised query shape: full scan, all records",
            )
        ]
